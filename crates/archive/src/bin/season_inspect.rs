//! `season-inspect` — look inside season archives without writing code.
//!
//! ```text
//! season-inspect list <archive>
//!     Header, tier, per-cell day/outcome counts and economics, all
//!     from the index (no data blocks are decoded).
//!
//! season-inspect dump <archive> [--cell N] [--day D] [--tier T]
//!     Decode and print day records and negotiation outcomes. --cell
//!     and --day narrow the dump; --tier (aggregate | settlement |
//!     full-trace) downgrades the printed detail below what the
//!     archive stores.
//!
//! season-inspect diff <archive-a> <archive-b>
//!     Compare the two archives' settlements (and settlement-bearing
//!     digests). Exit 0 when identical, 1 when they differ.
//! ```

use loadbal_archive::{ArchiveError, SeasonArchive};
use loadbal_core::campaign::IntervalOutcome;
use loadbal_core::session::ReportTier;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    // lint: allow(det-env) reason="CLI entry point legitimately reads its own argv; nothing downstream of the archive decode depends on it"
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => with_one_path(&args, list),
        Some("dump") => dump_command(&args),
        Some("diff") => diff_command(&args),
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("season-inspect: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:\n  \
    season-inspect list <archive>\n  \
    season-inspect dump <archive> [--cell N] [--day D] [--tier aggregate|settlement|full-trace]\n  \
    season-inspect diff <archive-a> <archive-b>";

type Archive = SeasonArchive<BufReader<File>>;

fn open(path: &str) -> Result<Archive, String> {
    SeasonArchive::open(path).map_err(|e| format!("{path}: {e}"))
}

fn with_one_path(
    args: &[String],
    run: fn(&str, Archive) -> Result<ExitCode, ArchiveError>,
) -> Result<ExitCode, String> {
    let path = args.get(1).ok_or(USAGE)?;
    if args.len() > 2 {
        return Err(USAGE.to_string());
    }
    run(path, open(path)?).map_err(|e| format!("{path}: {e}"))
}

// ---------------------------------------------------------------------
// list
// ---------------------------------------------------------------------

fn list(path: &str, archive: Archive) -> Result<ExitCode, ArchiveError> {
    println!(
        "{path}: {} archive, tier {}",
        archive.kind(),
        archive.tier()
    );
    let index = archive.index();
    if let Some(e) = &index.fleet_economics {
        println!(
            "fleet economics: net_gain={:.3} rewards_paid={:.3} energy_shaved={:.3}",
            e.net_gain.value(),
            e.rewards_paid.value(),
            e.energy_shaved.value()
        );
    }
    for (i, cell) in index.cells.iter().enumerate() {
        let label = if cell.label.is_empty() {
            String::new()
        } else {
            format!(" ({})", cell.label)
        };
        let stored: u64 = cell.days.iter().map(|d| u64::from(d.len)).sum::<u64>()
            + cell.outcomes.iter().map(|o| u64::from(o.len)).sum::<u64>();
        println!(
            "cell {i}{label}: {} days, {} outcomes, {} payload bytes, net_gain={:.3}",
            cell.days.len(),
            cell.outcomes.len(),
            stored,
            cell.economics.net_gain.value()
        );
        for day in &cell.days {
            let peaks = cell
                .outcomes
                .iter()
                .filter(|o| o.day_index == day.day_index)
                .count();
            println!(
                "  day {:>3}: {} peaks, {} bytes",
                day.day_index, peaks, day.len
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------
// dump
// ---------------------------------------------------------------------

struct DumpOptions {
    cell: Option<usize>,
    day: Option<u64>,
    tier: Option<ReportTier>,
}

fn dump_command(args: &[String]) -> Result<ExitCode, String> {
    let path = args.get(1).ok_or(USAGE)?;
    let mut options = DumpOptions {
        cell: None,
        day: None,
        tier: None,
    };
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        let value = rest.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--cell" => {
                options.cell = Some(value.parse().map_err(|_| format!("bad cell '{value}'"))?);
            }
            "--day" => {
                options.day = Some(value.parse().map_err(|_| format!("bad day '{value}'"))?);
            }
            "--tier" => {
                options.tier = Some(ReportTier::from_name(value).ok_or_else(|| {
                    format!("unknown tier '{value}' (aggregate | settlement | full-trace)")
                })?);
            }
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    let mut archive = open(path)?;
    dump(&mut archive, &options).map_err(|e| format!("{path}: {e}"))
}

fn dump(archive: &mut Archive, options: &DumpOptions) -> Result<ExitCode, ArchiveError> {
    let tier = options.tier.unwrap_or_else(|| archive.tier());
    let cells: Vec<usize> = match options.cell {
        Some(c) => vec![c],
        None => (0..archive.index().cells.len()).collect(),
    };
    for cell in cells {
        let label = {
            let c = archive
                .index()
                .cells
                .get(cell)
                .ok_or(ArchiveError::CellOutOfRange {
                    cell,
                    cells: archive.index().cells.len(),
                })?;
            if c.label.is_empty() {
                format!("cell {cell}")
            } else {
                format!("cell {cell} ({})", c.label)
            }
        };
        let days: Vec<u64> = match options.day {
            Some(d) => vec![d],
            None => archive.index().cells[cell]
                .days
                .iter()
                .map(|d| d.day_index)
                .collect(),
        };
        for day_index in days {
            let day = archive.read_day(cell, day_index)?;
            println!(
                "{label} day {day_index} ({} {}): predictor={} peaks={} feedback_delta={:.3}",
                day.day.season,
                day.day.day_type,
                day.predictor,
                day.peaks.len(),
                day.feedback_delta.value()
            );
            for outcome in archive.read_day_outcomes(cell, day_index)? {
                print_outcome(&outcome.at_tier(tier), tier);
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn print_outcome(outcome: &IntervalOutcome, tier: ReportTier) {
    let report = &outcome.report;
    let digest = report.digest();
    println!(
        "  {}: rounds={} messages={} initial={:.3} final={:.3} rewards={:.3} status={}",
        outcome.label,
        digest.rounds,
        report.total_messages(),
        report.initial_total().value(),
        report.final_total().value(),
        report.total_rewards().value(),
        report.status()
    );
    if tier.keeps_settlements() {
        for (i, s) in report.settlements().iter().enumerate() {
            println!(
                "    settlement {i}: cutdown={:.2} reward={:.3}",
                s.cutdown.value(),
                s.reward.value()
            );
        }
    }
    if tier.keeps_rounds() {
        for r in report.rounds() {
            println!(
                "    round {}: messages={} predicted_total={:.3} bids={}",
                r.round,
                r.messages,
                r.predicted_total.value(),
                r.bids.len()
            );
        }
    }
}

// ---------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------

fn diff_command(args: &[String]) -> Result<ExitCode, String> {
    let (path_a, path_b) = match args {
        [_, a, b] => (a, b),
        _ => return Err(USAGE.to_string()),
    };
    let mut a = open(path_a)?;
    let mut b = open(path_b)?;
    diff(&mut a, &mut b).map_err(|e| e.to_string())
}

/// One comparable line per negotiated peak: final settlements plus the
/// digest scalars every tier keeps. Tier-independent for any archive at
/// or above `Settlement`; an `Aggregate` archive simply compares empty
/// settlement lists plus digests.
fn settlement_lines(archive: &mut Archive) -> Result<Vec<String>, ArchiveError> {
    let cells = archive.index().cells.len();
    let mut lines = Vec::new();
    for cell in 0..cells {
        let label = archive.index().cells[cell].label.clone();
        let days: Vec<u64> = archive.index().cells[cell]
            .days
            .iter()
            .map(|d| d.day_index)
            .collect();
        for day in days {
            for outcome in archive.read_day_outcomes(cell, day)? {
                let digest = outcome.report.digest();
                let settlements: Vec<String> = outcome
                    .report
                    .settlements()
                    .iter()
                    .map(|s| format!("{:.4}@{:.6}", s.cutdown.value(), s.reward.value()))
                    .collect();
                lines.push(format!(
                    "{label}/{}: rounds={} final={:.6} rewards={:.6} [{}]",
                    outcome.label,
                    digest.rounds,
                    digest.final_total.value(),
                    digest.total_rewards.value(),
                    settlements.join(" ")
                ));
            }
        }
    }
    Ok(lines)
}

fn diff(a: &mut Archive, b: &mut Archive) -> Result<ExitCode, ArchiveError> {
    if a.kind() != b.kind() {
        println!("kind differs: {} vs {}", a.kind(), b.kind());
        return Ok(ExitCode::FAILURE);
    }
    let lines_a = settlement_lines(a)?;
    let lines_b = settlement_lines(b)?;
    let mut differences = 0usize;
    let common = lines_a.len().min(lines_b.len());
    for i in 0..common {
        if lines_a[i] != lines_b[i] {
            differences += 1;
            println!("- {}", lines_a[i]);
            println!("+ {}", lines_b[i]);
        }
    }
    for line in &lines_a[common..] {
        differences += 1;
        println!("- {line}");
    }
    for line in &lines_b[common..] {
        differences += 1;
        println!("+ {line}");
    }
    if differences == 0 {
        println!("settlements identical ({} outcomes)", lines_a.len());
        Ok(ExitCode::SUCCESS)
    } else {
        println!("{differences} settlement difference(s)");
        Ok(ExitCode::FAILURE)
    }
}
