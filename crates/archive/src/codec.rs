//! The byte-level codec: little-endian primitives plus one
//! encode/decode pair per report type.
//!
//! Encoding appends to a caller-owned `Vec<u8>` (blocks are buffered,
//! length-prefixed and flushed by the writer). Decoding reads from a
//! bounds-checked cursor over an in-memory block and **never panics**:
//! every count is checked against the bytes that remain before anything
//! is allocated, every enum tag is matched exhaustively, and every
//! value range a core constructor asserts (fractions in `[0, 1]`,
//! monotone reward tables, ordered tariffs, non-inverted intervals) is
//! validated first so the constructor's own assertion can never fire on
//! attacker- or bitrot-shaped bytes.

use crate::error::{corrupt, truncated, ArchiveError};
use loadbal_core::beta::BetaPolicy;
use loadbal_core::campaign::{CampaignEconomics, DayOutcome, IntervalOutcome};
use loadbal_core::concession::{NegotiationStatus, TerminationReason};
use loadbal_core::methods::AnnouncementMethod;
use loadbal_core::preferences::CustomerPreferences;
use loadbal_core::reward::{RewardFormula, RewardTable};
use loadbal_core::session::{
    CustomerProfile, NegotiationReport, ReportTier, RoundDigest, RoundRecord, Scenario, Settlement,
};
use loadbal_core::utility_agent::{EconomicStopRule, TableShape, UtilityAgentConfig};
use powergrid::calendar::{CalendarDay, DayType};
use powergrid::peak::Peak;
use powergrid::tariff::Tariff;
use powergrid::time::Interval;
use powergrid::units::{Fraction, KilowattHours, Money, PricePerKwh};
use powergrid::weather::Season;
use std::sync::Arc;
use std::sync::Mutex;

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over one decoded block.
pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(bytes: &'a [u8], context: &'static str) -> Dec<'a> {
        Dec {
            bytes,
            pos: 0,
            context,
        }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Decoding must consume the whole block — trailing garbage means
    /// the index length and the content disagree.
    pub(crate) fn finish(self) -> Result<(), ArchiveError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(corrupt("trailing bytes after block payload"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArchiveError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| truncated(self.context))?;
        self.pos += n;
        Ok(slice)
    }

    /// Like [`Dec::take`] but returns a fixed-size array, so the
    /// integer readers need no length-asserting conversion.
    fn take_n<const N: usize>(&mut self) -> Result<[u8; N], ArchiveError> {
        self.take(N)?
            .try_into()
            .map_err(|_| truncated(self.context))
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ArchiveError> {
        let [byte] = self.take_n::<1>()?;
        Ok(byte)
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ArchiveError> {
        Ok(u16::from_le_bytes(self.take_n::<2>()?))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ArchiveError> {
        Ok(u32::from_le_bytes(self.take_n::<4>()?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ArchiveError> {
        Ok(u64::from_le_bytes(self.take_n::<8>()?))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, ArchiveError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A count that prefixes `min_item_bytes`-sized items: rejected
    /// before any allocation if the remaining bytes cannot possibly
    /// hold it, so corrupt counts never balloon memory.
    pub(crate) fn count(&mut self, min_item_bytes: usize) -> Result<usize, ArchiveError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(truncated(self.context));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self) -> Result<String, ArchiveError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not UTF-8"))
    }
}

// ---------------------------------------------------------------------
// Units and small grid types
// ---------------------------------------------------------------------

fn put_fraction(buf: &mut Vec<u8>, v: Fraction) {
    put_f64(buf, v.value());
}

fn fraction(d: &mut Dec) -> Result<Fraction, ArchiveError> {
    Fraction::new(d.f64()?).map_err(|_| corrupt("fraction outside [0, 1]"))
}

pub(crate) fn put_interval(buf: &mut Vec<u8>, i: Interval) {
    put_u64(buf, i.start() as u64);
    put_u64(buf, i.end() as u64);
}

pub(crate) fn interval(d: &mut Dec) -> Result<Interval, ArchiveError> {
    let start = d.u64()? as usize;
    let end = d.u64()? as usize;
    if end < start {
        return Err(corrupt("interval end before start"));
    }
    Ok(Interval::new(start, end))
}

fn put_tariff(buf: &mut Vec<u8>, t: &Tariff) {
    put_f64(buf, t.lower().value());
    put_f64(buf, t.normal().value());
    put_f64(buf, t.higher().value());
}

fn tariff(d: &mut Dec) -> Result<Tariff, ArchiveError> {
    let lower = d.f64()?;
    let normal = d.f64()?;
    let higher = d.f64()?;
    // Replicates Tariff::new's assertions as checks (NaN fails both).
    let ordered = lower >= 0.0 && lower <= normal && normal <= higher;
    if !ordered {
        return Err(corrupt("tariff prices unordered or negative"));
    }
    Ok(Tariff::new(
        PricePerKwh(lower),
        PricePerKwh(normal),
        PricePerKwh(higher),
    ))
}

pub(crate) fn put_calendar_day(buf: &mut Vec<u8>, day: CalendarDay) {
    put_u64(buf, day.index);
    put_u8(
        buf,
        match day.day_type {
            DayType::Weekday => 0,
            DayType::Weekend => 1,
        },
    );
    put_u8(
        buf,
        match day.season {
            Season::Winter => 0,
            Season::Spring => 1,
            Season::Summer => 2,
            Season::Autumn => 3,
        },
    );
}

pub(crate) fn calendar_day(d: &mut Dec) -> Result<CalendarDay, ArchiveError> {
    let index = d.u64()?;
    let day_type = match d.u8()? {
        0 => DayType::Weekday,
        1 => DayType::Weekend,
        _ => return Err(corrupt("unknown day type tag")),
    };
    let season = match d.u8()? {
        0 => Season::Winter,
        1 => Season::Spring,
        2 => Season::Summer,
        3 => Season::Autumn,
        _ => return Err(corrupt("unknown season tag")),
    };
    Ok(CalendarDay {
        index,
        day_type,
        season,
    })
}

fn put_peak(buf: &mut Vec<u8>, p: &Peak) {
    put_interval(buf, p.interval);
    put_f64(buf, p.predicted_overuse.value());
    put_f64(buf, p.normal_use.value());
}

fn peak(d: &mut Dec) -> Result<Peak, ArchiveError> {
    Ok(Peak {
        interval: interval(d)?,
        predicted_overuse: KilowattHours(d.f64()?),
        normal_use: KilowattHours(d.f64()?),
    })
}

fn put_method(buf: &mut Vec<u8>, m: AnnouncementMethod) {
    put_u8(
        buf,
        match m {
            AnnouncementMethod::Offer => 0,
            AnnouncementMethod::RequestForBids => 1,
            AnnouncementMethod::RewardTables => 2,
        },
    );
}

fn method(d: &mut Dec) -> Result<AnnouncementMethod, ArchiveError> {
    Ok(match d.u8()? {
        0 => AnnouncementMethod::Offer,
        1 => AnnouncementMethod::RequestForBids,
        2 => AnnouncementMethod::RewardTables,
        _ => return Err(corrupt("unknown announcement-method tag")),
    })
}

pub(crate) fn put_tier(buf: &mut Vec<u8>, t: ReportTier) {
    put_u8(
        buf,
        match t {
            ReportTier::Aggregate => 0,
            ReportTier::Settlement => 1,
            ReportTier::FullTrace => 2,
        },
    );
}

pub(crate) fn tier(d: &mut Dec) -> Result<ReportTier, ArchiveError> {
    Ok(match d.u8()? {
        0 => ReportTier::Aggregate,
        1 => ReportTier::Settlement,
        2 => ReportTier::FullTrace,
        _ => return Err(corrupt("unknown report-tier tag")),
    })
}

fn put_status(buf: &mut Vec<u8>, s: NegotiationStatus) {
    put_u8(
        buf,
        match s {
            NegotiationStatus::Converged(TerminationReason::OveruseAcceptable) => 0,
            NegotiationStatus::Converged(TerminationReason::RewardSaturated) => 1,
            NegotiationStatus::Converged(TerminationReason::NoMovement) => 2,
            NegotiationStatus::Converged(TerminationReason::SingleRound) => 3,
            NegotiationStatus::Converged(TerminationReason::EconomicStop) => 4,
            NegotiationStatus::MaxRoundsExceeded => 5,
        },
    );
}

fn status(d: &mut Dec) -> Result<NegotiationStatus, ArchiveError> {
    Ok(match d.u8()? {
        0 => NegotiationStatus::Converged(TerminationReason::OveruseAcceptable),
        1 => NegotiationStatus::Converged(TerminationReason::RewardSaturated),
        2 => NegotiationStatus::Converged(TerminationReason::NoMovement),
        3 => NegotiationStatus::Converged(TerminationReason::SingleRound),
        4 => NegotiationStatus::Converged(TerminationReason::EconomicStop),
        5 => NegotiationStatus::MaxRoundsExceeded,
        _ => return Err(corrupt("unknown negotiation-status tag")),
    })
}

// ---------------------------------------------------------------------
// Monotone (cutdown, reward) tables — shared by preferences and tables
// ---------------------------------------------------------------------

fn put_entries(buf: &mut Vec<u8>, entries: &[(Fraction, Money)]) {
    put_u32(buf, entries.len() as u32);
    for (c, m) in entries {
        put_fraction(buf, *c);
        put_f64(buf, m.value());
    }
}

/// Decodes and validates the invariants `RewardTable::new` and
/// `CustomerPreferences::new` assert: non-empty, strictly increasing
/// cut-downs, non-decreasing rewards.
fn entries(d: &mut Dec) -> Result<Vec<(Fraction, Money)>, ArchiveError> {
    let n = d.count(16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((fraction(d)?, Money(d.f64()?)));
    }
    if out.is_empty() {
        return Err(corrupt("empty cutdown/reward table"));
    }
    for (a, b) in out.iter().zip(out.iter().skip(1)) {
        if a.0 >= b.0 {
            return Err(corrupt("cutdown/reward table not strictly increasing"));
        }
        // NaN rewards must fail too (the core constructors assert
        // `prev <= next`, which NaN violates).
        let (prev, next) = (a.1.value(), b.1.value());
        if prev.is_nan() || next.is_nan() || prev > next {
            return Err(corrupt("cutdown/reward table rewards decrease"));
        }
    }
    Ok(out)
}

fn put_reward_table(buf: &mut Vec<u8>, t: &RewardTable) {
    put_interval(buf, t.interval());
    put_entries(buf, t.entries());
}

fn reward_table(d: &mut Dec) -> Result<RewardTable, ArchiveError> {
    let interval = interval(d)?;
    let entries = entries(d)?;
    Ok(RewardTable::new(interval, entries))
}

fn put_preferences(buf: &mut Vec<u8>, p: &CustomerPreferences) {
    put_entries(buf, p.thresholds());
    put_fraction(buf, p.max_cutdown());
}

fn preferences(d: &mut Dec) -> Result<CustomerPreferences, ArchiveError> {
    let thresholds = entries(d)?;
    let max_cutdown = fraction(d)?;
    Ok(CustomerPreferences::new(thresholds, max_cutdown))
}

// ---------------------------------------------------------------------
// Scenario (utility-agent configuration and customer population)
// ---------------------------------------------------------------------

fn put_beta_policy(buf: &mut Vec<u8>, p: &BetaPolicy) {
    match *p {
        BetaPolicy::Constant { beta } => {
            put_u8(buf, 0);
            put_f64(buf, beta);
        }
        BetaPolicy::Adaptive {
            beta,
            gain,
            min_progress,
        } => {
            put_u8(buf, 1);
            put_f64(buf, beta);
            put_f64(buf, gain);
            put_f64(buf, min_progress);
        }
        BetaPolicy::Annealing { beta, decay } => {
            put_u8(buf, 2);
            put_f64(buf, beta);
            put_f64(buf, decay);
        }
    }
}

fn beta_policy(d: &mut Dec) -> Result<BetaPolicy, ArchiveError> {
    Ok(match d.u8()? {
        0 => BetaPolicy::Constant { beta: d.f64()? },
        1 => BetaPolicy::Adaptive {
            beta: d.f64()?,
            gain: d.f64()?,
            min_progress: d.f64()?,
        },
        2 => BetaPolicy::Annealing {
            beta: d.f64()?,
            decay: d.f64()?,
        },
        _ => return Err(corrupt("unknown beta-policy tag")),
    })
}

fn put_ua_config(buf: &mut Vec<u8>, c: &UtilityAgentConfig) {
    put_f64(buf, c.formula.beta);
    put_f64(buf, c.formula.max_reward.value());
    put_f64(buf, c.formula.epsilon.value());
    put_beta_policy(buf, &c.beta_policy);
    put_f64(buf, c.max_allowed_overuse);
    put_u32(buf, c.levels.len() as u32);
    for &l in &c.levels {
        put_f64(buf, l);
    }
    put_f64(buf, c.initial_reward_at.value());
    put_fraction(buf, c.pin);
    put_u8(
        buf,
        match c.table_shape {
            TableShape::Quadratic => 0,
            TableShape::Linear => 1,
        },
    );
    put_fraction(buf, c.offer_x_max);
    put_u32(buf, c.max_rounds);
    match &c.economic_stop {
        None => put_u8(buf, 0),
        Some(rule) => {
            put_u8(buf, 1);
            put_f64(buf, rule.value_per_kwh.value());
        }
    }
}

fn ua_config(d: &mut Dec) -> Result<UtilityAgentConfig, ArchiveError> {
    let formula = RewardFormula {
        beta: d.f64()?,
        max_reward: Money(d.f64()?),
        epsilon: Money(d.f64()?),
    };
    let beta_policy = beta_policy(d)?;
    let max_allowed_overuse = d.f64()?;
    let n = d.count(8)?;
    let mut levels = Vec::with_capacity(n);
    for _ in 0..n {
        levels.push(d.f64()?);
    }
    let initial_reward_at = Money(d.f64()?);
    let pin = fraction(d)?;
    let table_shape = match d.u8()? {
        0 => TableShape::Quadratic,
        1 => TableShape::Linear,
        _ => return Err(corrupt("unknown table-shape tag")),
    };
    let offer_x_max = fraction(d)?;
    let max_rounds = d.u32()?;
    let economic_stop = match d.u8()? {
        0 => None,
        1 => Some(EconomicStopRule {
            value_per_kwh: PricePerKwh(d.f64()?),
        }),
        _ => return Err(corrupt("unknown economic-stop tag")),
    };
    Ok(UtilityAgentConfig {
        formula,
        beta_policy,
        max_allowed_overuse,
        levels,
        initial_reward_at,
        pin,
        table_shape,
        offer_x_max,
        max_rounds,
        economic_stop,
    })
}

fn put_scenario(buf: &mut Vec<u8>, s: &Scenario) {
    put_f64(buf, s.normal_use.value());
    put_interval(buf, s.interval);
    put_u32(buf, s.customers.len() as u32);
    for c in &s.customers {
        put_f64(buf, c.predicted_use.value());
        put_f64(buf, c.allowed_use.value());
        put_preferences(buf, &c.preferences);
    }
    put_ua_config(buf, &s.config);
    put_method(buf, s.method);
    put_tariff(buf, &s.tariff);
}

fn scenario(d: &mut Dec) -> Result<Scenario, ArchiveError> {
    let normal_use = KilowattHours(d.f64()?);
    let interval = interval(d)?;
    let n = d.count(16)?;
    let mut customers = Vec::with_capacity(n);
    for _ in 0..n {
        customers.push(CustomerProfile {
            predicted_use: KilowattHours(d.f64()?),
            allowed_use: KilowattHours(d.f64()?),
            preferences: preferences(d)?,
        });
    }
    Ok(Scenario {
        normal_use,
        interval,
        customers,
        config: ua_config(d)?,
        method: method(d)?,
        tariff: tariff(d)?,
    })
}

// ---------------------------------------------------------------------
// Negotiation reports
// ---------------------------------------------------------------------

fn put_round(buf: &mut Vec<u8>, r: &RoundRecord) {
    put_u32(buf, r.round);
    match &r.table {
        None => put_u8(buf, 0),
        Some(t) => {
            put_u8(buf, 1);
            put_reward_table(buf, t);
        }
    }
    put_u32(buf, r.bids.len() as u32);
    for b in &r.bids {
        put_fraction(buf, *b);
    }
    put_f64(buf, r.predicted_total.value());
    put_u64(buf, r.messages);
}

fn round(d: &mut Dec) -> Result<RoundRecord, ArchiveError> {
    let round = d.u32()?;
    let table = match d.u8()? {
        0 => None,
        1 => Some(Arc::new(reward_table(d)?)),
        _ => return Err(corrupt("unknown reward-table tag")),
    };
    let n = d.count(8)?;
    let mut bids = Vec::with_capacity(n);
    for _ in 0..n {
        bids.push(fraction(d)?);
    }
    Ok(RoundRecord {
        round,
        table,
        bids,
        predicted_total: KilowattHours(d.f64()?),
        messages: d.u64()?,
    })
}

/// Encodes a report downgraded to (at most) `tier` on the way out —
/// the storage a lower tier would have dropped at assembly time is
/// simply not written.
pub(crate) fn put_report(buf: &mut Vec<u8>, r: &NegotiationReport, tier: ReportTier) {
    let tier = tier.min(r.tier());
    put_method(buf, r.method());
    put_f64(buf, r.normal_use().value());
    put_f64(buf, r.initial_total().value());
    put_tier(buf, tier);
    let digest = r.digest();
    put_u32(buf, digest.rounds);
    put_u64(buf, digest.messages);
    put_f64(buf, digest.final_total.value());
    put_f64(buf, digest.total_rewards.value());
    put_u32(buf, digest.customers);
    let rounds: &[RoundRecord] = if tier.keeps_rounds() { r.rounds() } else { &[] };
    put_u32(buf, rounds.len() as u32);
    for rec in rounds {
        put_round(buf, rec);
    }
    put_status(buf, r.status());
    let settlements: &[Settlement] = if tier.keeps_settlements() {
        r.settlements()
    } else {
        &[]
    };
    put_u32(buf, settlements.len() as u32);
    for s in settlements {
        put_fraction(buf, s.cutdown);
        put_f64(buf, s.reward.value());
    }
    put_u64(buf, r.extra_messages());
}

pub(crate) fn report(d: &mut Dec) -> Result<NegotiationReport, ArchiveError> {
    let method = method(d)?;
    let normal_use = KilowattHours(d.f64()?);
    let initial_total = KilowattHours(d.f64()?);
    let tier = tier(d)?;
    let digest = RoundDigest {
        rounds: d.u32()?,
        messages: d.u64()?,
        final_total: KilowattHours(d.f64()?),
        total_rewards: Money(d.f64()?),
        customers: d.u32()?,
    };
    let n = d.count(17)?;
    let mut rounds = Vec::with_capacity(n);
    for _ in 0..n {
        rounds.push(round(d)?);
    }
    let status = status(d)?;
    let n = d.count(16)?;
    let mut settlements = Vec::with_capacity(n);
    for _ in 0..n {
        settlements.push(Settlement {
            cutdown: fraction(d)?,
            reward: Money(d.f64()?),
        });
    }
    let extra_messages = d.u64()?;
    if !rounds.is_empty() && !tier.keeps_rounds() {
        return Err(corrupt("round records below the full-trace tier"));
    }
    if !settlements.is_empty() && !tier.keeps_settlements() {
        return Err(corrupt("settlements below the settlement tier"));
    }
    Ok(NegotiationReport::from_parts(
        method,
        normal_use,
        initial_total,
        tier,
        digest,
        rounds,
        status,
        settlements,
        extra_messages,
    ))
}

// ---------------------------------------------------------------------
// Day and outcome blocks
// ---------------------------------------------------------------------

/// Predictor names come back as `&'static str`; known model names are
/// matched first and genuinely novel names are interned once (bounded
/// by the distinct names an archive contains, never re-leaked).
fn intern_predictor(name: String) -> &'static str {
    const KNOWN: [&str; 5] = [
        "moving-average",
        "exponential-smoothing",
        "seasonal-naive",
        "weather-regression",
        "holt-trend",
    ];
    if let Some(k) = KNOWN.iter().find(|k| **k == name) {
        return k;
    }
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut interned = INTERNED.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(k) = interned.iter().find(|k| **k == name) {
        return k;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    interned.push(leaked);
    leaked
}

pub(crate) fn put_day_outcome(buf: &mut Vec<u8>, day: &DayOutcome) {
    put_calendar_day(buf, day.day);
    put_str(buf, day.predictor);
    put_u32(buf, day.peaks.len() as u32);
    for p in &day.peaks {
        put_peak(buf, p);
    }
    put_f64(buf, day.feedback_delta.value());
}

pub(crate) fn day_outcome(d: &mut Dec) -> Result<DayOutcome, ArchiveError> {
    let day = calendar_day(d)?;
    let predictor = intern_predictor(d.str()?);
    let n = d.count(32)?;
    let mut peaks = Vec::with_capacity(n);
    for _ in 0..n {
        peaks.push(peak(d)?);
    }
    Ok(DayOutcome {
        day,
        predictor,
        peaks,
        feedback_delta: KilowattHours(d.f64()?),
    })
}

pub(crate) fn put_interval_outcome(buf: &mut Vec<u8>, o: &IntervalOutcome, tier: ReportTier) {
    put_calendar_day(buf, o.day);
    put_peak(buf, &o.peak);
    put_str(buf, &o.label);
    match o.scenario.as_ref().filter(|_| tier.keeps_rounds()) {
        None => put_u8(buf, 0),
        Some(s) => {
            put_u8(buf, 1);
            put_scenario(buf, s);
        }
    }
    put_report(buf, &o.report, tier);
}

pub(crate) fn interval_outcome(d: &mut Dec) -> Result<IntervalOutcome, ArchiveError> {
    let day = calendar_day(d)?;
    let peak = peak(d)?;
    let label = d.str()?;
    let scenario = match d.u8()? {
        0 => None,
        1 => Some(scenario(d)?),
        _ => return Err(corrupt("unknown scenario tag")),
    };
    Ok(IntervalOutcome {
        day,
        peak,
        label,
        scenario,
        report: report(d)?,
    })
}

// ---------------------------------------------------------------------
// Economics (index payload)
// ---------------------------------------------------------------------

pub(crate) fn put_economics(buf: &mut Vec<u8>, e: &CampaignEconomics) {
    put_f64(buf, e.rewards_paid.value());
    put_f64(buf, e.energy_shaved.value());
    put_f64(buf, e.production_cost_avoided.value());
    put_f64(buf, e.peak_saving.value());
    put_f64(buf, e.net_gain.value());
    put_u64(buf, e.economic_stops as u64);
}

pub(crate) fn economics(d: &mut Dec) -> Result<CampaignEconomics, ArchiveError> {
    Ok(CampaignEconomics {
        rewards_paid: Money(d.f64()?),
        energy_shaved: KilowattHours(d.f64()?),
        production_cost_avoided: Money(d.f64()?),
        peak_saving: Money(d.f64()?),
        net_gain: Money(d.f64()?),
        economic_stops: d.u64()? as usize,
    })
}
