//! The typed failure modes of archive I/O.
//!
//! Decoding never panics: every length is bounds-checked before it is
//! trusted, every enum tag and every value range is validated before a
//! core constructor (which may assert its invariants) is called, so a
//! corrupt, truncated or wrong-version archive always surfaces as an
//! [`ArchiveError`].

use std::fmt;
use std::io;

/// Whether an archive stores one campaign or a whole fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveKind {
    /// One [`CampaignReport`](loadbal_core::campaign::CampaignReport).
    Campaign,
    /// A [`FleetReport`](loadbal_core::fleet::FleetReport): labelled
    /// cells plus fleet economics.
    Fleet,
}

impl fmt::Display for ArchiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArchiveKind::Campaign => "campaign",
            ArchiveKind::Fleet => "fleet",
        })
    }
}

/// Everything that can go wrong reading or writing a season archive.
#[derive(Debug)]
pub enum ArchiveError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The file does not start with the `LBSA` magic — not an archive.
    BadMagic,
    /// The header carries a format version this build cannot decode.
    UnsupportedVersion(u16),
    /// The file ends before the structure it promises (a cut-off
    /// download, a partial write).
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The bytes are structurally invalid: a bad tag, an out-of-range
    /// value, an offset pointing outside the file.
    Corrupt {
        /// What was being decoded when the inconsistency surfaced.
        context: &'static str,
    },
    /// A cell index beyond the archive's cell count.
    CellOutOfRange {
        /// The requested cell.
        cell: usize,
        /// Cells the archive holds.
        cells: usize,
    },
    /// No day with the requested index exists in the cell.
    DayNotFound {
        /// The cell searched.
        cell: usize,
        /// The requested day index.
        day: u64,
    },
    /// The archive holds a different [`ArchiveKind`] than the read API
    /// requires (e.g. [`read_campaign`](crate::SeasonArchive::read_campaign)
    /// on a fleet archive).
    WrongKind {
        /// What the call needed.
        expected: ArchiveKind,
        /// What the archive holds.
        found: ArchiveKind,
    },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive i/o failed: {e}"),
            ArchiveError::BadMagic => f.write_str("not a season archive (bad magic)"),
            ArchiveError::UnsupportedVersion(v) => {
                write!(f, "unsupported archive format version {v}")
            }
            ArchiveError::Truncated { context } => {
                write!(f, "archive truncated while reading {context}")
            }
            ArchiveError::Corrupt { context } => write!(f, "archive corrupt: {context}"),
            ArchiveError::CellOutOfRange { cell, cells } => {
                write!(f, "cell {cell} out of range (archive has {cells})")
            }
            ArchiveError::DayNotFound { cell, day } => {
                write!(f, "cell {cell} has no day {day}")
            }
            ArchiveError::WrongKind { expected, found } => {
                write!(f, "expected a {expected} archive, found a {found} archive")
            }
        }
    }
}

impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArchiveError {
    fn from(e: io::Error) -> ArchiveError {
        ArchiveError::Io(e)
    }
}

/// Shorthand used throughout the decoders.
pub(crate) fn corrupt(context: &'static str) -> ArchiveError {
    ArchiveError::Corrupt { context }
}

/// Shorthand used throughout the decoders.
pub(crate) fn truncated(context: &'static str) -> ArchiveError {
    ArchiveError::Truncated { context }
}
