//! Fixed constants of the on-disk format. The layout itself is
//! documented at the crate root.

/// First four bytes of every season archive: `LBSA`.
pub const MAGIC: &[u8; 4] = b"LBSA";

/// Last four bytes of every season archive: `LBIX`.
pub const TRAILER_MAGIC: &[u8; 4] = b"LBIX";

/// Format version this build writes and the only one it reads.
pub const VERSION: u16 = 1;

/// Header `kind` byte for a single-campaign archive.
pub(crate) const KIND_CAMPAIGN: u8 = 0;

/// Header `kind` byte for a fleet archive.
pub(crate) const KIND_FLEET: u8 = 1;

/// Bytes in the fixed header: magic, version, tier, kind, cell count.
pub const HEADER_LEN: u64 = 12;

/// Bytes in the fixed trailer: index offset, index length, magic.
pub const TRAILER_LEN: u64 = 16;
