//! Tiered season archives: a compact, versioned, *seekable* binary
//! format for [`CampaignReport`](loadbal_core::campaign::CampaignReport)s
//! and [`FleetReport`](loadbal_core::fleet::FleetReport)s, plus the
//! `season-inspect` CLI that lists, dumps and diffs them.
//!
//! The workspace's vendored `serde` is a derive-compatibility stub with
//! no real serialization behind it, so this crate carries its own codec:
//! a hand-written little-endian format designed for the two things a
//! season archive is actually used for — *pulling one day back out
//! without decoding the season*, and *storing low-tier seasons in a few
//! hundred bytes per day*.
//!
//! # What goes in
//!
//! Archives are written at a [`ReportTier`](loadbal_core::session::ReportTier):
//! the writer downgrades on the way out, so a
//! [`ReportTier::Settlement`](loadbal_core::session::ReportTier::Settlement)
//! archive of a full-trace season simply never encodes round records or
//! materialised scenarios — no intermediate clone, no wasted bytes.
//! Reading an archive yields exactly what
//! [`CampaignReport::at_tier`](loadbal_core::campaign::CampaignReport::at_tier)
//! would have produced in memory.
//!
//! # On-disk format (version 1)
//!
//! All integers are little-endian; `f64` is stored as its IEEE-754 bit
//! pattern (`to_bits`, little-endian), so round-trips are bit-exact.
//! Strings are a `u32` byte length followed by UTF-8. A file has four
//! sections:
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────────┐
//! │ HEADER (12 bytes)                                              │
//! │   magic     [u8; 4] = "LBSA"                                   │
//! │   version   u16     = 1                                        │
//! │   tier      u8        0=aggregate 1=settlement 2=full-trace    │
//! │   kind      u8        0=campaign 1=fleet                       │
//! │   cells     u32       number of cells (1 for a campaign)       │
//! ├────────────────────────────────────────────────────────────────┤
//! │ DATA: per cell, in cell order:                                 │
//! │   one BLOCK per evaluated day   (codec: DayOutcome)            │
//! │   one BLOCK per negotiated peak (codec: IntervalOutcome)       │
//! │ where BLOCK = payload_len: u32, payload: [u8; payload_len]     │
//! ├────────────────────────────────────────────────────────────────┤
//! │ INDEX (one blob, decoded on open)                              │
//! │   fleet economics               -- fleet archives only         │
//! │   cell_count u32, then per cell:                               │
//! │     label: str                                                 │
//! │     economics (5 × f64 + u64)                                  │
//! │     day_count u32,     day entries     (day u64, off u64, len  │
//! │                                         u32)                   │
//! │     outcome_count u32, outcome entries (day u64, start u64,    │
//! │                                         end u64, off u64, len  │
//! │                                         u32)                   │
//! ├────────────────────────────────────────────────────────────────┤
//! │ TRAILER (16 bytes)                                             │
//! │   index_offset u64, index_len u32, magic [u8; 4] = "LBIX"      │
//! └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Offsets in the index are absolute file offsets of a block's length
//! prefix; the prefix is cross-checked against the index `len` on every
//! read. [`SeasonArchive::open`] parses only header + trailer + index,
//! so `list` and single-day reads are O(index) regardless of season
//! size. The trailer-at-the-end layout is what lets the *writer* run
//! over a plain [`Write`](std::io::Write) sink with no seeking.
//!
//! # Failure behaviour
//!
//! Decoding never panics. Foreign files fail with
//! [`ArchiveError::BadMagic`], future versions with
//! [`ArchiveError::UnsupportedVersion`], cut-off files with
//! [`ArchiveError::Truncated`], and bit-rot with
//! [`ArchiveError::Corrupt`] — every count is bounds-checked against
//! the remaining bytes before allocation, and every value range a core
//! constructor asserts is validated before that constructor runs.
//!
//! # Example
//!
//! ```
//! use loadbal_archive::{write_campaign, SeasonArchive};
//! use loadbal_core::campaign::{CampaignBuilder, FixedPredictor};
//! use loadbal_core::session::ReportTier;
//! use powergrid::calendar::Horizon;
//! use powergrid::population::PopulationBuilder;
//! use powergrid::prediction::MovingAverage;
//! use powergrid::weather::{Season, WeatherModel};
//!
//! let homes = PopulationBuilder::new().households(12).build(5);
//! let report = CampaignBuilder::new(
//!     &homes,
//!     &WeatherModel::winter(),
//!     &Horizon::new(3, 0, Season::Winter),
//! )
//! .warmup_days(2)
//! .predictor(FixedPredictor(MovingAverage::new(2)))
//! .report_tier(ReportTier::Settlement)
//! .build()
//! .run_sequential();
//!
//! let dir = std::env::temp_dir().join("loadbal-archive-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc-season.lbsa");
//! write_campaign(&path, &report, ReportTier::Settlement).unwrap();
//!
//! let mut archive = SeasonArchive::open(&path).unwrap();
//! assert_eq!(archive.read_campaign().unwrap(), report);
//! std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
pub mod error;
pub mod format;
pub mod reader;
pub mod writer;

pub use error::{ArchiveError, ArchiveKind};
pub use reader::{ArchiveIndex, CellIndex, DayEntry, OutcomeEntry, SeasonArchive};
pub use writer::{write_campaign, write_campaign_to, write_fleet, write_fleet_to, WriteStats};
