//! Season-archive reader: open, list, and decode archives written by
//! [`crate::writer`], a single day at a time or wholesale.
//!
//! Opening parses only the 12-byte header and the index (found through
//! the fixed trailer) — the data section is never touched until a
//! specific block is requested, so listing a multi-megabyte season or
//! pulling one day out of it stays O(index), not O(archive).

use crate::codec::{self, Dec};
use crate::error::{corrupt, ArchiveError, ArchiveKind};
use crate::format::{
    HEADER_LEN, KIND_CAMPAIGN, KIND_FLEET, MAGIC, TRAILER_LEN, TRAILER_MAGIC, VERSION,
};
use loadbal_core::campaign::{CampaignEconomics, CampaignReport, DayOutcome, IntervalOutcome};
use loadbal_core::fleet::{CellReport, FleetReport};
use loadbal_core::session::ReportTier;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

/// Location of one day record in the data section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayEntry {
    /// Calendar day index the record describes.
    pub day_index: u64,
    /// Payload length in bytes.
    pub len: u32,
    pub(crate) offset: u64,
}

/// Location of one negotiated-peak outcome in the data section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeEntry {
    /// Calendar day index the peak fell on.
    pub day_index: u64,
    /// First interval slot of the peak.
    pub interval_start: u64,
    /// One-past-the-last interval slot of the peak.
    pub interval_end: u64,
    /// Payload length in bytes.
    pub len: u32,
    pub(crate) offset: u64,
}

/// Everything the index stores for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellIndex {
    /// The cell's label (empty for a campaign archive).
    pub label: String,
    /// The cell's stop-rule accounting.
    pub economics: CampaignEconomics,
    /// One entry per stored day, in written order.
    pub days: Vec<DayEntry>,
    /// One entry per stored outcome, in written order.
    pub outcomes: Vec<OutcomeEntry>,
}

/// The decoded archive index: cells plus (for fleets) fleet economics.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveIndex {
    /// Fleet-level economics; `None` in a campaign archive.
    pub fleet_economics: Option<CampaignEconomics>,
    /// One index per cell.
    pub cells: Vec<CellIndex>,
}

/// An open season archive: parsed header and index over a seekable
/// reader, with on-demand block decoding.
pub struct SeasonArchive<R: Read + Seek> {
    reader: R,
    tier: ReportTier,
    kind: ArchiveKind,
    index: ArchiveIndex,
}

impl SeasonArchive<BufReader<File>> {
    /// Opens an archive file.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Io`] on filesystem failure, [`ArchiveError::BadMagic`] /
    /// [`ArchiveError::UnsupportedVersion`] for foreign files, and
    /// [`ArchiveError::Truncated`] / [`ArchiveError::Corrupt`] for
    /// damaged ones.
    pub fn open(path: impl AsRef<Path>) -> Result<SeasonArchive<BufReader<File>>, ArchiveError> {
        SeasonArchive::from_reader(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> SeasonArchive<R> {
    /// Opens an archive over any seekable reader.
    ///
    /// # Errors
    ///
    /// Same contract as [`SeasonArchive::open`].
    pub fn from_reader(mut reader: R) -> Result<SeasonArchive<R>, ArchiveError> {
        let total = reader.seek(SeekFrom::End(0))?;
        if total < HEADER_LEN + TRAILER_LEN {
            return Err(ArchiveError::Truncated {
                context: "file shorter than header + trailer",
            });
        }

        // Header.
        reader.seek(SeekFrom::Start(0))?;
        let mut head = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut head)?;
        let Some((magic, head_rest)) = head.split_first_chunk::<4>() else {
            return Err(ArchiveError::Truncated { context: "header" });
        };
        if magic != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        let mut d = Dec::new(head_rest, "header");
        let version = d.u16()?;
        if version != VERSION {
            return Err(ArchiveError::UnsupportedVersion(version));
        }
        let tier = codec::tier(&mut d)?;
        let kind = match d.u8()? {
            KIND_CAMPAIGN => ArchiveKind::Campaign,
            KIND_FLEET => ArchiveKind::Fleet,
            _ => return Err(corrupt("unknown archive-kind tag")),
        };
        let cell_count = d.u32()? as usize;

        // Trailer → index location.
        reader.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        let mut tail = [0u8; TRAILER_LEN as usize];
        reader.read_exact(&mut tail)?;
        let Some((tail_rest, trailer_magic)) = tail.split_last_chunk::<4>() else {
            return Err(ArchiveError::Truncated { context: "trailer" });
        };
        if trailer_magic != TRAILER_MAGIC {
            return Err(corrupt("trailer magic missing"));
        }
        let mut d = Dec::new(tail_rest, "trailer");
        let index_offset = d.u64()?;
        let index_len = u64::from(d.u32()?);
        if index_offset < HEADER_LEN || index_offset + index_len + TRAILER_LEN != total {
            return Err(corrupt("index location disagrees with file size"));
        }

        // Index.
        reader.seek(SeekFrom::Start(index_offset))?;
        let mut raw = vec![0u8; index_len as usize];
        reader.read_exact(&mut raw)?;
        let index = parse_index(&raw, kind, cell_count, index_offset)?;

        Ok(SeasonArchive {
            reader,
            tier,
            kind,
            index,
        })
    }

    /// The tier the archive was written at — an upper bound on what any
    /// report read out of it can contain.
    pub fn tier(&self) -> ReportTier {
        self.tier
    }

    /// Whether this is a campaign or a fleet archive.
    pub fn kind(&self) -> ArchiveKind {
        self.kind
    }

    /// The parsed index: labels, economics and block locations.
    pub fn index(&self) -> &ArchiveIndex {
        &self.index
    }

    fn cell(&self, cell: usize) -> Result<&CellIndex, ArchiveError> {
        self.index
            .cells
            .get(cell)
            .ok_or(ArchiveError::CellOutOfRange {
                cell,
                cells: self.index.cells.len(),
            })
    }

    /// Seeks to one block, cross-checks its length prefix against the
    /// index, and returns the payload.
    fn block(&mut self, offset: u64, len: u32) -> Result<Vec<u8>, ArchiveError> {
        self.reader.seek(SeekFrom::Start(offset))?;
        let mut prefix = [0u8; 4];
        self.reader.read_exact(&mut prefix)?;
        if u32::from_le_bytes(prefix) != len {
            return Err(corrupt("block length prefix disagrees with index"));
        }
        let mut payload = vec![0u8; len as usize];
        self.reader.read_exact(&mut payload)?;
        Ok(payload)
    }

    /// Reads one day's record from one cell without decoding anything
    /// else.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::CellOutOfRange`] / [`ArchiveError::DayNotFound`]
    /// for bad coordinates, plus the open-time error contract.
    pub fn read_day(&mut self, cell: usize, day_index: u64) -> Result<DayOutcome, ArchiveError> {
        let entry = *self
            .cell(cell)?
            .days
            .iter()
            .find(|d| d.day_index == day_index)
            .ok_or(ArchiveError::DayNotFound {
                cell,
                day: day_index,
            })?;
        let payload = self.block(entry.offset, entry.len)?;
        let mut d = Dec::new(&payload, "day record");
        let day = codec::day_outcome(&mut d)?;
        d.finish()?;
        Ok(day)
    }

    /// Reads every negotiated-peak outcome that fell on one day of one
    /// cell (empty if the day had no peaks).
    ///
    /// # Errors
    ///
    /// [`ArchiveError::CellOutOfRange`] for a bad cell, plus the
    /// open-time error contract.
    pub fn read_day_outcomes(
        &mut self,
        cell: usize,
        day_index: u64,
    ) -> Result<Vec<IntervalOutcome>, ArchiveError> {
        let entries: Vec<OutcomeEntry> = self
            .cell(cell)?
            .outcomes
            .iter()
            .filter(|o| o.day_index == day_index)
            .copied()
            .collect();
        let mut out = Vec::with_capacity(entries.len());
        for entry in entries {
            let payload = self.block(entry.offset, entry.len)?;
            let mut d = Dec::new(&payload, "outcome record");
            out.push(codec::interval_outcome(&mut d)?);
            d.finish()?;
        }
        Ok(out)
    }

    /// Decodes one whole cell back into a [`CampaignReport`].
    ///
    /// # Errors
    ///
    /// [`ArchiveError::CellOutOfRange`] for a bad cell, plus the
    /// open-time error contract.
    pub fn read_cell(&mut self, cell: usize) -> Result<CampaignReport, ArchiveError> {
        let (economics, day_entries, outcome_entries) = {
            let c = self.cell(cell)?;
            (c.economics, c.days.clone(), c.outcomes.clone())
        };
        let mut days = Vec::with_capacity(day_entries.len());
        for entry in day_entries {
            let payload = self.block(entry.offset, entry.len)?;
            let mut d = Dec::new(&payload, "day record");
            days.push(codec::day_outcome(&mut d)?);
            d.finish()?;
        }
        let mut outcomes = Vec::with_capacity(outcome_entries.len());
        for entry in outcome_entries {
            let payload = self.block(entry.offset, entry.len)?;
            let mut d = Dec::new(&payload, "outcome record");
            outcomes.push(codec::interval_outcome(&mut d)?);
            d.finish()?;
        }
        Ok(CampaignReport {
            outcomes,
            days,
            economics,
        })
    }

    /// Decodes a campaign archive back into its [`CampaignReport`].
    ///
    /// # Errors
    ///
    /// [`ArchiveError::WrongKind`] on a fleet archive, plus the
    /// open-time error contract.
    pub fn read_campaign(&mut self) -> Result<CampaignReport, ArchiveError> {
        if self.kind != ArchiveKind::Campaign {
            return Err(ArchiveError::WrongKind {
                expected: ArchiveKind::Campaign,
                found: self.kind,
            });
        }
        self.read_cell(0)
    }

    /// Decodes a fleet archive back into its [`FleetReport`].
    ///
    /// # Errors
    ///
    /// [`ArchiveError::WrongKind`] on a campaign archive, plus the
    /// open-time error contract.
    pub fn read_fleet(&mut self) -> Result<FleetReport, ArchiveError> {
        if self.kind != ArchiveKind::Fleet {
            return Err(ArchiveError::WrongKind {
                expected: ArchiveKind::Fleet,
                found: self.kind,
            });
        }
        let economics = self
            .index
            .fleet_economics
            .ok_or(corrupt("fleet archive missing fleet economics"))?;
        let labels: Vec<String> = self
            .index
            .cells
            .iter()
            .map(|cell| cell.label.clone())
            .collect();
        let mut cells = Vec::with_capacity(labels.len());
        for (i, label) in labels.into_iter().enumerate() {
            cells.push(CellReport {
                label,
                report: self.read_cell(i)?,
            });
        }
        Ok(FleetReport { cells, economics })
    }
}

fn parse_index(
    raw: &[u8],
    kind: ArchiveKind,
    header_cells: usize,
    index_offset: u64,
) -> Result<ArchiveIndex, ArchiveError> {
    let mut d = Dec::new(raw, "index");
    let fleet_economics = match kind {
        ArchiveKind::Campaign => None,
        ArchiveKind::Fleet => Some(codec::economics(&mut d)?),
    };
    let cell_count = d.count(14)?;
    if cell_count != header_cells {
        return Err(corrupt("index cell count disagrees with header"));
    }
    let mut cells = Vec::with_capacity(cell_count);
    for _ in 0..cell_count {
        let label = d.str()?;
        let economics = codec::economics(&mut d)?;
        let day_count = d.count(20)?;
        let mut days = Vec::with_capacity(day_count);
        for _ in 0..day_count {
            let entry = DayEntry {
                day_index: d.u64()?,
                offset: d.u64()?,
                len: d.u32()?,
            };
            check_block_span(entry.offset, entry.len, index_offset)?;
            days.push(entry);
        }
        let outcome_count = d.count(36)?;
        let mut outcomes = Vec::with_capacity(outcome_count);
        for _ in 0..outcome_count {
            let entry = OutcomeEntry {
                day_index: d.u64()?,
                interval_start: d.u64()?,
                interval_end: d.u64()?,
                offset: d.u64()?,
                len: d.u32()?,
            };
            check_block_span(entry.offset, entry.len, index_offset)?;
            outcomes.push(entry);
        }
        cells.push(CellIndex {
            label,
            economics,
            days,
            outcomes,
        });
    }
    d.finish()?;
    Ok(ArchiveIndex {
        fleet_economics,
        cells,
    })
}

/// Every indexed block (length prefix + payload) must sit fully inside
/// the data section, between the header and the index.
fn check_block_span(offset: u64, len: u32, index_offset: u64) -> Result<(), ArchiveError> {
    let end = offset
        .checked_add(4)
        .and_then(|p| p.checked_add(u64::from(len)));
    match end {
        Some(end) if offset >= HEADER_LEN && end <= index_offset => Ok(()),
        _ => Err(corrupt("indexed block outside the data section")),
    }
}
