//! Season-archive writers: stream a [`CampaignReport`] or
//! [`FleetReport`] into the versioned binary format.
//!
//! The writer needs only [`Write`] — no seeking — because every offset
//! the index records is tracked by a byte-counting wrapper as blocks go
//! out. Reports are *downgraded on write*: pass a tier below the
//! report's own and the rounds/settlements/scenarios that tier drops
//! are simply never encoded (no intermediate clone is built).

use crate::codec;
use crate::error::{ArchiveError, ArchiveKind};
use crate::format::{KIND_CAMPAIGN, KIND_FLEET, MAGIC, TRAILER_MAGIC, VERSION};
use loadbal_core::campaign::{CampaignEconomics, CampaignReport};
use loadbal_core::fleet::FleetReport;
use loadbal_core::session::ReportTier;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// What a write produced, for logs and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteStats {
    /// Total archive size (header + blocks + index + trailer).
    pub bytes_written: u64,
    /// Cells stored (1 for a campaign archive).
    pub cells: usize,
    /// Day records stored across all cells.
    pub days: usize,
    /// Negotiated-peak outcomes stored across all cells.
    pub outcomes: usize,
}

/// [`Write`] adapter that tracks the absolute byte position, so block
/// offsets can be recorded without seeking.
struct Counting<W: Write> {
    inner: W,
    pos: u64,
}

impl<W: Write> Counting<W> {
    fn put(&mut self, bytes: &[u8]) -> Result<(), ArchiveError> {
        self.inner.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Writes one length-prefixed block, returning the offset of its
    /// length prefix.
    fn put_block(&mut self, payload: &[u8]) -> Result<u64, ArchiveError> {
        let offset = self.pos;
        self.put(&(payload.len() as u32).to_le_bytes())?;
        self.put(payload)?;
        Ok(offset)
    }
}

struct DayAt {
    day_index: u64,
    offset: u64,
    len: u32,
}

struct OutcomeAt {
    day_index: u64,
    interval_start: u64,
    interval_end: u64,
    offset: u64,
    len: u32,
}

struct CellAt<'a> {
    label: &'a str,
    economics: &'a CampaignEconomics,
    days: Vec<DayAt>,
    outcomes: Vec<OutcomeAt>,
}

/// Writes a campaign archive to `path` (created or truncated).
///
/// # Errors
///
/// Propagates I/O failures as [`ArchiveError::Io`].
pub fn write_campaign(
    path: impl AsRef<Path>,
    report: &CampaignReport,
    tier: ReportTier,
) -> Result<WriteStats, ArchiveError> {
    let mut file = BufWriter::new(File::create(path)?);
    let stats = write_campaign_to(&mut file, report, tier)?;
    file.flush()?;
    Ok(stats)
}

/// Writes a campaign archive to any [`Write`] sink.
///
/// # Errors
///
/// Propagates I/O failures as [`ArchiveError::Io`].
pub fn write_campaign_to<W: Write>(
    sink: W,
    report: &CampaignReport,
    tier: ReportTier,
) -> Result<WriteStats, ArchiveError> {
    write_archive(sink, ArchiveKind::Campaign, tier, None, &[("", report)])
}

/// Writes a fleet archive to `path` (created or truncated).
///
/// # Errors
///
/// Propagates I/O failures as [`ArchiveError::Io`].
pub fn write_fleet(
    path: impl AsRef<Path>,
    report: &FleetReport,
    tier: ReportTier,
) -> Result<WriteStats, ArchiveError> {
    let mut file = BufWriter::new(File::create(path)?);
    let stats = write_fleet_to(&mut file, report, tier)?;
    file.flush()?;
    Ok(stats)
}

/// Writes a fleet archive to any [`Write`] sink.
///
/// # Errors
///
/// Propagates I/O failures as [`ArchiveError::Io`].
pub fn write_fleet_to<W: Write>(
    sink: W,
    report: &FleetReport,
    tier: ReportTier,
) -> Result<WriteStats, ArchiveError> {
    let cells: Vec<(&str, &CampaignReport)> = report
        .cells
        .iter()
        .map(|c| (c.label.as_str(), &c.report))
        .collect();
    write_archive(
        sink,
        ArchiveKind::Fleet,
        tier,
        Some(&report.economics),
        &cells,
    )
}

fn write_archive<W: Write>(
    sink: W,
    kind: ArchiveKind,
    tier: ReportTier,
    fleet_economics: Option<&CampaignEconomics>,
    cells: &[(&str, &CampaignReport)],
) -> Result<WriteStats, ArchiveError> {
    let mut out = Counting {
        inner: sink,
        pos: 0,
    };

    // Header.
    let mut head = Vec::with_capacity(12);
    head.extend_from_slice(MAGIC);
    codec::put_u16(&mut head, VERSION);
    codec::put_tier(&mut head, tier);
    codec::put_u8(
        &mut head,
        match kind {
            ArchiveKind::Campaign => KIND_CAMPAIGN,
            ArchiveKind::Fleet => KIND_FLEET,
        },
    );
    codec::put_u32(&mut head, cells.len() as u32);
    out.put(&head)?;

    // Data section: per cell, day blocks then outcome blocks, each
    // length-prefixed so single blocks are seekable and checkable.
    let mut placed: Vec<CellAt<'_>> = Vec::with_capacity(cells.len());
    let mut buf = Vec::new();
    for (label, report) in cells {
        let mut days = Vec::with_capacity(report.days.len());
        for day in &report.days {
            buf.clear();
            codec::put_day_outcome(&mut buf, day);
            let offset = out.put_block(&buf)?;
            days.push(DayAt {
                day_index: day.day.index,
                offset,
                len: buf.len() as u32,
            });
        }
        let mut outcomes = Vec::with_capacity(report.outcomes.len());
        for outcome in &report.outcomes {
            buf.clear();
            codec::put_interval_outcome(&mut buf, outcome, tier);
            let offset = out.put_block(&buf)?;
            outcomes.push(OutcomeAt {
                day_index: outcome.day.index,
                interval_start: outcome.peak.interval.start() as u64,
                interval_end: outcome.peak.interval.end() as u64,
                offset,
                len: buf.len() as u32,
            });
        }
        placed.push(CellAt {
            label,
            economics: &report.economics,
            days,
            outcomes,
        });
    }

    // Index: everything `list` and per-day reads need without touching
    // the data section — labels, economics, and block locations.
    let mut index = Vec::new();
    if let Some(economics) = fleet_economics {
        codec::put_economics(&mut index, economics);
    }
    codec::put_u32(&mut index, placed.len() as u32);
    for cell in &placed {
        codec::put_str(&mut index, cell.label);
        codec::put_economics(&mut index, cell.economics);
        codec::put_u32(&mut index, cell.days.len() as u32);
        for d in &cell.days {
            codec::put_u64(&mut index, d.day_index);
            codec::put_u64(&mut index, d.offset);
            codec::put_u32(&mut index, d.len);
        }
        codec::put_u32(&mut index, cell.outcomes.len() as u32);
        for o in &cell.outcomes {
            codec::put_u64(&mut index, o.day_index);
            codec::put_u64(&mut index, o.interval_start);
            codec::put_u64(&mut index, o.interval_end);
            codec::put_u64(&mut index, o.offset);
            codec::put_u32(&mut index, o.len);
        }
    }
    let index_offset = out.pos;
    out.put(&index)?;

    // Trailer: fixed 16 bytes at the very end so a reader can find the
    // index with one seek.
    let mut trailer = Vec::with_capacity(16);
    codec::put_u64(&mut trailer, index_offset);
    codec::put_u32(&mut trailer, index.len() as u32);
    trailer.extend_from_slice(TRAILER_MAGIC);
    out.put(&trailer)?;

    Ok(WriteStats {
        bytes_written: out.pos,
        cells: placed.len(),
        days: placed.iter().map(|c| c.days.len()).sum(),
        outcomes: placed.iter().map(|c| c.outcomes.len()).sum(),
    })
}
