//! Archive round-trip properties: encode → decode is the identity (at
//! every tier, for arbitrary campaign and fleet reports), and damaged
//! archives — truncated, bit-flipped, wrong version, wrong magic —
//! always fail with a typed [`ArchiveError`], never a panic.

use loadbal_archive::{write_campaign_to, write_fleet_to, ArchiveError, SeasonArchive};
use loadbal_core::beta::BetaPolicy;
use loadbal_core::campaign::{CampaignEconomics, CampaignReport, DayOutcome, IntervalOutcome};
use loadbal_core::concession::{NegotiationStatus, TerminationReason};
use loadbal_core::fleet::{CellReport, FleetReport};
use loadbal_core::methods::AnnouncementMethod;
use loadbal_core::preferences::CustomerPreferences;
use loadbal_core::reward::{RewardFormula, RewardTable};
use loadbal_core::session::{
    CustomerProfile, NegotiationReport, ReportTier, RoundDigest, RoundRecord, Scenario, Settlement,
};
use loadbal_core::utility_agent::{EconomicStopRule, TableShape, UtilityAgentConfig};
use powergrid::calendar::{CalendarDay, DayType};
use powergrid::peak::Peak;
use powergrid::tariff::Tariff;
use powergrid::time::Interval;
use powergrid::units::{Fraction, KilowattHours, Money, PricePerKwh};
use powergrid::weather::Season;
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Strategies: arbitrary (but invariant-respecting) reports
// ---------------------------------------------------------------------

fn arb_fraction() -> impl Strategy<Value = Fraction> {
    (0.0f64..=1.0).prop_map(Fraction::clamped)
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0usize..96, 1usize..12).prop_map(|(s, len)| Interval::new(s, s + len))
}

/// Strictly increasing cut-downs with non-decreasing rewards, built
/// from positive increments so the core constructors' assertions hold.
fn arb_entries() -> impl Strategy<Value = Vec<(Fraction, Money)>> {
    prop::collection::vec((0.01f64..0.15, 0.0f64..8.0), 1..6).prop_map(|increments| {
        let mut cutdown = 0.0;
        let mut reward = 0.0;
        increments
            .into_iter()
            .map(|(dc, dr)| {
                cutdown += dc;
                reward += dr;
                (Fraction::clamped(cutdown), Money(reward))
            })
            .collect()
    })
}

fn arb_preferences() -> impl Strategy<Value = CustomerPreferences> {
    (arb_entries(), arb_fraction())
        .prop_map(|(entries, max)| CustomerPreferences::new(entries, max))
}

fn arb_table() -> impl Strategy<Value = RewardTable> {
    (arb_interval(), arb_entries()).prop_map(|(i, e)| RewardTable::new(i, e))
}

fn arb_tariff() -> impl Strategy<Value = Tariff> {
    (0.0f64..2.0, 0.0f64..2.0, 0.0f64..2.0).prop_map(|(a, b, c)| {
        let mut prices = [a, b, c];
        prices.sort_by(f64::total_cmp);
        Tariff::new(
            PricePerKwh(prices[0]),
            PricePerKwh(prices[1]),
            PricePerKwh(prices[2]),
        )
    })
}

fn arb_method() -> impl Strategy<Value = AnnouncementMethod> {
    prop_oneof![
        Just(AnnouncementMethod::Offer),
        Just(AnnouncementMethod::RequestForBids),
        Just(AnnouncementMethod::RewardTables),
    ]
}

fn arb_status() -> impl Strategy<Value = NegotiationStatus> {
    prop_oneof![
        Just(NegotiationStatus::Converged(
            TerminationReason::OveruseAcceptable
        )),
        Just(NegotiationStatus::Converged(
            TerminationReason::RewardSaturated
        )),
        Just(NegotiationStatus::Converged(TerminationReason::NoMovement)),
        Just(NegotiationStatus::Converged(TerminationReason::SingleRound)),
        Just(NegotiationStatus::Converged(
            TerminationReason::EconomicStop
        )),
        Just(NegotiationStatus::MaxRoundsExceeded),
    ]
}

fn arb_beta_policy() -> impl Strategy<Value = BetaPolicy> {
    prop_oneof![
        (0.1f64..8.0).prop_map(|beta| BetaPolicy::Constant { beta }),
        (0.1f64..4.0, 0.0f64..2.0, 0.0f64..0.2).prop_map(|(beta, gain, min_progress)| {
            BetaPolicy::Adaptive {
                beta,
                gain,
                min_progress,
            }
        }),
        (0.5f64..8.0, 0.3f64..1.0).prop_map(|(beta, decay)| BetaPolicy::Annealing { beta, decay }),
    ]
}

fn arb_config() -> impl Strategy<Value = UtilityAgentConfig> {
    let formula =
        (0.0f64..6.0, 0.5f64..40.0, 0.0f64..2.0).prop_map(|(beta, max, eps)| RewardFormula {
            beta,
            max_reward: Money(max),
            epsilon: Money(eps),
        });
    let shape = prop_oneof![Just(TableShape::Quadratic), Just(TableShape::Linear)];
    let stop = prop_oneof![
        Just(None),
        (0.1f64..3.0).prop_map(|v| Some(EconomicStopRule {
            value_per_kwh: PricePerKwh(v),
        })),
    ];
    let scalars = (
        arb_fraction(),
        0.1f64..30.0,
        arb_fraction(),
        1u32..40,
        0.0f64..0.5,
    );
    (
        formula,
        arb_beta_policy(),
        shape,
        stop,
        prop::collection::vec(0.05f64..1.0, 1..8),
        scalars,
    )
        .prop_map(
            |(formula, beta_policy, table_shape, economic_stop, levels, scalars)| {
                let (pin, reward_at, offer_x_max, max_rounds, max_allowed_overuse) = scalars;
                UtilityAgentConfig {
                    formula,
                    beta_policy,
                    max_allowed_overuse,
                    levels,
                    initial_reward_at: Money(reward_at),
                    pin,
                    table_shape,
                    offer_x_max,
                    max_rounds,
                    economic_stop,
                }
            },
        )
}

fn arb_customer() -> impl Strategy<Value = CustomerProfile> {
    (0.2f64..6.0, 1.0f64..1.3, arb_preferences()).prop_map(|(predicted, slack, preferences)| {
        CustomerProfile {
            predicted_use: KilowattHours(predicted),
            allowed_use: KilowattHours(predicted * slack),
            preferences,
        }
    })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        0.5f64..50.0,
        arb_interval(),
        prop::collection::vec(arb_customer(), 1..4),
        arb_config(),
        arb_method(),
        arb_tariff(),
    )
        .prop_map(
            |(normal, interval, customers, config, method, tariff)| Scenario {
                normal_use: KilowattHours(normal),
                interval,
                customers,
                config,
                method,
                tariff,
            },
        )
}

fn arb_round() -> impl Strategy<Value = RoundRecord> {
    (
        0u32..30,
        prop_oneof![Just(None), arb_table().prop_map(|t| Some(Arc::new(t)))],
        prop::collection::vec(arb_fraction(), 0..5),
        any::<f64>(),
        0u64..500,
    )
        .prop_map(|(round, table, bids, total, messages)| RoundRecord {
            round,
            table,
            bids,
            predicted_total: KilowattHours(total),
            messages,
        })
}

fn arb_digest() -> impl Strategy<Value = RoundDigest> {
    (0u32..60, 0u64..5000, any::<f64>(), any::<f64>(), 0u32..50).prop_map(
        |(rounds, messages, total, rewards, customers)| RoundDigest {
            rounds,
            messages,
            final_total: KilowattHours(total),
            total_rewards: Money(rewards),
            customers,
        },
    )
}

fn arb_report() -> impl Strategy<Value = NegotiationReport> {
    (
        (arb_method(), any::<f64>(), any::<f64>()),
        arb_digest(),
        prop::collection::vec(arb_round(), 0..5),
        arb_status(),
        prop::collection::vec(
            (arb_fraction(), 0.0f64..40.0).prop_map(|(cutdown, reward)| Settlement {
                cutdown,
                reward: Money(reward),
            }),
            0..5,
        ),
        0u64..100,
    )
        .prop_map(
            |((method, normal, initial), digest, rounds, status, settlements, extra)| {
                NegotiationReport::from_parts(
                    method,
                    KilowattHours(normal),
                    KilowattHours(initial),
                    ReportTier::FullTrace,
                    digest,
                    rounds,
                    status,
                    settlements,
                    extra,
                )
            },
        )
}

fn arb_calendar_day() -> impl Strategy<Value = CalendarDay> {
    (0u64..200, any::<bool>(), 0u8..4).prop_map(|(index, weekend, season)| CalendarDay {
        index,
        day_type: if weekend {
            DayType::Weekend
        } else {
            DayType::Weekday
        },
        season: match season {
            0 => Season::Winter,
            1 => Season::Spring,
            2 => Season::Summer,
            _ => Season::Autumn,
        },
    })
}

fn arb_peak() -> impl Strategy<Value = Peak> {
    (arb_interval(), any::<f64>(), any::<f64>()).prop_map(|(interval, overuse, normal)| Peak {
        interval,
        predicted_overuse: KilowattHours(overuse),
        normal_use: KilowattHours(normal),
    })
}

fn arb_day_outcome() -> impl Strategy<Value = DayOutcome> {
    const PREDICTORS: [&str; 5] = [
        "moving-average",
        "exponential-smoothing",
        "seasonal-naive",
        "weather-regression",
        "holt-trend",
    ];
    (
        arb_calendar_day(),
        0usize..PREDICTORS.len(),
        prop::collection::vec(arb_peak(), 0..4),
        any::<f64>(),
    )
        .prop_map(|(day, predictor, peaks, delta)| DayOutcome {
            day,
            predictor: PREDICTORS[predictor],
            peaks,
            feedback_delta: KilowattHours(delta),
        })
}

fn arb_interval_outcome() -> impl Strategy<Value = IntervalOutcome> {
    (
        arb_calendar_day(),
        arb_peak(),
        prop_oneof![Just(None), arb_scenario().prop_map(Some)],
        arb_report(),
    )
        .prop_map(|(day, peak, scenario, report)| IntervalOutcome {
            label: format!("day{}/{}", day.index, peak.interval),
            day,
            peak,
            scenario,
            report,
        })
}

fn arb_economics() -> impl Strategy<Value = CampaignEconomics> {
    (
        (any::<f64>(), any::<f64>(), any::<f64>()),
        (any::<f64>(), any::<f64>()),
        0usize..40,
    )
        .prop_map(
            |((paid, shaved, avoided), (saving, gain), stops)| CampaignEconomics {
                rewards_paid: Money(paid),
                energy_shaved: KilowattHours(shaved),
                production_cost_avoided: Money(avoided),
                peak_saving: Money(saving),
                net_gain: Money(gain),
                economic_stops: stops,
            },
        )
}

fn arb_campaign_report() -> impl Strategy<Value = CampaignReport> {
    (
        prop::collection::vec(arb_interval_outcome(), 0..4),
        prop::collection::vec(arb_day_outcome(), 0..5),
        arb_economics(),
    )
        .prop_map(|(outcomes, days, economics)| CampaignReport {
            outcomes,
            days,
            economics,
        })
}

fn arb_fleet_report() -> impl Strategy<Value = FleetReport> {
    (
        prop::collection::vec(arb_campaign_report(), 1..4),
        arb_economics(),
    )
        .prop_map(|(reports, economics)| FleetReport {
            cells: reports
                .into_iter()
                .enumerate()
                .map(|(i, report)| CellReport {
                    label: format!("cell-{i}"),
                    report,
                })
                .collect(),
            economics,
        })
}

fn arb_tier() -> impl Strategy<Value = ReportTier> {
    prop_oneof![
        Just(ReportTier::Aggregate),
        Just(ReportTier::Settlement),
        Just(ReportTier::FullTrace),
    ]
}

// ---------------------------------------------------------------------
// Round-trip identity
// ---------------------------------------------------------------------

fn campaign_bytes(report: &CampaignReport, tier: ReportTier) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_campaign_to(&mut bytes, report, tier).expect("write to Vec cannot fail");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → decode is the identity at every tier: the decoded
    /// campaign equals the in-memory downgrade `at_tier(tier)`.
    #[test]
    fn campaign_roundtrips_at_every_tier(report in arb_campaign_report()) {
        for tier in ReportTier::all() {
            let bytes = campaign_bytes(&report, tier);
            let mut archive = SeasonArchive::from_reader(Cursor::new(bytes)).expect("open");
            prop_assert_eq!(archive.tier(), tier);
            let decoded = archive.read_campaign().expect("decode");
            prop_assert_eq!(decoded, report.at_tier(tier));
        }
    }

    /// Same identity for fleet archives, via `read_fleet`.
    #[test]
    fn fleet_roundtrips_at_every_tier(report in arb_fleet_report()) {
        for tier in ReportTier::all() {
            let mut bytes = Vec::new();
            write_fleet_to(&mut bytes, &report, tier).expect("write");
            let mut archive = SeasonArchive::from_reader(Cursor::new(bytes)).expect("open");
            let decoded = archive.read_fleet().expect("decode");
            prop_assert_eq!(decoded, report.at_tier(tier));
        }
    }

    /// Writing an already-downgraded report at a higher archive tier
    /// cannot resurrect detail: the stored tier is the minimum.
    #[test]
    fn downgraded_reports_stay_downgraded(
        report in arb_campaign_report(),
        pre in arb_tier(),
    ) {
        let downgraded = report.at_tier(pre);
        let bytes = campaign_bytes(&downgraded, ReportTier::FullTrace);
        let mut archive = SeasonArchive::from_reader(Cursor::new(bytes)).expect("open");
        let decoded = archive.read_campaign().expect("decode");
        prop_assert_eq!(decoded, downgraded);
    }

    /// Single-day seeks return exactly what the whole-report decode
    /// holds, without touching other blocks.
    #[test]
    fn day_seeks_match_full_decode(report in arb_campaign_report()) {
        let bytes = campaign_bytes(&report, ReportTier::FullTrace);
        let mut archive = SeasonArchive::from_reader(Cursor::new(bytes)).expect("open");
        let mut seen = std::collections::HashSet::new();
        for day in &report.days {
            // Duplicate day indices can occur in arbitrary reports; the
            // seek contract returns the first stored record.
            if !seen.insert(day.day.index) {
                continue;
            }
            let read = archive.read_day(0, day.day.index).expect("day seek");
            prop_assert_eq!(&read, day);
        }
        for outcome in &report.outcomes {
            let from_day = archive
                .read_day_outcomes(0, outcome.day.index)
                .expect("outcome seek");
            let expected: Vec<&IntervalOutcome> = report
                .outcomes
                .iter()
                .filter(|o| o.day.index == outcome.day.index)
                .collect();
            prop_assert_eq!(from_day.len(), expected.len());
            for (got, want) in from_day.iter().zip(expected) {
                prop_assert_eq!(got, want);
            }
        }
    }

    /// Random single-byte corruption anywhere in the file decodes to
    /// `Ok` or a typed error — never a panic, never unbounded work.
    #[test]
    fn corrupt_bytes_never_panic(
        report in arb_campaign_report(),
        position in any::<usize>(),
        value in 0u8..=255,
    ) {
        let mut bytes = campaign_bytes(&report, ReportTier::Settlement);
        let position = position % bytes.len();
        bytes[position] = value;
        // Any outcome is acceptable except a panic or a hang.
        let result = SeasonArchive::from_reader(Cursor::new(bytes)).and_then(|mut a| {
            let days: Vec<u64> = a.index().cells.iter()
                .flat_map(|c| c.days.iter().map(|d| d.day_index))
                .collect();
            for day in days {
                a.read_day(0, day)?;
                a.read_day_outcomes(0, day)?;
            }
            a.read_campaign()
        });
        drop(result);
    }
}

// ---------------------------------------------------------------------
// Damage with deterministic, typed outcomes
// ---------------------------------------------------------------------

/// A small real season (not synthetic) for the deterministic damage
/// tests, so the bytes exercised look like production archives.
fn fixture() -> CampaignReport {
    use loadbal_core::campaign::{CampaignBuilder, FixedPredictor};
    use powergrid::calendar::Horizon;
    use powergrid::population::PopulationBuilder;
    use powergrid::prediction::MovingAverage;
    use powergrid::weather::WeatherModel;

    let homes = PopulationBuilder::new().households(12).build(5);
    let campaign = CampaignBuilder::new(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(4, 0, Season::Winter),
    )
    .warmup_days(2)
    .predictor(FixedPredictor(MovingAverage::new(2)))
    .build();
    campaign.run_sequential()
}

#[test]
fn every_truncation_fails_with_typed_error() {
    // Settlement tier keeps the byte count small enough to try every
    // truncation point.
    let bytes = campaign_bytes(&fixture(), ReportTier::Settlement);
    for len in 0..bytes.len() {
        let result = SeasonArchive::from_reader(Cursor::new(bytes[..len].to_vec()));
        assert!(
            result.is_err(),
            "truncation to {len}/{} bytes must not open cleanly",
            bytes.len()
        );
    }
}

#[test]
fn wrong_version_is_rejected_by_name() {
    let mut bytes = campaign_bytes(&fixture(), ReportTier::Settlement);
    bytes[4..6].copy_from_slice(&9u16.to_le_bytes());
    match SeasonArchive::from_reader(Cursor::new(bytes)) {
        Err(ArchiveError::UnsupportedVersion(9)) => {}
        other => panic!(
            "expected UnsupportedVersion(9), got {other:?}",
            other = other.err()
        ),
    }
}

#[test]
fn foreign_files_are_rejected_as_bad_magic() {
    let mut bytes = campaign_bytes(&fixture(), ReportTier::Settlement);
    bytes[0..4].copy_from_slice(b"GZIP");
    assert!(matches!(
        SeasonArchive::from_reader(Cursor::new(bytes)),
        Err(ArchiveError::BadMagic)
    ));
    // Far too short for even a header.
    assert!(matches!(
        SeasonArchive::from_reader(Cursor::new(b"LB".to_vec())),
        Err(ArchiveError::Truncated { .. })
    ));
}

#[test]
fn kind_and_coordinate_errors_are_typed() {
    let report = fixture();
    let bytes = campaign_bytes(&report, ReportTier::FullTrace);
    let mut archive = SeasonArchive::from_reader(Cursor::new(bytes)).expect("open");

    assert!(matches!(
        archive.read_fleet(),
        Err(ArchiveError::WrongKind { .. })
    ));
    assert!(matches!(
        archive.read_day(7, 0),
        Err(ArchiveError::CellOutOfRange { cell: 7, .. })
    ));
    assert!(matches!(
        archive.read_day(0, 9999),
        Err(ArchiveError::DayNotFound { day: 9999, .. })
    ));

    let fleet = FleetReport {
        cells: vec![CellReport {
            label: "solo".to_string(),
            report,
        }],
        economics: CampaignEconomics {
            rewards_paid: Money(0.0),
            energy_shaved: KilowattHours(0.0),
            production_cost_avoided: Money(0.0),
            peak_saving: Money(0.0),
            net_gain: Money(0.0),
            economic_stops: 0,
        },
    };
    let mut bytes = Vec::new();
    write_fleet_to(&mut bytes, &fleet, ReportTier::Settlement).expect("write fleet");
    let mut archive = SeasonArchive::from_reader(Cursor::new(bytes)).expect("open fleet");
    assert!(matches!(
        archive.read_campaign(),
        Err(ArchiveError::WrongKind { .. })
    ));
}
