//! E7 / §7 bench: negotiation cost across β policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loadbal_core::beta::BetaPolicy;
use loadbal_core::session::ScenarioBuilder;
use loadbal_core::utility_agent::UtilityAgentConfig;

fn bench_beta(c: &mut Criterion) {
    let mut group = c.benchmark_group("beta_sweep");
    let policies = [
        ("beta_0.5", BetaPolicy::constant(0.5)),
        ("beta_2", BetaPolicy::constant(2.0)),
        ("beta_8", BetaPolicy::constant(8.0)),
        ("adaptive", BetaPolicy::adaptive(1.0)),
        ("annealing", BetaPolicy::annealing(4.0, 0.7)),
    ];
    for (name, policy) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            let scenario = ScenarioBuilder::random(200, 0.35, 7)
                .config(UtilityAgentConfig::paper().with_beta_policy(policy))
                .build();
            b.iter(|| std::hint::black_box(scenario.run()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_beta);
criterion_main!(benches);
