//! E13 bench: the grid→negotiation campaign pipeline end to end —
//! simulate, predict, detect, materialise, negotiate — versus
//! population size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loadbal_core::campaign::{CampaignConfig, CampaignPlan};
use powergrid::calendar::Horizon;
use powergrid::population::PopulationBuilder;
use powergrid::prediction::WeatherRegression;
use powergrid::weather::{Season, WeatherModel};

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    for &households in &[100usize, 400, 1600] {
        let homes = PopulationBuilder::new().households(households).build(42);
        let horizon = Horizon::new(10, 0, Season::Winter);
        group.bench_with_input(
            BenchmarkId::new("plan_and_run", households),
            &homes,
            |b, homes| {
                b.iter(|| {
                    let plan = CampaignPlan::build(
                        homes,
                        &WeatherModel::winter(),
                        &horizon,
                        &WeatherRegression::calibrated(),
                        CampaignConfig::default(),
                    );
                    std::hint::black_box(plan.run())
                });
            },
        );
        let plan = CampaignPlan::build(
            &homes,
            &WeatherModel::winter(),
            &horizon,
            &WeatherRegression::calibrated(),
            CampaignConfig::default(),
        );
        group.bench_with_input(
            BenchmarkId::new("run_parallel", households),
            &plan,
            |b, plan| b.iter(|| std::hint::black_box(plan.run())),
        );
        group.bench_with_input(
            BenchmarkId::new("run_sequential", households),
            &plan,
            |b, plan| b.iter(|| std::hint::black_box(plan.run_sequential())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
