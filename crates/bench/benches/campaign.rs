//! E13/E14 bench: the grid→negotiation campaign pipeline end to end —
//! simulate, predict, detect, materialise, negotiate — versus
//! population size, open- and closed-loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loadbal_core::campaign::{CampaignBuilder, CampaignRunner, ClosedLoop, FixedPredictor};
use powergrid::calendar::Horizon;
use powergrid::household::Household;
use powergrid::population::PopulationBuilder;
use powergrid::prediction::WeatherRegression;
use powergrid::weather::{Season, WeatherModel};

fn build_runner<'a>(homes: &'a [Household], horizon: &Horizon, closed: bool) -> CampaignRunner<'a> {
    let builder = CampaignBuilder::new(homes, &WeatherModel::winter(), horizon)
        .predictor(FixedPredictor(WeatherRegression::calibrated()));
    if closed {
        builder.feedback(ClosedLoop).build()
    } else {
        builder.build()
    }
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    for &households in &[100usize, 400, 1600] {
        let homes = PopulationBuilder::new().households(households).build(42);
        let horizon = Horizon::new(10, 0, Season::Winter);
        group.bench_with_input(
            BenchmarkId::new("build_and_run", households),
            &homes,
            |b, homes| {
                b.iter(|| std::hint::black_box(build_runner(homes, &horizon, false).run()));
            },
        );
        let runner = build_runner(&homes, &horizon, false);
        group.bench_with_input(
            BenchmarkId::new("run_parallel", households),
            &runner,
            |b, runner| b.iter(|| std::hint::black_box(runner.run())),
        );
        group.bench_with_input(
            BenchmarkId::new("run_sequential", households),
            &runner,
            |b, runner| b.iter(|| std::hint::black_box(runner.run_sequential())),
        );
        let closed = build_runner(&homes, &horizon, true);
        group.bench_with_input(
            BenchmarkId::new("run_closed_loop", households),
            &closed,
            |b, closed| b.iter(|| std::hint::black_box(closed.run())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
