//! E20 bench: struct-of-arrays population vs per-object trees.
//!
//! Two claims under the stopwatch, mirroring the `city_scale`
//! experiment. First, one day of demand synthesis over a large
//! population is far cheaper through the batched, register-blocked
//! slab kernel than through per-object [`Household::demand_profile`]
//! calls (and measurably cheaper than the scratch-reusing object
//! path) — byte-identical curves either way. Second, scenario
//! derivation (interval flexibility over a detected peak) benefits
//! again from the slab's clipped-interval sweep, which touches only
//! the peak's slots instead of materialising whole-day profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powergrid::demand::aggregate_demand;
use powergrid::household::DemandScratch;
use powergrid::prelude::*;
use powergrid::slab::{aggregate_demand_slab, saving_potential_slab};

fn bench_demand_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_synthesis");
    let axis = TimeAxis::quarter_hourly();
    let weather = WeatherModel::winter().temperatures(&axis, 42);
    for &households in &[10_000usize, 100_000] {
        let builder = PopulationBuilder::new().households(households);
        let homes = builder.build(42);
        let slab = builder.build_slab(42);
        let mean = weather.mean();
        group.bench_with_input(
            BenchmarkId::new("per_object", households),
            &homes,
            |b, homes| {
                b.iter(|| {
                    let mut total = Series::zeros(axis);
                    for h in homes {
                        let profile = h.demand_profile(&axis, mean, 42);
                        for (slot, load) in total.values_mut().iter_mut().zip(profile.values()) {
                            *slot += load;
                        }
                    }
                    std::hint::black_box(total)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("object_scratch", households),
            &homes,
            |b, homes| b.iter(|| std::hint::black_box(aggregate_demand(homes, &weather, &axis, 42))),
        );
        group.bench_with_input(BenchmarkId::new("slab", households), &slab, |b, slab| {
            b.iter(|| std::hint::black_box(aggregate_demand_slab(slab.view(), &weather, &axis, 42)))
        });
    }
    group.finish();
}

fn bench_scenario_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_derivation");
    let axis = TimeAxis::quarter_hourly();
    // A 2-hour evening peak: the clipped sweep does 8/96ths of the work.
    let peak = Interval::new(72, 80);
    for &households in &[10_000usize, 100_000] {
        let builder = PopulationBuilder::new().households(households);
        let homes = builder.build(42);
        let slab = builder.build_slab(42);
        group.bench_with_input(
            BenchmarkId::new("per_object", households),
            &homes,
            |b, homes| {
                b.iter(|| {
                    let mut scratch = DemandScratch::new(&axis);
                    let total = homes.iter().fold(KilowattHours::ZERO, |acc, h| {
                        acc + h
                            .interval_flexibility_with(&axis, -2.0, 42, peak, &mut scratch)
                            .1
                    });
                    std::hint::black_box(total)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("slab", households), &slab, |b, slab| {
            b.iter(|| {
                let mut scratch = DemandScratch::new(&axis);
                std::hint::black_box(saving_potential_slab(
                    slab.view(),
                    &axis,
                    -2.0,
                    42,
                    peak,
                    &mut scratch,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_demand_synthesis, bench_scenario_derivation);
criterion_main!(benches);
