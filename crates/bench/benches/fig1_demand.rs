//! E1 / Figure 1 bench: aggregate demand-curve generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powergrid::prelude::*;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_demand");
    for &n in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let axis = TimeAxis::quarter_hourly();
            let homes = PopulationBuilder::new().households(n).build(42);
            let weather = WeatherModel::winter().temperatures(&axis, 42);
            b.iter(|| {
                let curve = aggregate_demand(&homes, &weather, &axis, 42);
                std::hint::black_box(curve.peak_interval(8));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
