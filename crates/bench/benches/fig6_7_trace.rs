//! E3/E4 / Figures 6–9 bench: the calibrated paper negotiation, in the
//! native and the DESIRE-hosted execution modes.

use criterion::{criterion_group, criterion_main, Criterion};
use loadbal_bench::experiments::paper_scenario;

fn bench_trace(c: &mut Criterion) {
    let scenario = paper_scenario();
    c.bench_function("fig6_7_negotiation", |b| {
        b.iter(|| std::hint::black_box(scenario.run()))
    });
    c.bench_function("fig6_7_desire_hosted", |b| {
        b.iter(|| std::hint::black_box(loadbal_core::desire_host::run_hosted(&scenario)))
    });
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
