//! E15 bench: the fleet layer and the demand hot path.
//!
//! Two claims under the stopwatch. First, `FleetRunner` interleaving N
//! campaigns' peak negotiations on one shared `WorkerPool` beats
//! running the same campaigns back to back, because a campaign's
//! sequential day-bookkeeping no longer leaves cores idle. Second, the
//! allocation-free `demand_profile_with` (one reused `DemandScratch`
//! instead of one `Series` per device per household per day) beats the
//! allocating `demand_profile` on a ≥200-household day — the inner loop
//! every scenario derivation runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loadbal_core::campaign::{CampaignBuilder, CampaignRunner, ClosedLoop, FixedPredictor};
use loadbal_core::fleet::FleetRunner;
use powergrid::calendar::Horizon;
use powergrid::household::{DemandScratch, Household};
use powergrid::population::PopulationBuilder;
use powergrid::prediction::WeatherRegression;
use powergrid::time::TimeAxis;
use powergrid::weather::{Season, WeatherModel};
use std::num::NonZeroUsize;

fn cell<'a>(homes: &'a [Household], horizon: &Horizon, weather: &WeatherModel) -> CampaignRunner<'a> {
    CampaignBuilder::new(homes, weather, horizon)
        .predictor(FixedPredictor(WeatherRegression::calibrated()))
        .feedback(ClosedLoop)
        .build()
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    let weather = WeatherModel::winter();
    let horizon = Horizon::new(8, 0, Season::Winter);
    for &cells in &[4usize, 8, 16] {
        let populations: Vec<Vec<Household>> = (0..cells as u64)
            .map(|s| PopulationBuilder::new().households(120).build(42 ^ s))
            .collect();
        let build = |threads: Option<usize>| {
            let mut fleet = FleetRunner::new();
            if let Some(t) = threads {
                fleet = fleet.threads(NonZeroUsize::new(t).expect("≥ 1"));
            }
            for (i, homes) in populations.iter().enumerate() {
                fleet = fleet.cell(format!("cell{i}"), cell(homes, &horizon, &weather));
            }
            fleet
        };
        // Back-to-back campaigns (the pre-fleet execution model)...
        group.bench_with_input(
            BenchmarkId::new("sequential_cells", cells),
            &build(Some(1)),
            |b, fleet| b.iter(|| std::hint::black_box(fleet.run_sequential())),
        );
        // ...versus one shared pool interleaving all cells' peaks.
        group.bench_with_input(
            BenchmarkId::new("shared_pool", cells),
            &build(None),
            |b, fleet| b.iter(|| std::hint::black_box(fleet.run())),
        );
    }
    group.finish();
}

fn bench_demand_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_hot_path");
    let axis = TimeAxis::quarter_hourly();
    for &n in &[200usize, 800] {
        let homes = PopulationBuilder::new().households(n).build(42);
        // One `Series` allocation per device per household per day.
        group.bench_with_input(BenchmarkId::new("alloc", n), &homes, |b, homes| {
            b.iter(|| {
                let mut total = 0.0;
                for h in homes {
                    total += h.demand_profile(&axis, -4.0, 7).sum();
                }
                std::hint::black_box(total)
            })
        });
        // One scratch for the whole day.
        group.bench_with_input(BenchmarkId::new("scratch", n), &homes, |b, homes| {
            b.iter(|| {
                let mut scratch = DemandScratch::new(&axis);
                let mut total = 0.0;
                for h in homes {
                    total += h
                        .demand_profile_with(&axis, -4.0, 7, &mut scratch)
                        .iter()
                        .sum::<f64>();
                }
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet, bench_demand_hot_path);
criterion_main!(benches);
