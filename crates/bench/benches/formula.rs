//! E6 / §6 bench: the reward-update rule and table operations.

use criterion::{criterion_group, criterion_main, Criterion};
use loadbal_core::reward::{RewardFormula, RewardTable, DEFAULT_LEVELS};
use powergrid::time::Interval;
use powergrid::units::{Fraction, Money};

fn bench_formula(c: &mut Criterion) {
    let formula = RewardFormula::paper();
    c.bench_function("formula_next_reward", |b| {
        b.iter(|| std::hint::black_box(formula.next_reward(Money(17.0), 0.35, 2.0)))
    });

    let table = RewardTable::quadratic(
        Interval::new(72, 80),
        &DEFAULT_LEVELS,
        Money(17.0),
        Fraction::clamped(0.4),
    );
    c.bench_function("table_update", |b| {
        b.iter(|| std::hint::black_box(table.updated(&formula, 0.35, 2.0)))
    });
    let next = table.updated(&formula, 0.35, 2.0);
    c.bench_function("table_dominates", |b| {
        b.iter(|| std::hint::black_box(next.dominates(&table)))
    });
}

criterion_group!(benches, bench_formula);
criterion_main!(benches);
