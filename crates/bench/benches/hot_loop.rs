//! E16 bench: the scheduling + negotiation hot loop.
//!
//! Two claims under the stopwatch, mirroring the `hot_loop` experiment.
//! First, a **persistent** `WorkerPool` (threads spawned once, parked
//! between batches) beats building a pool per `run` call — the cost the
//! campaign day loop used to pay once per day per cell. Second, the
//! scratch-reusing negotiation path (`Scenario::run_in` over one
//! `NegotiationScratch`) beats fresh engines per peak
//! (`Scenario::run`), because bid vectors, reward-table snapshots and
//! effect queues are recycled instead of reallocated — byte-identical
//! results either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loadbal_core::session::{Scenario, ScenarioBuilder};
use loadbal_core::sweep::WorkerPool;
use loadbal_core::sync_driver::NegotiationScratch;
use std::num::NonZeroUsize;

fn scenarios(count: usize, customers: usize) -> Vec<Scenario> {
    (0..count as u64)
        .map(|seed| ScenarioBuilder::random(customers, 0.35, seed).build())
        .collect()
}

fn bench_pool_discipline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_discipline");
    let threads = NonZeroUsize::new(4).expect("4 > 0");
    for &batch in &[4usize, 16] {
        let work = scenarios(batch, 40);
        // A pool built (threads spawned, joined) per call — the pre-PR
        // cost model of `WorkerPool::run` over scoped threads.
        group.bench_with_input(BenchmarkId::new("spawn_per_run", batch), &work, |b, work| {
            b.iter(|| {
                let pool = WorkerPool::new(threads);
                std::hint::black_box(pool.run_with(
                    work.len(),
                    NegotiationScratch::new,
                    |scratch, i| work[i].run_in(work[i].method, scratch),
                ))
            })
        });
        // One parked pool across every iteration.
        let pool = WorkerPool::new(threads);
        group.bench_with_input(BenchmarkId::new("persistent", batch), &work, |b, work| {
            b.iter(|| {
                std::hint::black_box(pool.run_with(
                    work.len(),
                    NegotiationScratch::new,
                    |scratch, i| work[i].run_in(work[i].method, scratch),
                ))
            })
        });
    }
    group.finish();
}

fn bench_negotiation_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("negotiation");
    for &customers in &[40usize, 160] {
        let work = scenarios(8, customers);
        // Fresh engines per peak: one UtilityEngine + N CustomerEngines
        // allocated per negotiation.
        group.bench_with_input(BenchmarkId::new("fresh", customers), &work, |b, work| {
            b.iter(|| {
                let mut total = 0usize;
                for s in work {
                    total += s.run().rounds().len();
                }
                std::hint::black_box(total)
            })
        });
        // One scratch, engines reset per peak.
        group.bench_with_input(BenchmarkId::new("scratch", customers), &work, |b, work| {
            b.iter(|| {
                let mut scratch = NegotiationScratch::new();
                let mut total = 0usize;
                for s in work {
                    total += s.run_in(s.method, &mut scratch).rounds().len();
                }
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool_discipline, bench_negotiation_scratch);
criterion_main!(benches);
