//! E10 bench: the computational-market baseline vs reward tables.

use criterion::{criterion_group, criterion_main, Criterion};
use loadbal_core::market::{run_market, AuctionConfig};
use loadbal_core::session::ScenarioBuilder;

fn bench_market(c: &mut Criterion) {
    let scenario = ScenarioBuilder::random(500, 0.35, 42).build();
    c.bench_function("market_auction", |b| {
        b.iter(|| std::hint::black_box(run_market(&scenario, AuctionConfig::default())))
    });
    c.bench_function("reward_tables_same_population", |b| {
        b.iter(|| std::hint::black_box(scenario.run()))
    });
}

criterion_group!(benches, bench_market);
criterion_main!(benches);
