//! E5 / §3.2.4 bench: the three announcement methods on one scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loadbal_core::methods::AnnouncementMethod;
use loadbal_core::session::ScenarioBuilder;

fn bench_methods(c: &mut Criterion) {
    let scenario = ScenarioBuilder::random(500, 0.35, 42).build();
    let mut group = c.benchmark_group("methods");
    for method in AnnouncementMethod::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(method),
            &method,
            |b, &method| b.iter(|| std::hint::black_box(scenario.run_with(method))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
