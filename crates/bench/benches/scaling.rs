//! E8 bench: negotiation cost versus population size, in both execution
//! modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loadbal_core::distributed::run_distributed;
use loadbal_core::session::ScenarioBuilder;
use massim::clock::SimDuration;
use massim::network::NetworkModel;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_sync");
    for &n in &[10usize, 100, 1000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let scenario = ScenarioBuilder::random(n, 0.35, 42).build();
            b.iter(|| std::hint::black_box(scenario.run()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling_distributed");
    group.sample_size(10);
    for &n in &[10usize, 100, 1000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let scenario = ScenarioBuilder::random(n, 0.35, 42).build();
            b.iter(|| {
                std::hint::black_box(run_distributed(
                    &scenario,
                    NetworkModel::uniform(1, 10),
                    42,
                    SimDuration::from_ticks(100),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
