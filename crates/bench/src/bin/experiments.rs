//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p loadbal-bench --bin experiments -- all
//! cargo run --release -p loadbal-bench --bin experiments -- fig6_7
//! ```

use loadbal_bench::experiments;

const USAGE: &str = "usage: experiments <id>
  ids: fig1 | fig2_5 | fig6_7 | fig8_9 | methods | formula | beta | scaling |
       invariants | market | categories | shapes | campaign | campaign_loop |
       fleet_scaling | all";

fn run(id: &str) -> bool {
    match id {
        "fig1" => println!("{}", experiments::fig1_demand(1000, 42)),
        "fig2_5" => {
            println!("E2 / Figures 2–5 — process abstraction hierarchies\n");
            println!("Figure 2 (UA own process control):");
            println!(
                "{}",
                desire::render::render_tree(
                    &loadbal_core::desire_host::ua_own_process_control_tree()
                )
            );
            println!("Figure 3 (UA cooperation management):");
            println!(
                "{}",
                desire::render::render_tree(&loadbal_core::desire_host::ua_cooperation_tree())
            );
            println!("Figure 4 (CA own process control):");
            println!(
                "{}",
                desire::render::render_tree(
                    &loadbal_core::desire_host::ca_own_process_control_tree()
                )
            );
            println!("Figure 5 (CA cooperation management):");
            println!(
                "{}",
                desire::render::render_tree(&loadbal_core::desire_host::ca_cooperation_tree())
            );
        }
        "fig6_7" => println!("{}", experiments::fig6_7_trace()),
        "fig8_9" => println!("{}", experiments::fig8_9_customer()),
        "methods" => println!("{}", experiments::methods_comparison(500, 42)),
        "formula" => println!("{}", experiments::formula_sweep()),
        "beta" => println!("{}", experiments::beta_sweep(200, 10)),
        "scaling" => println!("{}", experiments::scaling(&[10, 100, 1000, 10000], 42)),
        "invariants" => println!("{}", experiments::invariants(50)),
        "market" => println!("{}", experiments::market_comparison(500, 42)),
        "categories" => println!("{}", experiments::offer_categories(500, 42)),
        "shapes" => println!("{}", experiments::shape_ablation(200, 10)),
        "campaign" => println!(
            "{}",
            experiments::campaign_grid(&[100, 250, 500], &powergrid::weather::Season::all(), 42)
        ),
        "campaign_loop" => println!("{}", experiments::campaign_loop(220, 42)),
        "fleet_scaling" => println!("{}", experiments::fleet_scaling(8, 120, 42)),
        "all" => {
            for id in [
                "fig1",
                "fig2_5",
                "fig6_7",
                "fig8_9",
                "methods",
                "formula",
                "beta",
                "scaling",
                "invariants",
                "market",
                "categories",
                "shapes",
                "campaign",
                "campaign_loop",
                "fleet_scaling",
            ] {
                run(id);
                println!();
            }
        }
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    for id in &args {
        if !run(id) {
            eprintln!("unknown experiment '{id}'\n{USAGE}");
            std::process::exit(2);
        }
    }
}
