//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p loadbal-bench --bin experiments -- all
//! cargo run --release -p loadbal-bench --bin experiments -- fig6_7
//! cargo run --release -p loadbal-bench --bin experiments -- --json fleet_scaling hot_loop
//! ```
//!
//! `--json` additionally writes machine-readable timing records for the
//! perf-tracked experiments (`BENCH_E15.json`, `BENCH_E16.json`,
//! `BENCH_E17.json`) into the current directory, so the performance
//! trajectory is comparable across PRs.

use loadbal_bench::experiments;
use std::alloc::{GlobalAlloc, Layout, System};

/// The system allocator with count + byte accounting on top, feeding
/// [`loadbal_bench::alloc_probe`]. Installed only in this binary — the
/// library stays uninstrumented — so E16 can report real
/// allocations-per-negotiation figures and E17 real retained-bytes
/// figures per report tier.
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter updates allocate
// nothing (relaxed atomic arithmetic).
// lint: allow(unsafe-pool) reason="GlobalAlloc is an unsafe trait; the counting allocator exists only in this binary so library runs stay uninstrumented"
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`, to which this defers
    // unchanged after bumping the (allocation-free) counters.
    // lint: allow(unsafe-pool) reason="required signature of the GlobalAlloc trait"
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        loadbal_bench::alloc_probe::record_alloc(layout.size());
        System.alloc(layout)
    }

    // SAFETY: same contract as `System::dealloc`; `ptr` is passed
    // through untouched.
    // lint: allow(unsafe-pool) reason="required signature of the GlobalAlloc trait"
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        loadbal_bench::alloc_probe::record_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const USAGE: &str = "usage: experiments [--json] <id>...
  ids: fig1 | fig2_5 | fig6_7 | fig8_9 | methods | formula | beta | scaling |
       invariants | market | categories | shapes | campaign | campaign_loop |
       fleet_scaling | hot_loop | report_tiers | fault_resilience |
       adaptive_loops | city_scale | city_scale_smoke | all
  --json: also write BENCH_E15.json / BENCH_E16.json / BENCH_E17.json /
          BENCH_E18.json / BENCH_E19.json / BENCH_E20.json records";

fn write_json(path: &str, json: &str) {
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn run(id: &str, json: bool) -> bool {
    match id {
        "fig1" => println!("{}", experiments::fig1_demand(1000, 42)),
        "fig2_5" => {
            println!("E2 / Figures 2–5 — process abstraction hierarchies\n");
            println!("Figure 2 (UA own process control):");
            println!(
                "{}",
                desire::render::render_tree(
                    &loadbal_core::desire_host::ua_own_process_control_tree()
                )
            );
            println!("Figure 3 (UA cooperation management):");
            println!(
                "{}",
                desire::render::render_tree(&loadbal_core::desire_host::ua_cooperation_tree())
            );
            println!("Figure 4 (CA own process control):");
            println!(
                "{}",
                desire::render::render_tree(
                    &loadbal_core::desire_host::ca_own_process_control_tree()
                )
            );
            println!("Figure 5 (CA cooperation management):");
            println!(
                "{}",
                desire::render::render_tree(&loadbal_core::desire_host::ca_cooperation_tree())
            );
        }
        "fig6_7" => println!("{}", experiments::fig6_7_trace()),
        "fig8_9" => println!("{}", experiments::fig8_9_customer()),
        "methods" => println!("{}", experiments::methods_comparison(500, 42)),
        "formula" => println!("{}", experiments::formula_sweep()),
        "beta" => println!("{}", experiments::beta_sweep(200, 10)),
        "scaling" => println!("{}", experiments::scaling(&[10, 100, 1000, 10000], 42)),
        "invariants" => println!("{}", experiments::invariants(50)),
        "market" => println!("{}", experiments::market_comparison(500, 42)),
        "categories" => println!("{}", experiments::offer_categories(500, 42)),
        "shapes" => println!("{}", experiments::shape_ablation(200, 10)),
        "campaign" => println!(
            "{}",
            experiments::campaign_grid(&[100, 250, 500], &powergrid::weather::Season::all(), 42)
        ),
        "campaign_loop" => println!("{}", experiments::campaign_loop(220, 42)),
        "fleet_scaling" => {
            let r = experiments::fleet_scaling(8, 120, 42);
            println!("{r}");
            if json {
                write_json("BENCH_E15.json", &r.to_json());
            }
        }
        "hot_loop" => {
            // ≥20-day, ≥4-cell winter season: the acceptance shape for
            // the persistent pool vs spawn-per-day comparison.
            let r = experiments::hot_loop(4, 100, 24, 4, 42);
            println!("{r}");
            if json {
                write_json("BENCH_E16.json", &r.to_json());
            }
        }
        "report_tiers" => {
            // The acceptance shape: a 4-cell × 24-day season per tier,
            // sequential so every tier negotiates identically.
            let r = experiments::report_tiers(4, 100, 24, 42);
            println!("{r}");
            if json {
                write_json("BENCH_E17.json", &r.to_json());
            }
        }
        "fault_resilience" => {
            // The acceptance shape: a 3-cell × 10-day winter season run
            // sync, distributed-clean (asserted byte-identical) and once
            // per fault class, diffed peak by peak.
            let r = experiments::fault_resilience(3, 60, 10, 42);
            println!("{r}");
            if json {
                write_json("BENCH_E18.json", &r.to_json());
            }
        }
        "adaptive_loops" => {
            // The acceptance shape: the same seeded winter season run
            // static and with all three self-tuning loops on, adaptive
            // economics asserted no worse and byte-identity asserted
            // across threads and sync/distributed-clean modes.
            let r = experiments::adaptive_loops(220, 16, 42);
            println!("{r}");
            if json {
                write_json("BENCH_E19.json", &r.to_json());
            }
        }
        "city_scale" => {
            // The acceptance shape: one million households as a single
            // struct-of-arrays slab, sharded zero-copy across 64 cells,
            // a 5-day winter season at settlement tier. At this scale
            // the ≥5× slab-vs-per-object demand synthesis claim is
            // asserted, not just recorded.
            let r = experiments::city_scale(1_000_000, 64, 5, 42);
            println!("{r}");
            assert!(
                r.speedup_vs_object >= 5.0,
                "slab demand synthesis only {:.1}× the per-object path (acceptance: ≥5×)",
                r.speedup_vs_object
            );
            if json {
                write_json("BENCH_E20.json", &r.to_json());
            }
        }
        "city_scale_smoke" => {
            // The CI shape: 50k households across 2 shards — exercises
            // the identical machinery (sharding, settlement season,
            // three-path demand agreement, twin-population identity)
            // in seconds rather than minutes.
            let r = experiments::city_scale(50_000, 2, 5, 42);
            println!("{r}");
        }
        "all" => {
            for id in [
                "fig1",
                "fig2_5",
                "fig6_7",
                "fig8_9",
                "methods",
                "formula",
                "beta",
                "scaling",
                "invariants",
                "market",
                "categories",
                "shapes",
                "campaign",
                "campaign_loop",
                "fleet_scaling",
                "hot_loop",
                "report_tiers",
                "fault_resilience",
                "adaptive_loops",
                "city_scale",
            ] {
                run(id, json);
                println!();
            }
        }
        _ => return false,
    }
    true
}

fn main() {
    // Fail fast on an unclean tree: every record stamps `lint_clean`,
    // and perf numbers from a tree violating the determinism/safety
    // invariants are not comparable across PRs.
    loadbal_bench::lint_check::assert_clean();
    let mut json = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--json" {
                json = true;
                false
            } else {
                true
            }
        })
        .collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    for id in &args {
        if !run(id, json) {
            eprintln!("unknown experiment '{id}'\n{USAGE}");
            std::process::exit(2);
        }
    }
}
