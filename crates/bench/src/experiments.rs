//! The experiment implementations (E1–E9).

use loadbal_core::beta::BetaPolicy;
use loadbal_core::campaign::{
    CampaignBuilder, CampaignReport, ClosedLoop, FixedPredictor, MarginalCostStop, OpenLoop,
    Unconditional,
};
use loadbal_core::concession::{verify_announcements, verify_bids};
use loadbal_core::distributed::run_distributed;
use loadbal_core::execution::ExecutionMode;
use loadbal_core::methods::AnnouncementMethod;
use loadbal_core::outcome::SettlementSummary;
use loadbal_core::producer_agent::ProducerAgent;
use loadbal_core::resilience::{FaultClass, ResilienceReport};
use loadbal_core::reward::RewardFormula;
use loadbal_core::session::{NegotiationReport, ReportTier, Scenario, ScenarioBuilder};
use loadbal_core::sweep::ScenarioSweep;
use loadbal_core::utility_agent::UtilityAgentConfig;
use massim::clock::SimDuration;
use massim::network::NetworkModel;
use powergrid::prelude::*;
use std::fmt;
use std::time::Instant;

// ---------------------------------------------------------------------
// E1 — Figure 1: demand curve with peak
// ---------------------------------------------------------------------

/// Result of the Figure 1 experiment.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// The aggregate demand curve (kWh per slot).
    pub curve: DemandCurve,
    /// Normal capacity per slot (the horizontal line in Figure 1).
    pub normal_capacity_per_slot: f64,
    /// Slots served partly by expensive production.
    pub expensive_slots: Vec<usize>,
    /// Energy above normal capacity (the shaded peak area).
    pub energy_above_normal: KilowattHours,
    /// The maximal-energy 2-hour window.
    pub peak_interval: Interval,
}

/// E1: regenerates Figure 1 — a winter-weekday demand curve for a
/// synthetic population, crossing into the expensive-production band in
/// the evening.
pub fn fig1_demand(households: usize, seed: u64) -> Fig1Result {
    let axis = TimeAxis::quarter_hourly();
    let homes = PopulationBuilder::new().households(households).build(seed);
    let weather = WeatherModel::winter().temperatures(&axis, seed);
    let curve = aggregate_demand(&homes, &weather, &axis, seed);
    // Normal capacity at 90 % of the observed peak slot: the evening peak
    // (and only the peak) needs expensive production, as in Figure 1.
    let peak_kwh = curve.series().max();
    let normal = Kilowatts(peak_kwh / axis.slot_hours() * 0.90);
    let production = ProductionModel::two_tier(normal, Kilowatts(normal.value() * 2.0));
    Fig1Result {
        expensive_slots: curve.slots_above_normal(&production),
        energy_above_normal: curve.energy_above_normal(&production),
        normal_capacity_per_slot: production.normal_capacity_per_slot(axis).value(),
        peak_interval: curve.peak_interval(8),
        curve,
    }
}

impl fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let axis = self.curve.axis();
        writeln!(
            f,
            "E1 / Figure 1 — daily demand curve (kWh per 15-min slot)"
        )?;
        writeln!(f, "  {}", self.curve.series().sparkline())?;
        writeln!(
            f,
            "  peak window {} ({}–{}), normal capacity {:.1} kWh/slot",
            self.peak_interval,
            axis.start_of(self.peak_interval.start()),
            axis.start_of(self.peak_interval.end() - 1),
            self.normal_capacity_per_slot,
        )?;
        writeln!(
            f,
            "  expensive production in {} slots, {:.1} kWh above normal",
            self.expensive_slots.len(),
            self.energy_above_normal.value()
        )?;
        writeln!(f, "  slot,time,demand_kwh,above_normal")?;
        for (i, &v) in self.curve.series().values().iter().enumerate() {
            writeln!(
                f,
                "  {},{},{:.3},{}",
                i,
                axis.start_of(i),
                v,
                if v > self.normal_capacity_per_slot {
                    1
                } else {
                    0
                }
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// E3 — Figures 6–7: the Utility Agent's trace
// ---------------------------------------------------------------------

/// Result of the Figure 6/7 experiment: the UA's view per round.
#[derive(Debug, Clone)]
pub struct Fig67Result {
    /// The underlying report.
    pub report: NegotiationReport,
    /// reward(0.4) announced in round 1 (paper: 17).
    pub round1_reward_04: f64,
    /// reward(0.4) announced in the final round (paper: 24.8).
    pub final_reward_04: f64,
    /// Predicted overuse before negotiation (paper: 35).
    pub initial_overuse: f64,
    /// Predicted overuse after the final round (paper: 13).
    pub final_overuse: f64,
}

/// E3: runs the calibrated Figure 6/7 scenario and extracts the
/// checkpoints the screenshots show.
pub fn fig6_7_trace() -> Fig67Result {
    let report = ScenarioBuilder::paper_figure_6().build().run();
    let reward_04 = |idx: usize| {
        report.rounds()[idx]
            .table
            .as_ref()
            .expect("reward-table rounds carry tables")
            .reward_for(Fraction::clamped(0.4))
            .value()
    };
    Fig67Result {
        round1_reward_04: reward_04(0),
        final_reward_04: reward_04(report.rounds().len() - 1),
        initial_overuse: report.initial_overuse().value(),
        final_overuse: report.final_overuse().value(),
        report,
    }
}

impl fmt::Display for Fig67Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E3 / Figures 6–7 — Utility Agent during the negotiation")?;
        writeln!(
            f,
            "  normal capacity 100.0 | predicted usage {:.1} | predicted overuse {:.1}",
            100.0 + self.initial_overuse,
            self.initial_overuse
        )?;
        for r in self.report.rounds() {
            let table = r.table.as_ref().expect("table present");
            write!(f, "  round {} | rewards:", r.round)?;
            for (c, m) in table.entries() {
                write!(f, " {c}→{:.1}", m.value())?;
            }
            writeln!(
                f,
                " | predicted use {:.1} | overuse {:.1}",
                r.predicted_total.value(),
                (r.predicted_total - self.report.normal_use()).value()
            )?;
        }
        writeln!(f, "  outcome: {}", self.report.status())?;
        writeln!(
            f,
            "  checkpoints: r1 reward(0.4) = {:.2} (paper 17) | final reward(0.4) = {:.2} (paper 24.8) | overuse {:.1} → {:.1} (paper 35 → 13)",
            self.round1_reward_04, self.final_reward_04, self.initial_overuse, self.final_overuse
        )
    }
}

// ---------------------------------------------------------------------
// E4 — Figures 8–9: the Customer Agent's trace
// ---------------------------------------------------------------------

/// One round from the highlighted customer's perspective.
#[derive(Debug, Clone)]
pub struct CustomerRound {
    /// Round number.
    pub round: u32,
    /// `(cutdown, offered, required, acceptable)` per level.
    pub comparison: Vec<(f64, f64, f64, bool)>,
    /// The bid chosen.
    pub bid: f64,
}

/// Result of the Figure 8/9 experiment.
#[derive(Debug, Clone)]
pub struct Fig89Result {
    /// Per-round view of customer 0 (the Figure 8/9 customer).
    pub rounds: Vec<CustomerRound>,
}

/// E4: the highlighted Figure 8/9 customer's view of the calibrated
/// negotiation — thresholds 10 at 0.3 and 21 at 0.4; bids 0.2 / 0.4 / 0.4.
pub fn fig8_9_customer() -> Fig89Result {
    let scenario = ScenarioBuilder::paper_figure_6().build();
    let report = scenario.run();
    let prefs = &scenario.customers[0].preferences;
    let rounds = report
        .rounds()
        .iter()
        .map(|r| {
            let table = r.table.as_ref().expect("table present");
            let comparison = table
                .entries()
                .iter()
                .map(|&(c, offered)| {
                    let required = prefs.required_for(c).map(|m| m.value()).unwrap_or(f64::NAN);
                    (
                        c.value(),
                        offered.value(),
                        required,
                        prefs.accepts(c, offered),
                    )
                })
                .collect();
            CustomerRound {
                round: r.round,
                comparison,
                bid: r.bids[0].value(),
            }
        })
        .collect();
    Fig89Result { rounds }
}

impl fmt::Display for Fig89Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E4 / Figures 8–9 — Customer Agent during the negotiation"
        )?;
        for r in &self.rounds {
            writeln!(f, "  round {}:", r.round)?;
            writeln!(f, "    cutdown  offered  required  acceptable")?;
            for (c, offered, required, ok) in &r.comparison {
                writeln!(
                    f,
                    "    {:>7.2}  {:>7.2}  {:>8.2}  {}",
                    c,
                    offered,
                    required,
                    if *ok { "yes" } else { "no" }
                )?;
            }
            writeln!(f, "    → preferred cut-down: {:.2}", r.bid)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// E5 — §3.2.4: method comparison
// ---------------------------------------------------------------------

/// One row of the method-comparison table.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// The method.
    pub method: AnnouncementMethod,
    /// Rounds used.
    pub rounds: usize,
    /// Messages exchanged.
    pub messages: u64,
    /// Final relative overuse.
    pub final_overuse: f64,
    /// Reward / billing-advantage outlay.
    pub outlay: f64,
    /// Customers with non-zero cut-down.
    pub participants: usize,
    /// Utility net gain (avoided expensive production − outlay).
    pub utility_net_gain: f64,
}

/// Result of the method comparison.
#[derive(Debug, Clone)]
pub struct MethodsResult {
    /// One row per method, in paper order.
    pub rows: Vec<MethodRow>,
    /// Initial relative overuse of the shared scenario.
    pub initial_overuse: f64,
}

/// E5: quantifies the qualitative §3.2.4 trade-off table by running all
/// three methods on one scenario.
pub fn methods_comparison(customers: usize, seed: u64) -> MethodsResult {
    let scenario = ScenarioBuilder::random(customers, 0.35, seed).build();
    let producer = ProducerAgent::new(ProductionModel::with_costs(
        Kilowatts(scenario.normal_use.value() / 2.0),
        Kilowatts(scenario.normal_use.value()),
        PricePerKwh(0.3),
        PricePerKwh(4.0),
    ));
    let rows = AnnouncementMethod::all()
        .into_iter()
        .map(|method| {
            let report = scenario.run_with(method);
            let summary = SettlementSummary::compute(&scenario, &report, &producer, 2.0);
            MethodRow {
                method,
                rounds: report.rounds().len(),
                messages: report.total_messages(),
                final_overuse: report.final_overuse_fraction(),
                outlay: report.total_rewards().value(),
                participants: summary.participants,
                utility_net_gain: summary.utility_net_gain.value(),
            }
        })
        .collect();
    MethodsResult {
        rows,
        initial_overuse: scenario.initial_overuse_fraction(),
    }
}

impl fmt::Display for MethodsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E5 / §3.2.4 — announcement methods on one scenario (initial overuse {:.1} %)",
            100.0 * self.initial_overuse
        )?;
        writeln!(
            f,
            "  {:<18} {:>6} {:>9} {:>11} {:>9} {:>13} {:>12}",
            "method", "rounds", "messages", "overuse %", "outlay", "participants", "utility gain"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<18} {:>6} {:>9} {:>11.1} {:>9.1} {:>13} {:>12.1}",
                r.method.to_string(),
                r.rounds,
                r.messages,
                100.0 * r.final_overuse,
                r.outlay,
                r.participants,
                r.utility_net_gain
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// E6 — §6: the reward formula
// ---------------------------------------------------------------------

/// One trajectory of the §6 update rule.
#[derive(Debug, Clone)]
pub struct FormulaRow {
    /// Fixed relative overuse driving the updates.
    pub overuse: f64,
    /// Starting reward.
    pub reward0: f64,
    /// Steps until the increment drops to ε.
    pub steps_to_saturation: usize,
    /// Final reward (≤ max_reward).
    pub final_reward: f64,
    /// Size of the first update step (the "reward increases more when
    /// the predicted overuse is higher" claim).
    pub first_step: f64,
}

/// Result of the formula sweep.
#[derive(Debug, Clone)]
pub struct FormulaResult {
    /// One row per (overuse, reward₀) pair.
    pub rows: Vec<FormulaRow>,
    /// The formula used.
    pub formula: RewardFormula,
}

/// E6: sweeps the §6 rule over overuse levels and starting rewards,
/// demonstrating logistic saturation below `max_reward` and faster
/// growth under higher overuse.
pub fn formula_sweep() -> FormulaResult {
    let formula = RewardFormula::paper();
    let mut rows = Vec::new();
    for &overuse in &[0.05, 0.1, 0.2, 0.35, 0.5] {
        for &reward0 in &[5.0, 10.0, 17.0, 25.0] {
            let mut reward = Money(reward0);
            let first_step = (formula.next_reward(reward, overuse, formula.beta) - reward).value();
            let mut steps = 0;
            loop {
                let next = formula.next_reward(reward, overuse, formula.beta);
                steps += 1;
                if (next - reward).abs() <= formula.epsilon || steps > 500 {
                    reward = next;
                    break;
                }
                reward = next;
            }
            rows.push(FormulaRow {
                overuse,
                reward0,
                steps_to_saturation: steps,
                final_reward: reward.value(),
                first_step,
            });
        }
    }
    FormulaResult { rows, formula }
}

impl fmt::Display for FormulaResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E6 / §6 — reward-update trajectories (β = {}, max = {}, ε = {})",
            self.formula.beta,
            self.formula.max_reward.value(),
            self.formula.epsilon.value()
        )?;
        writeln!(
            f,
            "  {:>8} {:>8} {:>11} {:>6} {:>12}",
            "overuse", "reward0", "first step", "steps", "final"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>8.2} {:>8.1} {:>11.2} {:>6} {:>12.2}",
                r.overuse, r.reward0, r.first_step, r.steps_to_saturation, r.final_reward
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// E7 — §7: β sensitivity (constant vs dynamic)
// ---------------------------------------------------------------------

/// One row of the β sweep.
#[derive(Debug, Clone)]
pub struct BetaRow {
    /// Policy description.
    pub policy: String,
    /// Mean rounds to convergence.
    pub mean_rounds: f64,
    /// Mean final relative overuse.
    pub mean_final_overuse: f64,
    /// Mean reward outlay.
    pub mean_outlay: f64,
    /// Convergence rate over the seeds.
    pub converged: f64,
}

/// Result of the β sweep.
#[derive(Debug, Clone)]
pub struct BetaResult {
    /// One row per policy.
    pub rows: Vec<BetaRow>,
    /// Seeds per policy.
    pub repetitions: usize,
}

/// E7: the §7 future-work experiment — constant β at several values plus
/// the two dynamic policies, averaged over seeded populations.
///
/// The full policy × seed grid is built once as a [`ScenarioSweep`] and
/// fanned across cores; the sweep's determinism guarantee (outcomes
/// byte-identical to a sequential run) keeps the aggregates replayable.
pub fn beta_sweep(customers: usize, repetitions: usize) -> BetaResult {
    let mut policies: Vec<BetaPolicy> = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        .iter()
        .map(|&b| BetaPolicy::constant(b))
        .collect();
    policies.push(BetaPolicy::adaptive(1.0));
    policies.push(BetaPolicy::annealing(4.0, 0.7));

    let sweep = policies
        .iter()
        .fold(ScenarioSweep::new(), |sweep, &policy| {
            sweep.seeded_grid(
                &policy.to_string(),
                customers,
                0.35,
                0..repetitions as u64,
                move |builder| builder.config(UtilityAgentConfig::paper().with_beta_policy(policy)),
            )
        });
    let outcomes = sweep.run();

    let rows = policies
        .iter()
        .zip(outcomes.chunks(repetitions.max(1)))
        .map(|(policy, chunk)| {
            let n = chunk.len() as f64;
            BetaRow {
                policy: policy.to_string(),
                mean_rounds: chunk
                    .iter()
                    .map(|o| o.report.rounds().len() as f64)
                    .sum::<f64>()
                    / n,
                mean_final_overuse: chunk
                    .iter()
                    .map(|o| o.report.final_overuse_fraction())
                    .sum::<f64>()
                    / n,
                mean_outlay: chunk
                    .iter()
                    .map(|o| o.report.total_rewards().value())
                    .sum::<f64>()
                    / n,
                converged: chunk.iter().filter(|o| o.report.converged()).count() as f64 / n,
            }
        })
        .collect();
    BetaResult { rows, repetitions }
}

impl fmt::Display for BetaResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E7 / §7 — β sensitivity ({} seeded populations per policy)",
            self.repetitions
        )?;
        writeln!(
            f,
            "  {:<42} {:>7} {:>11} {:>9} {:>10}",
            "policy", "rounds", "overuse %", "outlay", "converged"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<42} {:>7.2} {:>11.1} {:>9.1} {:>9.0}%",
                r.policy,
                r.mean_rounds,
                100.0 * r.mean_final_overuse,
                r.mean_outlay,
                100.0 * r.converged
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// E8 — scalability
// ---------------------------------------------------------------------

/// One row of the scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of Customer Agents.
    pub customers: usize,
    /// Rounds to convergence.
    pub rounds: usize,
    /// Messages exchanged (protocol level).
    pub messages: u64,
    /// Wall-clock of the synchronous run, microseconds.
    pub sync_us: u128,
    /// Wall-clock of the distributed (massim) run, microseconds.
    pub distributed_us: u128,
    /// Virtual end-time of the distributed run (ticks).
    pub virtual_ticks: u64,
}

/// Result of the scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// One row per population size.
    pub rows: Vec<ScalingRow>,
}

/// E8: rounds, message volume and wall-clock versus population size, in
/// both execution modes.
///
/// Scenario construction (population synthesis — the embarrassingly
/// parallel part) fans across cores with
/// [`massim::threaded::run_batch`]; the *measured* negotiations then
/// run sequentially, so each row's microsecond figures are wall-clock
/// free of co-runner core contention — the scaling shape is the
/// experiment's entire point.
pub fn scaling(sizes: &[usize], seed: u64) -> ScalingResult {
    let jobs: Vec<massim::threaded::Job<Scenario>> = sizes
        .iter()
        .map(|&n| {
            Box::new(move || ScenarioBuilder::random(n, 0.35, seed).build())
                as massim::threaded::Job<Scenario>
        })
        .collect();
    let threads = std::thread::available_parallelism()
        .unwrap_or(std::num::NonZeroUsize::new(1).expect("1 > 0"));
    let scenarios = massim::threaded::run_batch(jobs, threads);

    let rows = sizes
        .iter()
        .zip(scenarios)
        .map(|(&n, scenario)| {
            let t0 = Instant::now();
            let sync = scenario.run();
            let sync_us = t0.elapsed().as_micros();
            let t1 = Instant::now();
            let dist = run_distributed(
                &scenario,
                NetworkModel::uniform(1, 10),
                seed,
                SimDuration::from_ticks(100),
            );
            let distributed_us = t1.elapsed().as_micros();
            ScalingRow {
                customers: n,
                rounds: sync.rounds().len(),
                messages: sync.total_messages(),
                sync_us,
                distributed_us,
                virtual_ticks: dist.metrics.end_time.ticks(),
            }
        })
        .collect();
    ScalingResult { rows }
}

impl fmt::Display for ScalingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E8 — scalability with population size")?;
        writeln!(
            f,
            "  {:>9} {:>6} {:>10} {:>10} {:>13} {:>13}",
            "customers", "rounds", "messages", "sync µs", "massim µs", "virtual ticks"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>9} {:>6} {:>10} {:>10} {:>13} {:>13}",
                r.customers, r.rounds, r.messages, r.sync_us, r.distributed_us, r.virtual_ticks
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// E9 — concession invariants
// ---------------------------------------------------------------------

/// Result of the invariant check.
#[derive(Debug, Clone)]
pub struct InvariantsResult {
    /// Populations checked.
    pub checked: usize,
    /// Announcement-monotonicity violations found.
    pub announcement_violations: usize,
    /// Bid-monotonicity violations found.
    pub bid_violations: usize,
    /// Negotiations that failed to converge.
    pub non_convergent: usize,
}

/// E9: verifies the §3.1 monotonic-concession invariants over seeded
/// random populations (the proptests cover the same ground generatively).
pub fn invariants(populations: usize) -> InvariantsResult {
    let mut result = InvariantsResult {
        checked: populations,
        announcement_violations: 0,
        bid_violations: 0,
        non_convergent: 0,
    };
    for seed in 0..populations as u64 {
        let report = ScenarioBuilder::random(40, 0.3 + (seed % 3) as f64 * 0.1, seed)
            .build()
            .run();
        let tables: Vec<_> = report
            .rounds()
            .iter()
            .filter_map(|r| r.table.as_deref().cloned())
            .collect();
        if verify_announcements(&tables).is_err() {
            result.announcement_violations += 1;
        }
        let bids: Vec<_> = report.rounds().iter().map(|r| r.bids.clone()).collect();
        if verify_bids(&bids).is_err() {
            result.bid_violations += 1;
        }
        if !report.converged() {
            result.non_convergent += 1;
        }
    }
    result
}

impl fmt::Display for InvariantsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E9 / §3.1 — monotonic-concession invariants")?;
        writeln!(f, "  populations checked:        {}", self.checked)?;
        writeln!(
            f,
            "  announcement violations:    {}",
            self.announcement_violations
        )?;
        writeln!(f, "  bid-retreat violations:     {}", self.bid_violations)?;
        writeln!(f, "  non-convergent negotiations: {}", self.non_convergent)
    }
}

// ---------------------------------------------------------------------
// E10 — §7 ref [12]: computational market vs reward tables
// ---------------------------------------------------------------------

/// One row of the market-vs-protocol comparison.
#[derive(Debug, Clone)]
pub struct MarketRow {
    /// Strategy name.
    pub strategy: String,
    /// Quote/announcement iterations.
    pub iterations: usize,
    /// Messages exchanged.
    pub messages: u64,
    /// Final relative overuse.
    pub final_overuse: f64,
    /// Money paid to customers.
    pub paid: f64,
}

/// Result of the market comparison.
#[derive(Debug, Clone)]
pub struct MarketResult {
    /// Reward-table and market rows.
    pub rows: Vec<MarketRow>,
    /// Initial relative overuse.
    pub initial_overuse: f64,
}

/// E10: the computational-market strategy (§7, ref \[12\]) versus the
/// prototype's reward tables, on the same population.
pub fn market_comparison(customers: usize, seed: u64) -> MarketResult {
    use loadbal_core::market::{run_market, AuctionConfig};
    let scenario = ScenarioBuilder::random(customers, 0.35, seed).build();
    let tables = scenario.run();
    let market = run_market(&scenario, AuctionConfig::default());
    let rows = vec![
        MarketRow {
            strategy: "reward-tables (§3.2.3)".into(),
            iterations: tables.rounds().len(),
            messages: tables.total_messages(),
            final_overuse: tables.final_overuse_fraction(),
            paid: tables.total_rewards().value(),
        },
        MarketRow {
            strategy: "computational market [12]".into(),
            iterations: market.iterations.len(),
            messages: market.messages,
            final_overuse: market.final_overuse_fraction(scenario.normal_use),
            paid: market.payments.value(),
        },
    ];
    MarketResult {
        rows,
        initial_overuse: scenario.initial_overuse_fraction(),
    }
}

impl fmt::Display for MarketResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E10 / §7 [12] — reward tables vs computational market (initial overuse {:.1} %)",
            100.0 * self.initial_overuse
        )?;
        writeln!(
            f,
            "  {:<28} {:>10} {:>9} {:>11} {:>9}",
            "strategy", "iterations", "messages", "overuse %", "paid"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<28} {:>10} {:>9} {:>11.1} {:>9.1}",
                r.strategy,
                r.iterations,
                r.messages,
                100.0 * r.final_overuse,
                r.paid
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// E11 — §3.2.1: categorized vs uniform offers
// ---------------------------------------------------------------------

/// One row of the offer-targeting comparison.
#[derive(Debug, Clone)]
pub struct OfferRow {
    /// Variant name.
    pub variant: String,
    /// Final relative overuse.
    pub final_overuse: f64,
    /// Customers accepting.
    pub acceptors: usize,
    /// Billing advantage granted.
    pub outlay: f64,
}

/// Result of the offer-targeting comparison.
#[derive(Debug, Clone)]
pub struct OfferResult {
    /// Uniform and categorized rows.
    pub rows: Vec<OfferRow>,
    /// Initial relative overuse.
    pub initial_overuse: f64,
}

/// E11: the §3.2.1 refinement — dividing customers into consumption
/// categories with per-category `x_max` — against the uniform offer.
/// Two categorization policies are compared: a naive "stricter caps for
/// heavier users" heuristic, and per-category `x_max` optimization.
pub fn offer_categories(customers: usize, seed: u64) -> OfferResult {
    use loadbal_core::category::{
        consumption_categories, optimized_categories, run_categorized_offer,
    };
    use powergrid::units::Fraction;
    let scenario = ScenarioBuilder::random(customers, 0.35, seed).build();
    let uniform = scenario.run_with(AnnouncementMethod::Offer);
    let row_from = |variant: String, report: &NegotiationReport| OfferRow {
        variant,
        final_overuse: report.final_overuse_fraction(),
        acceptors: report
            .final_bids()
            .iter()
            .filter(|b| b.value() > 0.0)
            .count(),
        outlay: report.total_rewards().value(),
    };
    let mut rows = vec![row_from("uniform offer".into(), &uniform)];
    let candidates: Vec<Fraction> = [0.5, 0.6, 0.7, 0.8, 0.9]
        .iter()
        .map(|&v| Fraction::clamped(v))
        .collect();
    for buckets in [2usize, 3, 5] {
        let naive = consumption_categories(&scenario, buckets);
        let naive_report = run_categorized_offer(&scenario, &naive);
        rows.push(row_from(
            format!("{buckets} naive categories"),
            &naive_report,
        ));
        let optimized = optimized_categories(&scenario, buckets, &candidates);
        let optimized_report = run_categorized_offer(&scenario, &optimized);
        rows.push(row_from(
            format!("{buckets} optimized categories"),
            &optimized_report,
        ));
    }
    OfferResult {
        rows,
        initial_overuse: scenario.initial_overuse_fraction(),
    }
}

impl fmt::Display for OfferResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E11 / §3.2.1 — offer targeting (initial overuse {:.1} %)",
            100.0 * self.initial_overuse
        )?;
        writeln!(
            f,
            "  {:<24} {:>11} {:>10} {:>9}",
            "variant", "overuse %", "acceptors", "outlay"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<24} {:>11.1} {:>10} {:>9.1}",
                r.variant,
                100.0 * r.final_overuse,
                r.acceptors,
                r.outlay
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// E12 — ablation: initial-table shape (quadratic vs linear)
// ---------------------------------------------------------------------

/// One row of the table-shape ablation.
#[derive(Debug, Clone)]
pub struct ShapeRow {
    /// Shape name.
    pub shape: String,
    /// The Figure-8 customer's round-1 bid under this shape (paper: 0.2).
    pub fig8_round1_bid: f64,
    /// Mean rounds over random populations.
    pub mean_rounds: f64,
    /// Mean final overuse over random populations.
    pub mean_final_overuse: f64,
    /// Mean reward outlay over random populations.
    pub mean_outlay: f64,
}

/// Result of the shape ablation.
#[derive(Debug, Clone)]
pub struct ShapeResult {
    /// Quadratic and linear rows.
    pub rows: Vec<ShapeRow>,
    /// Random populations per shape.
    pub repetitions: usize,
}

/// E12: ablates the quadratic initial reward table (the Figure 6
/// calibration, DESIGN.md §5) against a linear one. The quadratic shape
/// is what makes the highlighted customer open at 0.2 (Figure 9): linear
/// pricing overpays small cut-downs, pulling the opening bid up.
pub fn shape_ablation(customers: usize, repetitions: usize) -> ShapeResult {
    use loadbal_core::utility_agent::TableShape;
    let rows = [TableShape::Quadratic, TableShape::Linear]
        .into_iter()
        .map(|shape| {
            let config_for = || {
                let mut c = UtilityAgentConfig::paper();
                c.table_shape = shape;
                c
            };
            // The Figure-8 customer's opening bid under this shape.
            let paper = ScenarioBuilder::paper_figure_6()
                .config(config_for())
                .build();
            let paper_report = paper.run();
            let fig8_round1_bid = paper_report.rounds()[0].bids[0].value();
            // Aggregate behaviour over random populations.
            let mut rounds = 0.0;
            let mut overuse = 0.0;
            let mut outlay = 0.0;
            for seed in 0..repetitions as u64 {
                let report = ScenarioBuilder::random(customers, 0.35, seed)
                    .config(config_for())
                    .build()
                    .run();
                rounds += report.rounds().len() as f64;
                overuse += report.final_overuse_fraction();
                outlay += report.total_rewards().value();
            }
            let n = repetitions as f64;
            ShapeRow {
                shape: format!("{shape:?}").to_lowercase(),
                fig8_round1_bid,
                mean_rounds: rounds / n,
                mean_final_overuse: overuse / n,
                mean_outlay: outlay / n,
            }
        })
        .collect();
    ShapeResult { rows, repetitions }
}

impl fmt::Display for ShapeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E12 — initial-table shape ablation ({} populations per shape)",
            self.repetitions
        )?;
        writeln!(
            f,
            "  {:<11} {:>14} {:>7} {:>11} {:>9}",
            "shape", "fig8 r1 bid", "rounds", "overuse %", "outlay"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<11} {:>14.2} {:>7.2} {:>11.1} {:>9.1}",
                r.shape,
                r.fig8_round1_bid,
                r.mean_rounds,
                100.0 * r.mean_final_overuse,
                r.mean_outlay
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// E13 — the grid→negotiation pipeline: season × population campaigns
// ---------------------------------------------------------------------

/// One cell of the campaign grid.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// The season simulated.
    pub season: Season,
    /// Households in the population.
    pub households: usize,
    /// Days evaluated after warmup.
    pub days: usize,
    /// Peaks detected and negotiated.
    pub peaks: usize,
    /// Negotiations that converged.
    pub converged: usize,
    /// Total energy shaved out of the peaks.
    pub energy_shaved: f64,
    /// Total reward outlay.
    pub outlay: f64,
    /// Mean rounds per negotiation.
    pub mean_rounds: f64,
}

/// Result of the campaign-grid experiment.
#[derive(Debug, Clone)]
pub struct CampaignGridResult {
    /// One row per season × population-size cell.
    pub rows: Vec<CampaignRow>,
    /// Days per campaign (including warmup).
    pub horizon_days: u64,
}

/// E13: the full physical pipeline — population → weather → demand →
/// prediction → peak detection → one negotiation per peak — swept over
/// a season × population-size grid. Every cell's peak negotiations fan
/// across cores through [`ScenarioSweep`] (inside
/// [`CampaignRunner::run`](loadbal_core::campaign::CampaignRunner::run)),
/// and the determinism guarantee (parallel byte-identical to
/// sequential) keeps each cell replayable.
pub fn campaign_grid(sizes: &[usize], seasons: &[Season], seed: u64) -> CampaignGridResult {
    let horizon_days = 10;
    let rows = seasons
        .iter()
        .flat_map(|&season| {
            sizes.iter().map(move |&households| {
                let homes = PopulationBuilder::new().households(households).build(seed);
                let horizon = Horizon::new(horizon_days, 0, season);
                let report = CampaignBuilder::new(&homes, &WeatherModel::new(season), &horizon)
                    .predictor(FixedPredictor(WeatherRegression::calibrated()))
                    .build()
                    .run();
                CampaignRow {
                    season,
                    households,
                    days: report.days_evaluated(),
                    peaks: report.negotiations(),
                    converged: report.converged(),
                    energy_shaved: report.total_energy_shaved().value(),
                    outlay: report.total_rewards().value(),
                    mean_rounds: report.mean_rounds(),
                }
            })
        })
        .collect();
    CampaignGridResult { rows, horizon_days }
}

impl fmt::Display for CampaignGridResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E13 — grid→negotiation campaigns ({}-day horizons, warmup 3)",
            self.horizon_days
        )?;
        writeln!(
            f,
            "  {:<8} {:>10} {:>5} {:>6} {:>10} {:>12} {:>9} {:>7}",
            "season", "households", "days", "peaks", "converged", "shaved kWh", "outlay", "rounds"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<8} {:>10} {:>5} {:>6} {:>10} {:>12.1} {:>9.1} {:>7.2}",
                r.season.to_string(),
                r.households,
                r.days,
                r.peaks,
                r.converged,
                r.energy_shaved,
                r.outlay,
                r.mean_rounds
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// E14 — the campaign feedback loop: open vs closed, unconditional vs
// marginal-cost stop
// ---------------------------------------------------------------------

/// One policy combination of the campaign-loop experiment.
#[derive(Debug, Clone)]
pub struct CampaignLoopRow {
    /// Policy combination name.
    pub policy: String,
    /// Peaks detected and negotiated.
    pub peaks: usize,
    /// Negotiations that converged.
    pub converged: usize,
    /// Total energy shaved out of the peaks.
    pub energy_shaved: f64,
    /// Total reward outlay.
    pub outlay: f64,
    /// Energy the feedback policy removed from prediction history.
    pub feedback: f64,
    /// Negotiations the marginal-cost stop rule ended.
    pub economic_stops: usize,
    /// Avoided expensive-production cost minus reward outlay.
    pub net_gain: f64,
}

/// Result of the campaign-loop experiment.
#[derive(Debug, Clone)]
pub struct CampaignLoopResult {
    /// One row per feedback × stop-rule combination.
    pub rows: Vec<CampaignLoopRow>,
    /// Days per campaign (including warmup).
    pub horizon_days: u64,
}

/// E14: the campaign feedback loop — the same winter population run
/// through every feedback × stop-rule combination. Closed-loop
/// campaigns train their predictor on post-negotiation consumption, so
/// later days carry smaller peaks and the campaign shaves (and spends)
/// less; the marginal-cost stop additionally refuses reward-table
/// raises that cost more than the expensive production they could
/// avoid, trading residual overuse within the detector's tolerance for
/// strictly lower outlay.
pub fn campaign_loop(households: usize, seed: u64) -> CampaignLoopResult {
    let horizon_days = 8;
    let homes = PopulationBuilder::new().households(households).build(seed);
    let horizon = Horizon::new(horizon_days, 0, Season::Winter);
    let weather = WeatherModel::winter();
    let run = |label: &str, closed: bool, stop: bool| {
        let builder = CampaignBuilder::new(&homes, &weather, &horizon)
            .predictor(FixedPredictor(WeatherRegression::calibrated()));
        let builder = if closed {
            builder.feedback(ClosedLoop)
        } else {
            builder.feedback(OpenLoop)
        };
        let builder = if stop {
            builder.stop_rule(MarginalCostStop)
        } else {
            builder.stop_rule(Unconditional)
        };
        let report: CampaignReport = builder.build().run();
        CampaignLoopRow {
            policy: label.to_string(),
            peaks: report.negotiations(),
            converged: report.converged(),
            energy_shaved: report.total_energy_shaved().value(),
            outlay: report.total_rewards().value(),
            feedback: report.total_feedback().value(),
            economic_stops: report.economics.economic_stops,
            net_gain: report.economics.net_gain.value(),
        }
    };
    CampaignLoopResult {
        rows: vec![
            run("open / unconditional", false, false),
            run("open / marginal-cost stop", false, true),
            run("closed / unconditional", true, false),
            run("closed / marginal-cost stop", true, true),
        ],
        horizon_days,
    }
}

impl fmt::Display for CampaignLoopResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E14 — campaign feedback loop ({}-day horizon, warmup 3)",
            self.horizon_days
        )?;
        writeln!(
            f,
            "  {:<28} {:>6} {:>10} {:>12} {:>9} {:>10} {:>6} {:>10}",
            "policy", "peaks", "converged", "shaved kWh", "outlay", "feedback", "stops", "net gain"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<28} {:>6} {:>10} {:>12.1} {:>9.1} {:>10.1} {:>6} {:>10.1}",
                r.policy,
                r.peaks,
                r.converged,
                r.energy_shaved,
                r.outlay,
                r.feedback,
                r.economic_stops,
                r.net_gain
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Shared BENCH_E*.json metadata
// ---------------------------------------------------------------------

/// Runtime context stamped into every perf-tracked `BENCH_E*.json`
/// record, so cross-PR comparisons know what each run measured: the
/// report tier the season ran at, the worker threads involved, and
/// whether the counting allocator was feeding
/// [`crate::alloc_probe`] (it is only installed in the experiments
/// binary, so library test runs record `false`), and whether the
/// source tree passed the `loadbal-lint` invariants
/// ([`crate::lint_check`]) — timings from a tree that violates the
/// determinism rules are not comparable across PRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchMeta {
    /// Report tier the measured season ran at.
    pub report_tier: ReportTier,
    /// Worker threads the experiment used (largest pool tested).
    pub threads: usize,
    /// True when allocation figures come from the counting allocator.
    pub alloc_probe: bool,
    /// True when the workspace lint pass reported no findings.
    pub lint_clean: bool,
    /// Which population backend fed the measured season: `"object"`
    /// (per-[`Household`] trees, the default) or `"slab"` (the
    /// struct-of-arrays [`PopulationSlab`](powergrid::slab::PopulationSlab)
    /// backend). Both are byte-identical in results, but their timings
    /// are not comparable, so every record states which path ran.
    pub population_path: &'static str,
}

impl BenchMeta {
    /// Captures the context for an experiment run (object-backend
    /// population unless overridden with [`BenchMeta::population_path`]).
    pub fn capture(report_tier: ReportTier, threads: usize) -> BenchMeta {
        BenchMeta {
            report_tier,
            threads,
            alloc_probe: crate::alloc_probe::installed(),
            lint_clean: crate::lint_check::lint_clean(),
            population_path: "object",
        }
    }

    /// Overrides the recorded population backend (`"object"` | `"slab"`).
    pub fn population_path(mut self, path: &'static str) -> BenchMeta {
        self.population_path = path;
        self
    }

    /// The `"meta":{...}` JSON fragment (no trailing comma).
    pub fn to_json(&self) -> String {
        format!(
            "\"meta\":{{\"report_tier\":\"{}\",\"threads\":{},\"alloc_probe\":{},\"lint_clean\":{},\
             \"population_path\":\"{}\"}}",
            self.report_tier, self.threads, self.alloc_probe, self.lint_clean, self.population_path
        )
    }
}

// ---------------------------------------------------------------------
// E15 — fleet scaling: many campaigns on one shared worker pool, and
// the allocation-free demand hot path
// ---------------------------------------------------------------------

/// One thread-count row of the fleet-scaling experiment.
#[derive(Debug, Clone)]
pub struct FleetScalingRow {
    /// Worker threads in the shared pool.
    pub threads: usize,
    /// Wall-clock of the interleaved fleet run, microseconds.
    pub fleet_us: u128,
    /// True if this run was byte-identical to the sequential reference.
    pub matches_reference: bool,
}

/// Result of the fleet-scaling experiment.
#[derive(Debug, Clone)]
pub struct FleetScalingResult {
    /// Grid cells (campaigns) in the fleet.
    pub cells: usize,
    /// Households per cell.
    pub households: usize,
    /// Wall-clock of running every campaign back to back on one thread.
    pub sequential_us: u128,
    /// One row per pool size.
    pub rows: Vec<FleetScalingRow>,
    /// Peaks negotiated fleet-wide.
    pub negotiations: usize,
    /// Wall-clock of simulating one ≥200-household day through the
    /// allocating [`Household::demand_profile`] path, microseconds.
    pub alloc_us: u128,
    /// The same day through [`Household::demand_profile_with`] and one
    /// reused [`DemandScratch`], microseconds.
    pub scratch_us: u128,
    /// `alloc_us / scratch_us`.
    pub hot_path_speedup: f64,
    /// Runtime context for the JSON record.
    pub meta: BenchMeta,
}

/// E15: the fleet layer — `cells` campaigns over distinct populations
/// of `households` homes, interleaved on one shared
/// [`WorkerPool`](loadbal_core::sweep::WorkerPool) at increasing pool
/// sizes, each run checked byte-identical against the sequential
/// reference. Alongside, the demand hot path is timed both ways: one
/// simulated day of a ≥200-household cell through the allocating
/// `demand_profile` (one `Series` per device per household) versus the
/// scratch-reusing `demand_profile_with` the fleet runs on.
pub fn fleet_scaling(cells: usize, households: usize, seed: u64) -> FleetScalingResult {
    use loadbal_core::fleet::FleetRunner;
    let horizon = Horizon::new(6, 0, Season::Winter);
    let weather = WeatherModel::winter();
    let populations: Vec<Vec<Household>> = (0..cells as u64)
        .map(|c| {
            PopulationBuilder::new()
                .households(households)
                .build(seed ^ c)
        })
        .collect();
    let build_fleet = |threads: Option<usize>| {
        let mut fleet = FleetRunner::new();
        if let Some(t) = threads {
            fleet = fleet.threads(std::num::NonZeroUsize::new(t).expect("threads ≥ 1"));
        }
        for (i, homes) in populations.iter().enumerate() {
            let runner = CampaignBuilder::new(homes, &weather, &horizon)
                .predictor(FixedPredictor(WeatherRegression::calibrated()))
                .feedback(ClosedLoop)
                .build();
            fleet = fleet.cell(format!("cell{i}"), runner);
        }
        fleet
    };

    let reference_fleet = build_fleet(Some(1));
    let t0 = Instant::now();
    let reference = reference_fleet.run_sequential();
    let sequential_us = t0.elapsed().as_micros();

    let rows = [2usize, 4, 8]
        .iter()
        .map(|&threads| {
            let fleet = build_fleet(Some(threads));
            let t = Instant::now();
            let report = fleet.run();
            let fleet_us = t.elapsed().as_micros();
            FleetScalingRow {
                threads,
                fleet_us,
                matches_reference: report == reference,
            }
        })
        .collect();

    // The demand hot path, both ways, on one ≥200-household day.
    let axis = TimeAxis::quarter_hourly();
    let hot_homes = PopulationBuilder::new()
        .households(households.max(200))
        .build(seed);
    let reps = 5;
    let t_alloc = Instant::now();
    let mut alloc_total = 0.0;
    for _ in 0..reps {
        for h in &hot_homes {
            alloc_total += h.demand_profile(&axis, -4.0, seed).sum();
        }
    }
    let alloc_us = t_alloc.elapsed().as_micros();
    let mut scratch = DemandScratch::new(&axis);
    let t_scratch = Instant::now();
    let mut scratch_total = 0.0;
    for _ in 0..reps {
        for h in &hot_homes {
            scratch_total += h
                .demand_profile_with(&axis, -4.0, seed, &mut scratch)
                .iter()
                .sum::<f64>();
        }
    }
    let scratch_us = t_scratch.elapsed().as_micros();
    assert!(
        (alloc_total - scratch_total).abs() < 1e-6,
        "both paths simulate the same demand"
    );

    FleetScalingResult {
        cells,
        households,
        sequential_us,
        rows,
        negotiations: reference.negotiations(),
        alloc_us,
        scratch_us,
        hot_path_speedup: alloc_us as f64 / scratch_us.max(1) as f64,
        meta: BenchMeta::capture(ReportTier::FullTrace, 8),
    }
}

impl fmt::Display for FleetScalingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E15 — fleet scaling ({} cells × {} households, {} peaks fleet-wide)",
            self.cells, self.households, self.negotiations
        )?;
        writeln!(f, "  {:>8} {:>12} {:>9}", "threads", "wall µs", "identical")?;
        writeln!(f, "  {:>8} {:>12} {:>9}", "seq", self.sequential_us, "-")?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>8} {:>12} {:>9}",
                r.threads,
                r.fleet_us,
                if r.matches_reference { "yes" } else { "NO" }
            )?;
        }
        writeln!(
            f,
            "  demand hot path ({} households, 5 reps): alloc {} µs vs scratch {} µs ({:.2}×)",
            self.households.max(200),
            self.alloc_us,
            self.scratch_us,
            self.hot_path_speedup
        )
    }
}

impl FleetScalingResult {
    /// A machine-readable record of the timings, for `BENCH_E15.json`
    /// (the experiment binary's `--json` flag) — the cross-PR perf
    /// trajectory file.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"threads\":{},\"fleet_us\":{},\"identical\":{}}}",
                    r.threads, r.fleet_us, r.matches_reference
                )
            })
            .collect();
        format!(
            "{{\"experiment\":\"E15\",{},\"cells\":{},\"households\":{},\"negotiations\":{},\
             \"sequential_us\":{},\"rows\":[{}],\"alloc_us\":{},\"scratch_us\":{},\
             \"hot_path_speedup\":{:.4}}}",
            self.meta.to_json(),
            self.cells,
            self.households,
            self.negotiations,
            self.sequential_us,
            rows.join(","),
            self.alloc_us,
            self.scratch_us,
            self.hot_path_speedup
        )
    }
}

// ---------------------------------------------------------------------
// E16 — the scheduling + negotiation hot loop: persistent parked pool
// vs spawn-per-day, scratch-reusing vs fresh-engine negotiation
// ---------------------------------------------------------------------

/// Result of the hot-loop experiment.
#[derive(Debug, Clone)]
pub struct HotLoopResult {
    /// Grid cells (campaigns).
    pub cells: usize,
    /// Households per cell.
    pub households: usize,
    /// Horizon length in days (warmup 3).
    pub days: u64,
    /// Worker threads per pool.
    pub threads: usize,
    /// Peaks negotiated across all cells.
    pub peaks: usize,
    /// Wall-clock with a **fresh pool per campaign day** (the pre-PR-5
    /// cost model: scoped threads spawned and joined every day),
    /// microseconds.
    pub spawn_per_day_us: u128,
    /// The same season on **one persistent pool** (threads spawned
    /// once, parked between days), microseconds.
    pub persistent_us: u128,
    /// `spawn_per_day_us / persistent_us`.
    pub pool_speedup: f64,
    /// True if both pool disciplines were byte-identical to the
    /// sequential reference (asserted — this is the CI smoke).
    pub identical: bool,
    /// Negotiations in the engine micro-comparison.
    pub micro_peaks: usize,
    /// Repetitions of the micro-comparison.
    pub micro_reps: usize,
    /// Negotiating every peak with fresh engines per peak, microseconds.
    pub fresh_us: u128,
    /// The same peaks through one reused
    /// [`NegotiationScratch`](loadbal_core::sync_driver::NegotiationScratch),
    /// microseconds.
    pub scratch_us: u128,
    /// `fresh_us / scratch_us`.
    pub negotiation_speedup: f64,
    /// Heap allocations per negotiated peak, fresh-engine path (`None`
    /// when the counting allocator is not installed — it lives in the
    /// experiments binary, not the library).
    pub fresh_allocs_per_peak: Option<f64>,
    /// Heap allocations per negotiated peak through the scratch.
    pub scratch_allocs_per_peak: Option<f64>,
    /// Batches in the pure pool-call overhead micro-comparison.
    pub call_batches: usize,
    /// `call_batches` pool calls, each on a **freshly built** pool
    /// (threads spawned and joined per call — the pre-PR model),
    /// microseconds.
    pub call_fresh_us: u128,
    /// The same calls on the parked persistent pool, microseconds.
    pub call_persistent_us: u128,
    /// `call_fresh_us / call_persistent_us` — the per-call spawn +
    /// teardown overhead the rebuild eliminates.
    pub call_speedup: f64,
    /// Runtime context for the JSON record.
    pub meta: BenchMeta,
}

/// E16: the other half of the hot path, after E15 made demand
/// simulation allocation-free — the *scheduling* and *negotiation*
/// inner loops.
///
/// A season-long campaign calls the worker pool once per day per cell;
/// before PR 5 every call spawned scoped threads and every negotiation
/// built fresh engines (bid vectors, reward-table snapshots, effect
/// queues) per peak. This experiment times the same ≥20-day, multi-cell
/// season under both disciplines and asserts **byte identity** between
/// the persistent pool, the spawn-per-day pool and the sequential
/// reference, then micro-times clone-vs-scratch negotiation over the
/// season's real peak scenarios (with per-peak allocation counts when
/// the instrumented binary runs it).
pub fn hot_loop(
    cells: usize,
    households: usize,
    days: u64,
    threads: usize,
    seed: u64,
) -> HotLoopResult {
    use loadbal_core::sweep::WorkerPool;
    use loadbal_core::sync_driver::NegotiationScratch;
    use std::num::NonZeroUsize;

    let horizon = Horizon::new(days, 0, Season::Winter);
    let weather = WeatherModel::winter();
    let populations: Vec<Vec<Household>> = (0..cells as u64)
        .map(|c| {
            PopulationBuilder::new()
                .households(households)
                .build(seed ^ c)
        })
        .collect();
    let runners: Vec<_> = populations
        .iter()
        .map(|homes| {
            CampaignBuilder::new(homes, &weather, &horizon)
                .predictor(FixedPredictor(WeatherRegression::calibrated()))
                .feedback(ClosedLoop)
                .build()
        })
        .collect();

    // Drives one campaign day by day over `pool` (persistent) or over a
    // fresh, day-scoped pool built by `per_day` — the two disciplines
    // under comparison share this exact loop.
    let drive = |runner: &loadbal_core::campaign::CampaignRunner<'_>,
                 pool: Option<&WorkerPool>|
     -> CampaignReport {
        let mut progress = runner.progress();
        while let Some(plan) = progress.next_day() {
            let n = plan.scenarios().len();
            let run_day = |pool: &WorkerPool| {
                pool.run_with(n, NegotiationScratch::new, |scratch, i| {
                    let (_, s) = &plan.scenarios()[i];
                    s.run_in(s.method, scratch)
                })
            };
            let reports = match pool {
                Some(pool) => run_day(pool),
                None => {
                    // The pre-PR cost model: a pool per day, sized like
                    // the old scoped spawn (min(threads, peaks)), built
                    // and torn down inside the day loop.
                    let day_threads = NonZeroUsize::new(threads.min(n.max(1))).expect("≥ 1");
                    run_day(&WorkerPool::new(day_threads))
                }
            };
            progress.complete_day(plan, reports);
        }
        progress.finish()
    };

    let reference: Vec<CampaignReport> = runners.iter().map(|r| r.run_sequential()).collect();

    let t0 = Instant::now();
    let spawning: Vec<CampaignReport> = runners.iter().map(|r| drive(r, None)).collect();
    let spawn_per_day_us = t0.elapsed().as_micros();

    let pool = WorkerPool::new(NonZeroUsize::new(threads.max(1)).expect("≥ 1"));
    let t1 = Instant::now();
    let persistent: Vec<CampaignReport> = runners.iter().map(|r| drive(r, Some(&pool))).collect();
    let persistent_us = t1.elapsed().as_micros();

    assert_eq!(
        persistent, reference,
        "persistent pool must be byte-identical to sequential"
    );
    assert_eq!(
        spawning, reference,
        "spawn-per-day pool must be byte-identical to sequential"
    );
    let peaks: usize = reference.iter().map(|r| r.negotiations()).sum();

    // --- clone-vs-scratch negotiation, on the season's real peaks ----
    let micro: Vec<Scenario> = reference[0]
        .outcomes
        .iter()
        .map(|o| o.scenario.clone().expect("full-trace campaign"))
        .collect();
    let micro_reps = 3;
    let allocs_before = crate::alloc_probe::count();
    let t2 = Instant::now();
    let mut fresh_reports = Vec::new();
    for _ in 0..micro_reps {
        fresh_reports.clear();
        fresh_reports.extend(micro.iter().map(|s| s.run()));
    }
    let fresh_us = t2.elapsed().as_micros();
    let fresh_allocs = crate::alloc_probe::count() - allocs_before;

    let mut scratch = NegotiationScratch::new();
    let allocs_before = crate::alloc_probe::count();
    let t3 = Instant::now();
    let mut scratch_reports = Vec::new();
    for _ in 0..micro_reps {
        scratch_reports.clear();
        scratch_reports.extend(micro.iter().map(|s| s.run_in(s.method, &mut scratch)));
    }
    let scratch_us = t3.elapsed().as_micros();
    let scratch_allocs = crate::alloc_probe::count() - allocs_before;
    assert_eq!(
        fresh_reports, scratch_reports,
        "scratch negotiation must be byte-identical to fresh engines"
    );

    // --- pure pool-call overhead: what one `run` call costs when the
    // threads must be spawned for it versus when they are parked ------
    let call_batches = 100usize;
    let call_tasks = threads.max(2) * 2;
    let t4 = Instant::now();
    let mut sink = 0u64;
    for b in 0..call_batches {
        let fresh = WorkerPool::new(NonZeroUsize::new(threads.max(2)).expect("≥ 2"));
        sink += fresh
            .run(call_tasks, |i| (i as u64).wrapping_mul(b as u64 + 1))
            .iter()
            .sum::<u64>();
    }
    let call_fresh_us = t4.elapsed().as_micros();
    let t5 = Instant::now();
    for b in 0..call_batches {
        sink += pool
            .run(call_tasks, |i| (i as u64).wrapping_mul(b as u64 + 1))
            .iter()
            .sum::<u64>();
    }
    let call_persistent_us = t5.elapsed().as_micros();
    std::hint::black_box(sink);

    let per_peak = |allocs: u64| {
        // 0 means the counting allocator is absent (library test run).
        (allocs > 0).then(|| allocs as f64 / (micro.len().max(1) * micro_reps) as f64)
    };
    HotLoopResult {
        cells,
        households,
        days,
        threads,
        peaks,
        spawn_per_day_us,
        persistent_us,
        pool_speedup: spawn_per_day_us as f64 / persistent_us.max(1) as f64,
        identical: true, // asserted above
        micro_peaks: micro.len(),
        micro_reps,
        fresh_us,
        scratch_us,
        negotiation_speedup: fresh_us as f64 / scratch_us.max(1) as f64,
        fresh_allocs_per_peak: per_peak(fresh_allocs),
        scratch_allocs_per_peak: per_peak(scratch_allocs),
        call_batches,
        call_fresh_us,
        call_persistent_us,
        call_speedup: call_fresh_us as f64 / call_persistent_us.max(1) as f64,
        meta: BenchMeta::capture(ReportTier::FullTrace, threads),
    }
}

impl HotLoopResult {
    /// A machine-readable record of the timings, for `BENCH_E16.json`
    /// (the experiment binary's `--json` flag) — the cross-PR perf
    /// trajectory file.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| {
            v.map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "null".into())
        };
        format!(
            "{{\"experiment\":\"E16\",{},\"cells\":{},\"households\":{},\"days\":{},\"threads\":{},\
             \"peaks\":{},\"spawn_per_day_us\":{},\"persistent_us\":{},\"pool_speedup\":{:.4},\
             \"identical\":{},\"call_batches\":{},\"call_fresh_us\":{},\"call_persistent_us\":{},\
             \"call_speedup\":{:.4},\"micro_peaks\":{},\"micro_reps\":{},\"fresh_us\":{},\
             \"scratch_us\":{},\"negotiation_speedup\":{:.4},\"fresh_allocs_per_peak\":{},\
             \"scratch_allocs_per_peak\":{}}}",
            self.meta.to_json(),
            self.cells,
            self.households,
            self.days,
            self.threads,
            self.peaks,
            self.spawn_per_day_us,
            self.persistent_us,
            self.pool_speedup,
            self.identical,
            self.call_batches,
            self.call_fresh_us,
            self.call_persistent_us,
            self.call_speedup,
            self.micro_peaks,
            self.micro_reps,
            self.fresh_us,
            self.scratch_us,
            self.negotiation_speedup,
            opt(self.fresh_allocs_per_peak),
            opt(self.scratch_allocs_per_peak),
        )
    }
}

impl fmt::Display for HotLoopResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E16 — scheduling + negotiation hot loop ({} cells × {} households, \
             {}-day season, {} peaks, {} threads)",
            self.cells, self.households, self.days, self.peaks, self.threads
        )?;
        writeln!(
            f,
            "  pool discipline:  spawn-per-day {} µs vs persistent {} µs ({:.2}×), identical: {}",
            self.spawn_per_day_us,
            self.persistent_us,
            self.pool_speedup,
            if self.identical { "yes" } else { "NO" }
        )?;
        writeln!(
            f,
            "  pool call cost:   fresh-pool {} µs vs parked {} µs over {} calls ({:.1}× — \
             the per-day spawn cost eliminated)",
            self.call_fresh_us, self.call_persistent_us, self.call_batches, self.call_speedup
        )?;
        writeln!(
            f,
            "  negotiation:      fresh engines {} µs vs scratch {} µs ({:.2}×) over {} peaks × {} reps",
            self.fresh_us, self.scratch_us, self.negotiation_speedup, self.micro_peaks, self.micro_reps
        )?;
        match (self.fresh_allocs_per_peak, self.scratch_allocs_per_peak) {
            (Some(fresh), Some(scratch)) => writeln!(
                f,
                "  allocations/peak: fresh {fresh:.1} vs scratch {scratch:.1} ({:.2}×)",
                fresh / scratch.max(1e-9)
            ),
            _ => writeln!(
                f,
                "  allocations/peak: (not instrumented — run the experiments binary)"
            ),
        }
    }
}

// ---------------------------------------------------------------------
// E17 — report tiers: peak report memory and archive bytes per day
// ---------------------------------------------------------------------

/// One tier's row of the report-tier experiment.
#[derive(Debug, Clone)]
pub struct TierRow {
    /// The tier the season ran at.
    pub tier: ReportTier,
    /// Wall-clock of the sequential season, microseconds.
    pub run_us: u128,
    /// Bytes the finished [`FleetReport`](loadbal_core::fleet::FleetReport)
    /// retains (live-bytes delta across the run; `None` without the
    /// counting allocator).
    pub retained_bytes: Option<i64>,
    /// Heap allocations the run performed (`None` without the counting
    /// allocator).
    pub allocations: Option<u64>,
    /// Round records stored across every outcome (must be 0 below
    /// [`ReportTier::FullTrace`] — the tier-enforcement guard).
    pub rounds_stored: usize,
    /// Settlements stored across every outcome.
    pub settlements_stored: usize,
    /// Scenarios retained across every outcome (full-trace only).
    pub scenarios_stored: usize,
    /// Season-archive size at this tier, bytes.
    pub archive_bytes: u64,
    /// `archive_bytes / (cells × evaluated days)`.
    pub archive_bytes_per_day: f64,
    /// True if the written archive decoded back equal to the report.
    pub roundtrip_ok: bool,
}

/// Result of the report-tier experiment.
#[derive(Debug, Clone)]
pub struct ReportTiersResult {
    /// Grid cells (campaigns) in the fleet.
    pub cells: usize,
    /// Households per cell.
    pub households: usize,
    /// Horizon length in days.
    pub days: u64,
    /// One row per tier, [`ReportTier::Aggregate`] first.
    pub rows: Vec<TierRow>,
    /// True if every tier produced identical digest scalars and
    /// economics to the full-trace run (the tiers drop storage, never
    /// results).
    pub scalars_identical: bool,
    /// `settlement retained bytes / full-trace retained bytes`
    /// (`None` without the counting allocator). The acceptance headline:
    /// must stay ≤ 0.1.
    pub settlement_memory_ratio: Option<f64>,
    /// Runtime context for the JSON record.
    pub meta: BenchMeta,
}

/// E17: what each [`ReportTier`] costs. The same `cells`-cell,
/// `days`-day season runs sequentially (determinism — every tier sees
/// identical negotiations) once per tier; around each run the
/// allocation probe's live-bytes delta measures what the finished
/// report *retains*, and each report is then archived with
/// [`loadbal_archive::write_fleet_to`] and read back to measure bytes
/// per stored day and verify the round trip.
///
/// Two guards are asserted here (not just reported): below
/// `FullTrace` no outcome stores a single round record, and every
/// tier's digest scalars and economics are identical to the
/// full-trace run's.
pub fn report_tiers(cells: usize, households: usize, days: u64, seed: u64) -> ReportTiersResult {
    use loadbal_archive::{write_fleet_to, SeasonArchive};
    use loadbal_core::fleet::FleetRunner;
    use std::io::Cursor;

    let horizon = Horizon::new(days, 0, Season::Winter);
    let weather = WeatherModel::winter();
    let populations: Vec<Vec<Household>> = (0..cells as u64)
        .map(|c| {
            PopulationBuilder::new()
                .households(households)
                .build(seed ^ c)
        })
        .collect();
    // A patient negotiator: a gentle β with a fine convergence
    // threshold ε and a tight overuse ceiling stretches every
    // negotiation across many small concession steps, so the
    // full-trace tier faces a season's worth of round records — the
    // storage regime the lower tiers exist to avoid.
    let ua = UtilityAgentConfig {
        beta_policy: BetaPolicy::Constant { beta: 0.5 },
        max_allowed_overuse: 0.02,
        formula: RewardFormula {
            beta: 0.5,
            max_reward: Money(60.0),
            epsilon: Money(0.05),
        },
        ..UtilityAgentConfig::paper()
    };
    let build_fleet = |tier: ReportTier| {
        let mut fleet = FleetRunner::new();
        for (i, homes) in populations.iter().enumerate() {
            let runner = CampaignBuilder::new(homes, &weather, &horizon)
                .predictor(FixedPredictor(WeatherRegression::calibrated()))
                .feedback(ClosedLoop)
                .ua_config(ua.clone())
                .build();
            fleet = fleet.cell(format!("cell{i}"), runner);
        }
        fleet.report_tier(tier)
    };

    let probe = crate::alloc_probe::installed();
    let reference = build_fleet(ReportTier::FullTrace).run_sequential();

    let mut rows = Vec::with_capacity(ReportTier::all().len());
    let mut scalars_identical = true;
    for tier in ReportTier::all() {
        let fleet = build_fleet(tier);
        let live_before = crate::alloc_probe::live_bytes();
        let allocs_before = crate::alloc_probe::count();
        let t0 = Instant::now();
        let report = fleet.run_sequential();
        let run_us = t0.elapsed().as_micros();
        let allocations = crate::alloc_probe::count() - allocs_before;
        let retained = crate::alloc_probe::live_bytes() - live_before;

        let mut rounds_stored = 0;
        let mut settlements_stored = 0;
        let mut scenarios_stored = 0;
        for cell in &report.cells {
            for o in &cell.report.outcomes {
                rounds_stored += o.report.rounds().len();
                settlements_stored += o.report.settlements().len();
                scenarios_stored += usize::from(o.scenario.is_some());
            }
        }
        assert!(
            tier.keeps_rounds() || rounds_stored == 0,
            "{tier}: the assembler stored {rounds_stored} round records below full-trace"
        );
        assert!(
            tier.keeps_rounds() || scenarios_stored == 0,
            "{tier}: {scenarios_stored} scenarios retained below full-trace"
        );

        // The tiers must change storage, never results: digest scalars
        // and economics are identical to the full-trace run's.
        let same = report.cells.len() == reference.cells.len()
            && report.economics == reference.economics
            && report.cells.iter().zip(&reference.cells).all(|(a, b)| {
                a.report.outcomes.len() == b.report.outcomes.len()
                    && a.report.economics == b.report.economics
                    && a.report
                        .outcomes
                        .iter()
                        .zip(&b.report.outcomes)
                        .all(|(x, y)| x.report.digest() == y.report.digest())
            });
        assert!(same, "{tier}: digest scalars diverged from full-trace");
        scalars_identical &= same;

        let mut bytes = Vec::new();
        write_fleet_to(&mut bytes, &report, tier).expect("write archive to Vec");
        let archive_bytes = bytes.len() as u64;
        let roundtrip_ok = SeasonArchive::from_reader(Cursor::new(bytes))
            .and_then(|mut a| a.read_fleet())
            .map(|decoded| decoded == report)
            .unwrap_or(false);
        let stored_days: usize = report.cells.iter().map(|c| c.report.days.len()).sum();

        rows.push(TierRow {
            tier,
            run_us,
            retained_bytes: probe.then_some(retained),
            allocations: probe.then_some(allocations),
            rounds_stored,
            settlements_stored,
            scenarios_stored,
            archive_bytes,
            archive_bytes_per_day: archive_bytes as f64 / stored_days.max(1) as f64,
            roundtrip_ok,
        });
    }

    let retained_of = |tier: ReportTier| {
        rows.iter()
            .find(|r| r.tier == tier)
            .and_then(|r| r.retained_bytes)
    };
    let settlement_memory_ratio = match (
        retained_of(ReportTier::Settlement),
        retained_of(ReportTier::FullTrace),
    ) {
        (Some(s), Some(f)) if f > 0 => Some(s as f64 / f as f64),
        _ => None,
    };

    ReportTiersResult {
        cells,
        households,
        days,
        rows,
        scalars_identical,
        settlement_memory_ratio,
        meta: BenchMeta::capture(ReportTier::FullTrace, 1),
    }
}

impl fmt::Display for ReportTiersResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E17 — report tiers ({} cells × {} households, {}-day season, sequential)",
            self.cells, self.households, self.days
        )?;
        for r in &self.rows {
            let retained = r
                .retained_bytes
                .map(|b| format!("{b} B retained"))
                .unwrap_or_else(|| "retained n/a (no probe)".into());
            writeln!(
                f,
                "  {:<11} {:>8} µs  {:>20}  rounds={} settlements={} scenarios={} \
                 archive={} B ({:.1} B/day) roundtrip={}",
                r.tier.to_string(),
                r.run_us,
                retained,
                r.rounds_stored,
                r.settlements_stored,
                r.scenarios_stored,
                r.archive_bytes,
                r.archive_bytes_per_day,
                if r.roundtrip_ok { "ok" } else { "FAILED" }
            )?;
        }
        writeln!(
            f,
            "  scalars identical across tiers: {}",
            if self.scalars_identical { "yes" } else { "NO" }
        )?;
        match self.settlement_memory_ratio {
            Some(ratio) => writeln!(
                f,
                "  settlement / full-trace retained memory: {ratio:.4} (target ≤ 0.1)"
            ),
            None => writeln!(
                f,
                "  settlement / full-trace retained memory: n/a (counting allocator absent)"
            ),
        }
    }
}

impl ReportTiersResult {
    /// A machine-readable record for `BENCH_E17.json` (the experiment
    /// binary's `--json` flag) — the cross-PR memory/size trajectory of
    /// the reporting tiers.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let opt_i =
                    |v: Option<i64>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
                let opt_u =
                    |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
                format!(
                    "{{\"tier\":\"{}\",\"run_us\":{},\"retained_bytes\":{},\"allocations\":{},\
                     \"rounds_stored\":{},\"settlements_stored\":{},\"scenarios_stored\":{},\
                     \"archive_bytes\":{},\"archive_bytes_per_day\":{:.1},\"roundtrip_ok\":{}}}",
                    r.tier,
                    r.run_us,
                    opt_i(r.retained_bytes),
                    opt_u(r.allocations),
                    r.rounds_stored,
                    r.settlements_stored,
                    r.scenarios_stored,
                    r.archive_bytes,
                    r.archive_bytes_per_day,
                    r.roundtrip_ok
                )
            })
            .collect();
        let ratio = self
            .settlement_memory_ratio
            .map(|x| format!("{x:.4}"))
            .unwrap_or_else(|| "null".into());
        format!(
            "{{\"experiment\":\"E17\",{},\"cells\":{},\"households\":{},\"days\":{},\
             \"rows\":[{}],\"scalars_identical\":{},\"settlement_memory_ratio\":{}}}",
            self.meta.to_json(),
            self.cells,
            self.households,
            self.days,
            rows.join(","),
            self.scalars_identical,
            ratio
        )
    }
}

// ---------------------------------------------------------------------
// E18 — fault resilience: clean vs faulty distributed seasons
// ---------------------------------------------------------------------

/// One fault class's row of the resilience experiment.
#[derive(Debug, Clone)]
pub struct FaultResilienceRow {
    /// The injected fault class.
    pub class: FaultClass,
    /// Mean `|Δ cut-down|` across matched settlements.
    pub mean_drift: f64,
    /// Largest single settlement drift.
    pub max_drift: f64,
    /// Faulty minus clean reward outlay (positive: faults cost money).
    pub reward_delta: f64,
    /// Faulty minus clean negotiation rounds.
    pub extra_rounds: i64,
    /// Faulty minus clean protocol messages.
    pub extra_messages: i64,
    /// Rounds the UA concluded on its deadline.
    pub deadline_forced: u64,
    /// Messages the network dropped.
    pub dropped: u64,
    /// Messages the network duplicated.
    pub duplicated: u64,
    /// Peaks matched against the clean season.
    pub matched_peaks: usize,
    /// Peaks present in only one season (closed-loop divergence).
    pub unmatched_peaks: usize,
    /// Wall-clock of the faulty season, microseconds.
    pub wall_us: u128,
}

/// Result of the fault-resilience experiment.
#[derive(Debug, Clone)]
pub struct FaultResilienceResult {
    /// Grid cells (campaigns) in the fleet.
    pub cells: usize,
    /// Households per cell.
    pub households: usize,
    /// Horizon length in days.
    pub days: u64,
    /// True if the distributed-clean season's
    /// [`FleetReport`](loadbal_core::fleet::FleetReport) was
    /// byte-identical to the sync season's — the §3.2 transparency
    /// claim, asserted end to end.
    pub clean_identical_to_sync: bool,
    /// Peaks negotiated in the clean season.
    pub negotiations: usize,
    /// Wall-clock of the sync season, microseconds.
    pub sync_wall_us: u128,
    /// Wall-clock of the distributed-clean season, microseconds.
    pub clean_wall_us: u128,
    /// Messages the clean season put on the (perfect) wire.
    pub clean_messages: u64,
    /// One row per injected fault class.
    pub rows: Vec<FaultResilienceRow>,
    /// Runtime context for the JSON record.
    pub meta: BenchMeta,
}

/// E18: what an unreliable network costs a season. The same
/// `cells`-cell winter fleet runs once synchronously, once distributed
/// over a perfect network (asserted byte-identical — the paper's
/// location-transparency claim), and once per [`FaultClass`] over that
/// class's stock faulty network; the [`ResilienceReport`] diffs each
/// faulty season against the clean one peak by peak.
///
/// Settlement tier: drift needs settlements, and this is the tier a
/// season-scale study would actually run at.
pub fn fault_resilience(
    cells: usize,
    households: usize,
    days: u64,
    seed: u64,
) -> FaultResilienceResult {
    use loadbal_core::fleet::FleetRunner;
    let horizon = Horizon::new(days, 0, Season::Winter);
    let weather = WeatherModel::winter();
    let populations: Vec<Vec<Household>> = (0..cells as u64)
        .map(|c| {
            PopulationBuilder::new()
                .households(households)
                .build(seed ^ c)
        })
        .collect();
    let threads = std::num::NonZeroUsize::new(4).expect("4 > 0");
    let build_fleet = |mode: ExecutionMode| {
        let mut fleet = FleetRunner::new().threads(threads);
        for (i, homes) in populations.iter().enumerate() {
            let runner = CampaignBuilder::new(homes, &weather, &horizon)
                .predictor(FixedPredictor(WeatherRegression::calibrated()))
                .feedback(ClosedLoop)
                .build();
            fleet = fleet.cell(format!("cell{i}"), runner);
        }
        fleet.report_tier(ReportTier::Settlement).execution(mode)
    };

    let t0 = Instant::now();
    let sync = build_fleet(ExecutionMode::sync()).run();
    let sync_wall_us = t0.elapsed().as_micros();

    let t0 = Instant::now();
    let (clean, clean_traffic) =
        build_fleet(ExecutionMode::distributed_clean().with_seed(seed)).run_instrumented();
    let clean_wall_us = t0.elapsed().as_micros();
    let clean_identical_to_sync = clean == sync;

    let mut walls = Vec::new();
    let report = ResilienceReport::against_baseline(
        &clean,
        &clean_traffic,
        seed,
        &FaultClass::all(),
        |mode| {
            let t = Instant::now();
            let out = build_fleet(mode).run_instrumented();
            walls.push(t.elapsed().as_micros());
            out
        },
    );

    let rows = report
        .outcomes()
        .iter()
        .zip(walls)
        .map(|(o, wall_us)| FaultResilienceRow {
            class: o.class,
            mean_drift: o.mean_drift(),
            max_drift: o.max_drift(),
            reward_delta: o.reward_delta().value(),
            extra_rounds: o.extra_rounds(),
            extra_messages: o.extra_messages(),
            deadline_forced: o.traffic().deadline_forced_rounds,
            dropped: o.traffic().messages_dropped,
            duplicated: o.traffic().messages_duplicated,
            matched_peaks: o.matched_peaks(),
            unmatched_peaks: o.unmatched_peaks(),
            wall_us,
        })
        .collect();

    FaultResilienceResult {
        cells,
        households,
        days,
        clean_identical_to_sync,
        negotiations: clean.negotiations(),
        sync_wall_us,
        clean_wall_us,
        clean_messages: report.clean_traffic().messages_sent,
        rows,
        meta: BenchMeta::capture(ReportTier::Settlement, threads.get()),
    }
}

impl fmt::Display for FaultResilienceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E18 — fault resilience ({} cells × {} households, {}-day season, {} peaks)",
            self.cells, self.households, self.days, self.negotiations
        )?;
        writeln!(
            f,
            "  sync {} µs | distributed-clean {} µs ({} wire messages), identical: {}",
            self.sync_wall_us,
            self.clean_wall_us,
            self.clean_messages,
            if self.clean_identical_to_sync {
                "yes"
            } else {
                "NO"
            }
        )?;
        writeln!(
            f,
            "  {:>9} {:>10} {:>9} {:>9} {:>7} {:>7} {:>8} {:>7} {:>7} {:>9} {:>10}",
            "class",
            "drift mean",
            "max",
            "Δrewards",
            "+rounds",
            "+msgs",
            "forced",
            "dropped",
            "dup'd",
            "unmatched",
            "wall µs"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>9} {:>10.4} {:>9.4} {:>9.2} {:>7} {:>7} {:>8} {:>7} {:>7} {:>9} {:>10}",
                r.class.name(),
                r.mean_drift,
                r.max_drift,
                r.reward_delta,
                r.extra_rounds,
                r.extra_messages,
                r.deadline_forced,
                r.dropped,
                r.duplicated,
                r.unmatched_peaks,
                r.wall_us
            )?;
        }
        Ok(())
    }
}

impl FaultResilienceResult {
    /// A machine-readable record for `BENCH_E18.json` (the experiment
    /// binary's `--json` flag) — per-class settlement drift, reward
    /// loss and wire counters for the cross-PR trajectory.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"class\":\"{}\",\"mean_drift\":{:.6},\"max_drift\":{:.6},\
                     \"reward_delta\":{:.4},\"extra_rounds\":{},\"extra_messages\":{},\
                     \"deadline_forced\":{},\"dropped\":{},\"duplicated\":{},\
                     \"matched_peaks\":{},\"unmatched_peaks\":{},\"wall_us\":{}}}",
                    r.class.name(),
                    r.mean_drift,
                    r.max_drift,
                    r.reward_delta,
                    r.extra_rounds,
                    r.extra_messages,
                    r.deadline_forced,
                    r.dropped,
                    r.duplicated,
                    r.matched_peaks,
                    r.unmatched_peaks,
                    r.wall_us
                )
            })
            .collect();
        format!(
            "{{\"experiment\":\"E18\",{},\"cells\":{},\"households\":{},\"days\":{},\
             \"negotiations\":{},\"clean_identical_to_sync\":{},\"sync_wall_us\":{},\
             \"clean_wall_us\":{},\"clean_messages\":{},\"rows\":[{}]}}",
            self.meta.to_json(),
            self.cells,
            self.households,
            self.days,
            self.negotiations,
            self.clean_identical_to_sync,
            self.sync_wall_us,
            self.clean_wall_us,
            self.clean_messages,
            rows.join(",")
        )
    }
}

// ---------------------------------------------------------------------
// E19 — adaptive loops: static vs self-tuning campaign economics
// ---------------------------------------------------------------------

/// One policy's season of the adaptive-loops experiment.
#[derive(Debug, Clone)]
pub struct AdaptiveLoopsRow {
    /// `"static"` or `"adaptive"`.
    pub policy: String,
    /// Peaks negotiated (renegotiation passes included).
    pub negotiations: usize,
    /// Total energy shaved out of the peaks (overshoot included).
    pub energy_shaved: f64,
    /// Overuse actually eliminated: energy brought from above the
    /// capacity line back under it — the load-balancing value the
    /// utility buys. The gap to [`AdaptiveLoopsRow::energy_shaved`] is
    /// curtailment that balanced nothing (profile cut below the line),
    /// paid for all the same.
    pub overuse_removed: f64,
    /// Total reward outlay.
    pub rewards: f64,
    /// Peak saving minus rewards paid.
    pub net_gain: f64,
    /// Negotiations the marginal-cost stop rule ended.
    pub economic_stops: usize,
    /// Wall-clock of the parallel season, microseconds.
    pub wall_us: u128,
}

/// Result of the adaptive-loops experiment.
#[derive(Debug, Clone)]
pub struct AdaptiveLoopsResult {
    /// Households in the cell.
    pub households: usize,
    /// Horizon length in days.
    pub days: u64,
    /// The static-policy season, then the adaptive season.
    pub rows: Vec<AdaptiveLoopsRow>,
    /// Intra-day renegotiation passes the adaptive season ran
    /// (outcome labels carrying a `#r` suffix).
    pub renegotiation_passes: usize,
    /// Day boundaries at which the rolling predictor policy switched
    /// models mid-season.
    pub predictor_switches: usize,
    /// The tuned β (the beta policy's base) after the last day.
    pub final_beta: f64,
    /// The tuned allowed-overuse band after the last day.
    pub final_band: f64,
    /// Adaptive removed at least as much overuse for at most the
    /// static season's reward outlay (asserted).
    pub economics_no_worse: bool,
    /// The adaptive season was byte-identical across thread counts and
    /// to its sequential reference (asserted).
    pub identical_across_threads: bool,
    /// The adaptive distributed-clean season was byte-identical to the
    /// sync season (asserted).
    pub clean_identical_to_sync: bool,
    /// Runtime context for the JSON record.
    pub meta: BenchMeta,
}

/// E19: what closing the three self-tuning loops buys. The same seeded
/// winter season runs once with the static policy set (warmup-backtest
/// predictor, closed loop, marginal-cost stop — the E14 winner) and
/// once with all three adaptive loops on
/// ([`loadbal_core::adaptive::RollingWindow`] predictor re-selection,
/// [`loadbal_core::adaptive::RenegotiateResidual`] intra-day
/// renegotiation, [`loadbal_core::adaptive::AdaptiveTuning`] β/band
/// tuning, same stop rule).
///
/// The experiment **asserts** the adaptive economics are no worse: at
/// least as much *overuse removed* — energy brought from above the
/// capacity line back under it, the load-balancing value the utility
/// actually buys — at no more than the static reward outlay. Raw
/// curtailment (`energy_shaved`) is reported alongside: the static
/// season's high fixed β jumps the reward table past the crossing
/// point, over-curtailing the whole profile (energy cut below the line
/// balances nothing but is paid for at crossing-round prices), while
/// experience tuning flattens β after those overspent instant deals so
/// later ladders settle nearer the line, renegotiation passes recover
/// residual the same day on fresh entry-priced ladders, and predictor
/// re-selection keeps finding real peaks as closed-loop feedback
/// drifts the season away from the warmup backtest's pick.
///
/// It also **asserts** the project's core invariant survives the new
/// subsystem: the adaptive season is byte-identical across worker
/// thread counts, to its sequential reference, and between sync and
/// distributed-clean execution.
pub fn adaptive_loops(households: usize, days: u64, seed: u64) -> AdaptiveLoopsResult {
    use loadbal_core::adaptive::{AdaptiveTuning, RenegotiateResidual, RollingWindow};
    use loadbal_core::campaign::BacktestSelected;
    use loadbal_core::sync_driver::NegotiationScratch;

    let homes = PopulationBuilder::new().households(households).build(seed);
    let horizon = Horizon::new(days, 0, Season::Winter);
    let weather = WeatherModel::winter();
    let warmup = 4;

    let static_build = || {
        CampaignBuilder::new(&homes, &weather, &horizon)
            .warmup_days(warmup)
            .predictor(BacktestSelected::standard())
            .feedback(ClosedLoop)
            .stop_rule(MarginalCostStop)
            .build()
    };
    let adaptive_build_threads = |threads: Option<usize>| {
        let b = CampaignBuilder::new(&homes, &weather, &horizon)
            .warmup_days(warmup)
            .predictor(RollingWindow::standard(6, 2))
            .feedback(RenegotiateResidual::new(2, 0.005))
            .tuning(AdaptiveTuning)
            .stop_rule(MarginalCostStop);
        match threads {
            Some(n) => b
                .threads(std::num::NonZeroUsize::new(n).expect("thread counts are positive"))
                .build(),
            None => b.build(),
        }
    };
    let adaptive_build = || adaptive_build_threads(None);

    let t0 = Instant::now();
    let static_report = static_build().run();
    let static_wall_us = t0.elapsed().as_micros();

    let t0 = Instant::now();
    let adaptive_report = adaptive_build().run();
    let adaptive_wall_us = t0.elapsed().as_micros();

    // Byte-identity across thread counts, against the sequential
    // reference, and between sync and distributed-clean execution.
    let reference = adaptive_build().run_sequential();
    let identical_across_threads = [2usize, 4]
        .iter()
        .all(|&n| adaptive_build_threads(Some(n)).run() == reference)
        && adaptive_report == reference;
    let sync_season = adaptive_build().run();
    let clean_runner = {
        let mut r = adaptive_build();
        r.set_execution_mode(ExecutionMode::distributed_clean().with_seed(seed));
        r
    };
    let (clean_season, _) = clean_runner.run_instrumented();
    let clean_identical_to_sync = clean_season == sync_season;

    // Step the adaptive season once more, sequentially, to read the
    // tuned state the campaign ended on (identical to the runs above —
    // stepping is the same cycle).
    let runner = adaptive_build();
    let mut progress = runner.progress();
    let mut scratch = NegotiationScratch::new();
    while let Some(plan) = progress.next_day() {
        let reports = (0..plan.scenarios().len())
            .map(|i| plan.negotiate(i, &mut scratch))
            .collect();
        progress.complete_day(plan, reports);
    }
    let final_beta = progress.ua_config().beta_policy.base_beta();
    let final_band = progress.ua_config().max_allowed_overuse;
    let stepped = progress.finish();
    assert_eq!(stepped, reference, "stepping is the same cycle");

    let renegotiation_passes = adaptive_report
        .outcomes
        .iter()
        .filter(|o| o.label.contains("#r"))
        .count();
    let predictor_switches = adaptive_report
        .days
        .windows(2)
        .filter(|w| w[0].predictor != w[1].predictor)
        .count();

    let row = |policy: &str, report: &CampaignReport, wall_us: u128| {
        let overuse_removed: f64 = report
            .outcomes
            .iter()
            .map(|o| {
                (o.report.initial_overuse() - o.report.final_overuse())
                    .value()
                    .max(0.0)
            })
            .sum();
        AdaptiveLoopsRow {
            policy: policy.to_string(),
            negotiations: report.negotiations(),
            energy_shaved: report.total_energy_shaved().value(),
            overuse_removed,
            rewards: report.total_rewards().value(),
            net_gain: report.economics.net_gain.value(),
            economic_stops: report.economics.economic_stops,
            wall_us,
        }
    };
    let static_row = row("static", &static_report, static_wall_us);
    let adaptive_row = row("adaptive", &adaptive_report, adaptive_wall_us);

    let economics_no_worse = adaptive_row.overuse_removed >= static_row.overuse_removed - 1e-9
        && adaptive_row.rewards <= static_row.rewards + 1e-9;
    assert!(
        economics_no_worse,
        "adaptive must remove >= {:.1} kWh of overuse (got {:.1}) at rewards <= {:.1} (got {:.1})",
        static_row.overuse_removed,
        adaptive_row.overuse_removed,
        static_row.rewards,
        adaptive_row.rewards
    );
    assert!(identical_across_threads, "adaptive byte-identity broke");
    assert!(
        clean_identical_to_sync,
        "distributed-clean drifted from sync"
    );

    AdaptiveLoopsResult {
        households,
        days,
        rows: vec![static_row, adaptive_row],
        renegotiation_passes,
        predictor_switches,
        final_beta,
        final_band,
        economics_no_worse,
        identical_across_threads,
        clean_identical_to_sync,
        meta: BenchMeta::capture(ReportTier::FullTrace, 4),
    }
}

impl fmt::Display for AdaptiveLoopsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E19 — adaptive loops ({} households, {}-day season, warmup 4)",
            self.households, self.days
        )?;
        writeln!(
            f,
            "  {:<10} {:>6} {:>12} {:>12} {:>10} {:>10} {:>6} {:>10}",
            "policy",
            "peaks",
            "removed kWh",
            "shaved kWh",
            "rewards",
            "net gain",
            "stops",
            "wall µs"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<10} {:>6} {:>12.1} {:>12.1} {:>10.1} {:>10.1} {:>6} {:>10}",
                r.policy,
                r.negotiations,
                r.overuse_removed,
                r.energy_shaved,
                r.rewards,
                r.net_gain,
                r.economic_stops,
                r.wall_us
            )?;
        }
        writeln!(
            f,
            "  {} renegotiation passes | {} predictor switches | final β {:.2}, band {:.3}",
            self.renegotiation_passes, self.predictor_switches, self.final_beta, self.final_band
        )?;
        writeln!(
            f,
            "  economics no worse: {} | identical across threads: {} | clean == sync: {}",
            if self.economics_no_worse { "yes" } else { "NO" },
            if self.identical_across_threads {
                "yes"
            } else {
                "NO"
            },
            if self.clean_identical_to_sync {
                "yes"
            } else {
                "NO"
            }
        )
    }
}

impl AdaptiveLoopsResult {
    /// A machine-readable record for `BENCH_E19.json` (the experiment
    /// binary's `--json` flag) — static vs adaptive season economics
    /// plus the three loop counters for the cross-PR trajectory.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"policy\":\"{}\",\"negotiations\":{},\"overuse_removed\":{:.3},\
                     \"energy_shaved\":{:.3},\"rewards\":{:.3},\"net_gain\":{:.3},\
                     \"economic_stops\":{},\"wall_us\":{}}}",
                    r.policy,
                    r.negotiations,
                    r.overuse_removed,
                    r.energy_shaved,
                    r.rewards,
                    r.net_gain,
                    r.economic_stops,
                    r.wall_us
                )
            })
            .collect();
        format!(
            "{{\"experiment\":\"E19\",{},\"households\":{},\"days\":{},\
             \"renegotiation_passes\":{},\"predictor_switches\":{},\"final_beta\":{:.4},\
             \"final_band\":{:.4},\"economics_no_worse\":{},\"identical_across_threads\":{},\
             \"clean_identical_to_sync\":{},\"rows\":[{}]}}",
            self.meta.to_json(),
            self.households,
            self.days,
            self.renegotiation_passes,
            self.predictor_switches,
            self.final_beta,
            self.final_band,
            self.economics_no_worse,
            self.identical_across_threads,
            self.clean_identical_to_sync,
            rows.join(",")
        )
    }
}

// ---------------------------------------------------------------------
// E20 — city scale: one struct-of-arrays population, a sharded fleet
// ---------------------------------------------------------------------

/// Result of the city-scale experiment.
#[derive(Debug, Clone)]
pub struct CityScaleResult {
    /// Households in the city (one slab).
    pub households: usize,
    /// Grid cells the slab was sharded into (zero-copy views).
    pub cells: usize,
    /// Horizon length in days (including warm-up).
    pub days: u64,
    /// Device entries across the whole slab.
    pub device_entries: usize,
    /// Wall-clock of [`PopulationBuilder::build_slab`], microseconds.
    pub build_slab_us: u128,
    /// Bytes the slab's arrays retain for the whole city.
    pub slab_bytes: usize,
    /// `slab_bytes / households`.
    pub bytes_per_household: f64,
    /// One-day demand synthesis over the full city, per-object
    /// [`Household::demand_profile`] path (allocates per household),
    /// microseconds.
    pub object_demand_us: u128,
    /// Same day via the scratch-cached object path
    /// ([`aggregate_demand`]), microseconds.
    pub scratch_demand_us: u128,
    /// Same day via the batched slab kernel
    /// ([`aggregate_demand_slab`]), microseconds.
    pub slab_demand_us: u128,
    /// `object_demand_us / slab_demand_us` — the acceptance headline
    /// (must be ≥ 5).
    pub speedup_vs_object: f64,
    /// `scratch_demand_us / slab_demand_us` — the honest figure against
    /// the already-allocation-free object path.
    pub speedup_vs_scratch: f64,
    /// Wall-clock of the sharded Settlement-tier season, microseconds.
    pub season_us: u128,
    /// Peak negotiations the season carried across all shards.
    pub negotiations: usize,
    /// True if every negotiation converged.
    pub all_converged: bool,
    /// Live-bytes delta across the season run (`None` without the
    /// counting allocator).
    pub season_retained_bytes: Option<i64>,
    /// Process-lifetime heap high-water mark after the season, bytes
    /// (`None` without the counting allocator).
    pub peak_heap_bytes: Option<i64>,
    /// True if a small-population slab-sharded season reproduced the
    /// object-backend season byte for byte (also asserted).
    pub identity_ok: bool,
    /// Runtime context for the JSON record (`population_path: "slab"`).
    pub meta: BenchMeta,
}

/// E20: negotiating a season for a whole city on one box. One
/// [`PopulationSlab`] holds every household as struct-of-arrays
/// columns; [`FleetRunner::sharded_slab`](loadbal_core::fleet::FleetRunner::sharded_slab)
/// splits it into `cells` contiguous zero-copy views and negotiates a
/// `days`-day winter season at [`ReportTier::Settlement`] on the shared
/// worker pool.
///
/// Three things are measured and two asserted:
///
/// * **Throughput** — one day of demand synthesis over the full city
///   on the per-object path, the scratch-cached object path and the
///   slab kernel, all three asserted equal slot for slot; the slab must
///   be ≥ 5× the per-object path at full scale (asserted by the
///   experiment binary, where timings are meaningful — library smoke
///   runs only record the figures).
/// * **Memory** — the slab's retained bytes per household, plus the
///   season's live-bytes delta and the heap high-water mark when the
///   counting allocator is installed.
/// * **Identity** — a small twin population runs the same season once
///   per backend; the reports must be equal byte for byte (asserted).
pub fn city_scale(households: usize, cells: usize, days: u64, seed: u64) -> CityScaleResult {
    use loadbal_core::fleet::FleetRunner;
    use powergrid::demand::aggregate_demand;
    use powergrid::slab::aggregate_demand_slab;

    let axis = TimeAxis::quarter_hourly();
    let horizon = Horizon::new(days, 0, Season::Winter);
    let weather_model = WeatherModel::winter();
    let builder = PopulationBuilder::new().households(households);

    // --- build the two backends (object trees only for comparison) ---
    let t0 = Instant::now();
    let slab = builder.build_slab(seed);
    let build_slab_us = t0.elapsed().as_micros();
    let homes = builder.build(seed);
    let slab_bytes = slab.retained_bytes();

    // --- one-day demand synthesis over the full city, three paths ---
    let weather = weather_model.temperatures(&axis, seed);
    let mean_temp = weather.mean();
    let t0 = Instant::now();
    let mut naive = Series::zeros(axis);
    for h in &homes {
        let profile = h.demand_profile(&axis, mean_temp, seed);
        for (slot, load) in naive.values_mut().iter_mut().zip(profile.values()) {
            *slot += load;
        }
    }
    let object_demand_us = t0.elapsed().as_micros().max(1);
    let t0 = Instant::now();
    let scratch_curve = aggregate_demand(&homes, &weather, &axis, seed);
    let scratch_demand_us = t0.elapsed().as_micros().max(1);
    let t0 = Instant::now();
    let slab_curve = aggregate_demand_slab(slab.view(), &weather, &axis, seed);
    let slab_demand_us = t0.elapsed().as_micros().max(1);
    assert_eq!(
        slab_curve, scratch_curve,
        "slab demand kernel diverged from the object path"
    );
    assert_eq!(
        slab_curve.series().values(),
        naive.values(),
        "scratch paths diverged from per-object demand_profile"
    );
    let speedup_vs_object = object_demand_us as f64 / slab_demand_us as f64;
    let speedup_vs_scratch = scratch_demand_us as f64 / slab_demand_us as f64;

    // --- the sharded Settlement-tier season ---
    fn build_cell<'a>(
        pop: powergrid::slab::PopulationRef<'a>,
        weather_model: &'a WeatherModel,
        horizon: &'a Horizon,
    ) -> loadbal_core::campaign::CampaignRunner<'a> {
        CampaignBuilder::new_ref(pop, weather_model, horizon)
            .warmup_days(2)
            .predictor(FixedPredictor(MovingAverage::new(2)))
            .feedback(ClosedLoop)
            .build()
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fleet = FleetRunner::new()
        .sharded_slab(&slab, cells, |pop, _| {
            build_cell(pop, &weather_model, &horizon)
        })
        .report_tier(ReportTier::Settlement);
    let probe = crate::alloc_probe::installed();
    let live_before = crate::alloc_probe::live_bytes();
    let t0 = Instant::now();
    let report = fleet.run();
    let season_us = t0.elapsed().as_micros();
    let season_retained = crate::alloc_probe::live_bytes() - live_before;
    let peak_heap = crate::alloc_probe::peak_bytes();
    let negotiations = report.negotiations();
    let all_converged = report.all_converged();
    assert_eq!(report.len(), cells);
    drop(report);

    // --- small-population identity: slab season == object season ---
    let twin_builder = PopulationBuilder::new().households(400);
    let twin_slab = twin_builder.build_slab(seed);
    let twin_homes = twin_builder.build(seed);
    let slab_report = FleetRunner::new()
        .sharded_slab(&twin_slab, 2, |pop, _| {
            build_cell(pop, &weather_model, &horizon)
        })
        .report_tier(ReportTier::Settlement)
        .run();
    let mut object_fleet = FleetRunner::new();
    let mut start = 0;
    for (i, shard) in twin_slab.shards(2).into_iter().enumerate() {
        let end = start + shard.len();
        object_fleet = object_fleet.cell(
            format!("shard-{i}"),
            build_cell(
                powergrid::slab::PopulationRef::Objects(&twin_homes[start..end]),
                &weather_model,
                &horizon,
            ),
        );
        start = end;
    }
    let object_report = object_fleet.report_tier(ReportTier::Settlement).run();
    let identity_ok = slab_report == object_report;
    assert!(
        identity_ok,
        "slab-backed season diverged from the object-backed season"
    );

    CityScaleResult {
        households,
        cells,
        days,
        device_entries: slab.device_entries(),
        build_slab_us,
        slab_bytes,
        bytes_per_household: slab_bytes as f64 / households.max(1) as f64,
        object_demand_us,
        scratch_demand_us,
        slab_demand_us,
        speedup_vs_object,
        speedup_vs_scratch,
        season_us,
        negotiations,
        all_converged,
        season_retained_bytes: probe.then_some(season_retained),
        peak_heap_bytes: probe.then_some(peak_heap),
        identity_ok,
        meta: BenchMeta::capture(ReportTier::Settlement, threads).population_path("slab"),
    }
}

impl fmt::Display for CityScaleResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E20 — city scale ({} households as one slab, {} shards, {}-day winter season, \
             settlement tier)",
            self.households, self.cells, self.days
        )?;
        writeln!(
            f,
            "  slab: {} device entries, {} B retained ({:.1} B/household), built in {} µs",
            self.device_entries, self.slab_bytes, self.bytes_per_household, self.build_slab_us
        )?;
        writeln!(
            f,
            "  one-day demand synthesis: per-object {} µs | scratch object {} µs | slab {} µs",
            self.object_demand_us, self.scratch_demand_us, self.slab_demand_us
        )?;
        writeln!(
            f,
            "  slab speedup: {:.1}× vs per-object (target ≥ 5), {:.2}× vs scratch object",
            self.speedup_vs_object, self.speedup_vs_scratch
        )?;
        let retained = self
            .season_retained_bytes
            .map(|b| format!("{b} B retained"))
            .unwrap_or_else(|| "retained n/a (no probe)".into());
        let peak = self
            .peak_heap_bytes
            .map(|b| format!("{b} B heap high-water"))
            .unwrap_or_else(|| "high-water n/a (no probe)".into());
        writeln!(
            f,
            "  season: {} µs, {} negotiations, converged: {}, {retained}, {peak}",
            self.season_us,
            self.negotiations,
            if self.all_converged { "all" } else { "NOT ALL" }
        )?;
        writeln!(
            f,
            "  slab season == object season (400-household twin): {}",
            if self.identity_ok {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        )
    }
}

impl CityScaleResult {
    /// A machine-readable record for `BENCH_E20.json` (the experiment
    /// binary's `--json` flag) — the cross-PR city-scale trajectory.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<i64>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
        format!(
            "{{\"experiment\":\"E20\",{},\"households\":{},\"cells\":{},\"days\":{},\
             \"device_entries\":{},\"build_slab_us\":{},\"slab_bytes\":{},\
             \"bytes_per_household\":{:.1},\"object_demand_us\":{},\"scratch_demand_us\":{},\
             \"slab_demand_us\":{},\"speedup_vs_object\":{:.2},\"speedup_vs_scratch\":{:.2},\
             \"season_us\":{},\"negotiations\":{},\"all_converged\":{},\
             \"season_retained_bytes\":{},\"peak_heap_bytes\":{},\"identity_ok\":{}}}",
            self.meta.to_json(),
            self.households,
            self.cells,
            self.days,
            self.device_entries,
            self.build_slab_us,
            self.slab_bytes,
            self.bytes_per_household,
            self.object_demand_us,
            self.scratch_demand_us,
            self.slab_demand_us,
            self.speedup_vs_object,
            self.speedup_vs_scratch,
            self.season_us,
            self.negotiations,
            self.all_converged,
            opt(self.season_retained_bytes),
            opt(self.peak_heap_bytes),
            self.identity_ok
        )
    }
}

/// Convenience used by the Figure 6/7 bench: the calibrated scenario.
pub fn paper_scenario() -> Scenario {
    ScenarioBuilder::paper_figure_6().build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_has_evening_peak_and_expensive_band() {
        let r = fig1_demand(200, 7);
        assert!(!r.expensive_slots.is_empty());
        assert!(r.energy_above_normal.value() > 0.0);
        let start = r.curve.axis().start_of(r.peak_interval.start());
        assert!((16..=20).contains(&start.hour()), "peak at {start}");
        let text = r.to_string();
        assert!(text.contains("Figure 1"));
    }

    #[test]
    fn e3_checkpoints_match_paper() {
        let r = fig6_7_trace();
        assert!((r.round1_reward_04 - 17.0).abs() < 1e-9);
        assert!(
            (23.5..=26.0).contains(&r.final_reward_04),
            "{}",
            r.final_reward_04
        );
        assert!((r.initial_overuse - 35.0).abs() < 1e-9);
        assert!(
            (10.0..=16.0).contains(&r.final_overuse),
            "{}",
            r.final_overuse
        );
        assert_eq!(r.report.rounds().len(), 3);
    }

    #[test]
    fn e4_customer_bids_match_figures() {
        let r = fig8_9_customer();
        let bids: Vec<f64> = r.rounds.iter().map(|x| x.bid).collect();
        assert_eq!(bids, vec![0.2, 0.4, 0.4]);
        // Round 1: 0.3 not acceptable (9.56 < 10), 0.2 acceptable.
        let round1 = &r.rounds[0];
        let at = |c: f64| {
            round1
                .comparison
                .iter()
                .find(|e| (e.0 - c).abs() < 1e-9)
                .expect("level present")
        };
        assert!(!at(0.3).3);
        assert!(at(0.2).3);
    }

    #[test]
    fn e5_orders_methods_as_paper_claims() {
        let r = methods_comparison(200, 5);
        let row = |m: AnnouncementMethod| r.rows.iter().find(|x| x.method == m).unwrap();
        let offer = row(AnnouncementMethod::Offer);
        let rfb = row(AnnouncementMethod::RequestForBids);
        let rt = row(AnnouncementMethod::RewardTables);
        // Offer: exactly one round, fewest messages.
        assert_eq!(offer.rounds, 1);
        assert!(offer.messages <= rt.messages);
        assert!(rt.messages <= rfb.messages || rt.rounds <= rfb.rounds);
        // All methods reduce the peak.
        for x in &r.rows {
            assert!(x.final_overuse <= r.initial_overuse + 1e-9);
        }
    }

    #[test]
    fn e6_saturates_below_max() {
        let r = formula_sweep();
        for row in &r.rows {
            assert!(row.final_reward <= 30.0 + 1e-9);
            assert!(row.steps_to_saturation < 500);
        }
        // "The reward value increases more when the predicted overuse is
        // higher": the first step grows with overuse (same reward0), and
        // the trajectory climbs closer to max_reward before the ε rule
        // stops it.
        let low = r
            .rows
            .iter()
            .find(|x| x.overuse == 0.05 && x.reward0 == 17.0)
            .unwrap();
        let high = r
            .rows
            .iter()
            .find(|x| x.overuse == 0.5 && x.reward0 == 17.0)
            .unwrap();
        assert!(high.first_step > low.first_step);
        assert!(high.final_reward >= low.final_reward);
    }

    #[test]
    fn e7_beta_trades_outlay_for_peak_reduction() {
        let r = beta_sweep(60, 3);
        let row = |p: &str| r.rows.iter().find(|x| x.policy.contains(p)).unwrap();
        let timid = row("β=0.25");
        let bold = row("β=8");
        // A timid β saturates early (ε rule) and leaves more overuse; a
        // bold β buys the peak down.
        assert!(bold.mean_final_overuse <= timid.mean_final_overuse);
        assert!(r.rows.iter().all(|x| x.converged == 1.0));
    }

    #[test]
    fn e8_scaling_messages_grow_linearly_in_n() {
        let r = scaling(&[10, 100], 3);
        assert_eq!(r.rows.len(), 2);
        let small = &r.rows[0];
        let large = &r.rows[1];
        // Messages scale roughly with N × rounds.
        let per_n_small = small.messages as f64 / small.customers as f64;
        let per_n_large = large.messages as f64 / large.customers as f64;
        assert!(per_n_small > 0.0 && per_n_large > 0.0);
        assert!(large.messages > small.messages);
    }

    #[test]
    fn e9_no_violations() {
        let r = invariants(10);
        assert_eq!(r.announcement_violations, 0);
        assert_eq!(r.bid_violations, 0);
        assert_eq!(r.non_convergent, 0);
    }

    #[test]
    fn e10_both_strategies_shave_the_peak() {
        let r = market_comparison(150, 7);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!(
                row.final_overuse < r.initial_overuse,
                "{} failed to reduce the peak",
                row.strategy
            );
        }
        assert!(r.to_string().contains("market"));
    }

    #[test]
    fn e12_quadratic_shape_is_what_reproduces_figure_9() {
        let r = shape_ablation(60, 3);
        let quad = r.rows.iter().find(|x| x.shape == "quadratic").unwrap();
        let lin = r.rows.iter().find(|x| x.shape == "linear").unwrap();
        assert!(
            (quad.fig8_round1_bid - 0.2).abs() < 1e-9,
            "paper opening bid"
        );
        assert!(
            lin.fig8_round1_bid > 0.2,
            "linear pricing overpays small cut-downs, pulling the opening bid up: {}",
            lin.fig8_round1_bid
        );
    }

    #[test]
    fn e13_winter_campaigns_negotiate_and_shave() {
        let r = campaign_grid(&[40, 80], &[Season::Winter, Season::Summer], 7);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert_eq!(
                row.converged, row.peaks,
                "{} n={}: every negotiated peak converges",
                row.season, row.households
            );
        }
        // Winter campaigns carry the heating-driven evening peaks.
        let winter: Vec<_> = r
            .rows
            .iter()
            .filter(|x| x.season == Season::Winter)
            .collect();
        assert!(winter.iter().all(|x| x.peaks > 0));
        assert!(winter.iter().all(|x| x.energy_shaved > 0.0));
        assert!(r.to_string().contains("E13"));
    }

    #[test]
    fn e14_feedback_shrinks_later_peaks_and_stop_cuts_outlay() {
        let r = campaign_loop(120, 7);
        assert_eq!(r.rows.len(), 4);
        let row = |p: &str| r.rows.iter().find(|x| x.policy == p).unwrap();
        let open = row("open / unconditional");
        let open_stop = row("open / marginal-cost stop");
        let closed = row("closed / unconditional");
        // Every policy combination converges everywhere.
        for x in &r.rows {
            assert_eq!(x.converged, x.peaks, "{}: all converge", x.policy);
        }
        // Closed loop feeds negotiated cut-downs into prediction history
        // and therefore shaves no more than the open loop.
        assert!(closed.feedback > 0.0);
        assert_eq!(open.feedback, 0.0);
        assert!(closed.energy_shaved <= open.energy_shaved + 1e-9);
        // The marginal-cost stop never spends more than unconditional
        // negotiation and improves the utility's net position.
        assert!(open_stop.outlay <= open.outlay + 1e-9);
        assert!(open_stop.net_gain >= open.net_gain - 1e-9);
        assert!(r.to_string().contains("E14"));
    }

    #[test]
    fn e15_fleet_is_byte_identical_at_every_pool_size() {
        let r = fleet_scaling(3, 40, 7);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(
                row.matches_reference,
                "{} threads diverged from the sequential reference",
                row.threads
            );
        }
        assert!(r.negotiations > 0, "winter cells must carry peaks");
        // Timing figures exist (no speed assertion — CI machines vary).
        assert!(r.scratch_us > 0 || r.alloc_us > 0);
        let text = r.to_string();
        assert!(text.contains("E15"));
        assert!(text.contains("demand hot path"));
    }

    #[test]
    fn e16_hot_loop_is_byte_identical_and_reports() {
        // Small season, 2 threads — the CI smoke shape: the experiment
        // itself asserts persistent == spawn-per-day == sequential.
        let r = hot_loop(2, 40, 7, 2, 7);
        assert!(r.identical);
        assert!(r.peaks > 0, "winter cells must carry peaks");
        assert!(r.micro_peaks > 0);
        // Timing figures exist (no speed assertion — CI machines vary).
        assert!(r.persistent_us > 0 && r.scratch_us > 0);
        let text = r.to_string();
        assert!(text.contains("E16"));
        assert!(text.contains("persistent"));
        let json = r.to_json();
        assert!(json.contains("\"experiment\":\"E16\""));
        assert!(json.contains("\"identical\":true"));
        // E15's record is machine-readable too.
        let e15 = fleet_scaling(2, 40, 7);
        let json = e15.to_json();
        assert!(json.contains("\"experiment\":\"E15\""));
        assert!(json.contains("\"rows\":["));
    }

    #[test]
    fn bench_records_carry_runtime_metadata() {
        // Every perf-tracked BENCH_E*.json record states the report
        // tier, the thread count, and whether the counting allocator
        // fed the figures (false here: the library is uninstrumented).
        let e16 = hot_loop(2, 40, 7, 2, 7);
        let e15 = fleet_scaling(2, 40, 7);
        let e17 = report_tiers(2, 40, 7, 7);
        for json in [e15.to_json(), e16.to_json(), e17.to_json()] {
            assert!(json.contains("\"meta\":{"), "missing meta: {json}");
            assert!(json.contains("\"report_tier\":\""), "missing tier: {json}");
            assert!(json.contains("\"threads\":"), "missing threads: {json}");
            assert!(
                json.contains("\"alloc_probe\":false"),
                "probe must be reported absent in library tests: {json}"
            );
            assert!(
                json.contains("\"lint_clean\":true"),
                "the landed tree must benchmark lint-clean: {json}"
            );
            assert!(
                json.contains("\"population_path\":\"object\""),
                "records must state which population backend ran: {json}"
            );
        }
        assert!(e16.to_json().contains("\"threads\":2"));
    }

    #[test]
    fn e17_tiers_drop_storage_but_not_results() {
        // The experiment itself asserts the two guards (zero round
        // storage below full-trace, identical digests); here we also
        // pin the row shape and the archive round trips.
        let r = report_tiers(2, 40, 7, 7);
        assert_eq!(r.rows.len(), 3);
        assert!(r.scalars_identical);
        assert!(r.settlement_memory_ratio.is_none(), "no probe in tests");
        let full = r.rows.iter().find(|x| x.tier == ReportTier::FullTrace);
        let settlement = r.rows.iter().find(|x| x.tier == ReportTier::Settlement);
        let aggregate = r.rows.iter().find(|x| x.tier == ReportTier::Aggregate);
        let (full, settlement, aggregate) = (
            full.expect("full row"),
            settlement.expect("settlement row"),
            aggregate.expect("aggregate row"),
        );
        assert!(full.rounds_stored > 0, "winter season must negotiate");
        assert_eq!(settlement.rounds_stored, 0);
        assert_eq!(aggregate.rounds_stored, 0);
        assert_eq!(aggregate.settlements_stored, 0);
        assert!(settlement.settlements_stored > 0);
        for row in &r.rows {
            assert!(row.roundtrip_ok, "{}: archive did not round-trip", row.tier);
            assert!(row.archive_bytes > 0);
        }
        // Storage monotonicity on disk mirrors the in-memory tiers.
        assert!(aggregate.archive_bytes < settlement.archive_bytes);
        assert!(settlement.archive_bytes < full.archive_bytes);
        let json = r.to_json();
        assert!(json.contains("\"experiment\":\"E17\""));
        assert!(json.contains("\"scalars_identical\":true"));
    }

    #[test]
    fn e18_clean_is_sync_and_faults_degrade_measurably() {
        // The CI smoke shape: a small 2-cell winter season, every class.
        let r = fault_resilience(2, 30, 5, 7);
        assert!(
            r.clean_identical_to_sync,
            "distributed-clean must reproduce the sync season byte for byte"
        );
        assert!(r.negotiations > 0, "winter cells must carry peaks");
        assert!(r.clean_messages > 0);
        assert_eq!(r.rows.len(), 4);
        let row = |class: FaultClass| {
            r.rows
                .iter()
                .find(|x| x.class == class)
                .expect("every class benchmarked")
        };
        // Each class leaves exactly its own fingerprint on the wire.
        let drop = row(FaultClass::Drop);
        assert!(drop.dropped > 0);
        assert_eq!(drop.duplicated, 0);
        assert!(
            drop.deadline_forced > 0,
            "15 % loss must force rounds onto the deadline"
        );
        let dup = row(FaultClass::Duplicate);
        assert!(dup.duplicated > 0);
        assert_eq!(dup.dropped, 0);
        let reorder = row(FaultClass::Reorder);
        assert_eq!(reorder.dropped, 0);
        assert_eq!(reorder.duplicated, 0);
        let outage = row(FaultClass::Outage);
        assert!(outage.dropped > 0, "in-flight messages die in the window");
        // Every season terminated and was diffed peak by peak.
        for x in &r.rows {
            assert!(x.matched_peaks > 0, "{}: no peaks matched", x.class);
            assert!(x.mean_drift >= 0.0 && x.max_drift >= x.mean_drift);
        }
        let text = r.to_string();
        assert!(text.contains("E18"));
        assert!(text.contains("identical: yes"));
        let json = r.to_json();
        assert!(json.contains("\"experiment\":\"E18\""));
        assert!(json.contains("\"clean_identical_to_sync\":true"));
        assert!(json.contains("\"class\":\"outage\""));
        assert!(json.contains("\"meta\":{"));
    }

    #[test]
    fn e19_adaptive_loops_close_and_stay_deterministic() {
        // The CI smoke shape: a small single-cell winter season —
        // `adaptive_loops` itself asserts the economics and the
        // byte-identity invariants, so reaching the checks below means
        // all three loops closed without breaking determinism.
        let r = adaptive_loops(100, 16, 11);
        assert!(r.economics_no_worse);
        assert!(r.identical_across_threads);
        assert!(r.clean_identical_to_sync);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].policy, "static");
        assert_eq!(r.rows[1].policy, "adaptive");
        for row in &r.rows {
            assert!(row.negotiations > 0, "{}: no peaks negotiated", row.policy);
            assert!(row.overuse_removed > 0.0);
            assert!(row.overuse_removed <= row.energy_shaved + 1e-9);
        }
        assert!(
            (loadbal_core::utility_agent::own_process_control::BETA_MIN
                ..=loadbal_core::utility_agent::own_process_control::BETA_MAX)
                .contains(&r.final_beta),
            "tuned β {} escaped its clamp",
            r.final_beta
        );
        let text = r.to_string();
        assert!(text.contains("E19"));
        assert!(text.contains("removed kWh"));
        let json = r.to_json();
        assert!(json.contains("\"experiment\":\"E19\""));
        assert!(json.contains("\"overuse_removed\""));
        assert!(json.contains("\"economics_no_worse\":true"));
        assert!(json.contains("\"meta\":{"));
    }

    #[test]
    fn e20_city_scale_smoke_is_identical_and_reports() {
        // The CI smoke shape scaled far below the 10⁶-household
        // acceptance run: the experiment itself asserts all three
        // demand paths agree slot for slot and that the slab-backed
        // twin season is byte-identical to the object-backed one.
        let r = city_scale(600, 2, 5, 7);
        assert!(r.identity_ok);
        assert!(r.all_converged);
        assert!(r.negotiations > 0, "winter shards must carry peaks");
        // Every standard household has 7 or 8 devices.
        assert!((r.device_entries as f64 / r.households as f64) >= 7.0);
        assert!(r.slab_bytes > 0 && r.bytes_per_household > 0.0);
        // Timing figures exist (no speed assertion — CI machines vary;
        // the ≥5× claim is asserted at full scale by the binary).
        assert!(r.slab_demand_us > 0 && r.object_demand_us > 0);
        assert!(r.season_retained_bytes.is_none(), "no probe in tests");
        let text = r.to_string();
        assert!(text.contains("E20"));
        assert!(text.contains("byte-identical"));
        let json = r.to_json();
        assert!(json.contains("\"experiment\":\"E20\""));
        assert!(json.contains("\"population_path\":\"slab\""));
        assert!(json.contains("\"identity_ok\":true"));
        assert!(json.contains("\"speedup_vs_object\":"));
    }

    #[test]
    fn e11_optimized_categories_beat_or_match_uniform() {
        let r = offer_categories(200, 11);
        let uniform = &r.rows[0];
        for row in r.rows.iter().filter(|x| x.variant.contains("optimized")) {
            assert!(
                row.final_overuse <= uniform.final_overuse + 1e-9,
                "{}: {} vs uniform {}",
                row.variant,
                row.final_overuse,
                uniform.final_overuse
            );
        }
    }
}
