//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment (see `DESIGN.md` §4 for the full index) is a pure
//! function returning a result struct with a `Display` implementation
//! that prints the same quantities the paper reports. The `experiments`
//! binary dispatches on experiment id; the Criterion benches in
//! `benches/` time the underlying workloads.
//!
//! | id | paper artefact | function |
//! |----|----------------|----------|
//! | E1 | Figure 1 (demand curve with peak) | [`experiments::fig1_demand`] |
//! | E2 | Figures 2–5 (process trees) | `loadbal_core::desire_host` + `examples/process_tree.rs` |
//! | E3 | Figures 6–7 (UA trace) | [`experiments::fig6_7_trace`] |
//! | E4 | Figures 8–9 (CA trace) | [`experiments::fig8_9_customer`] |
//! | E5 | §3.2.4 method comparison | [`experiments::methods_comparison`] |
//! | E6 | §6 reward formula | [`experiments::formula_sweep`] |
//! | E7 | §7 β sensitivity | [`experiments::beta_sweep`] |
//! | E8 | §1/§7 scalability | [`experiments::scaling`] |
//! | E9 | §3.1 concession invariants | [`experiments::invariants`] |
//! | E13 | grid→negotiation campaigns | [`experiments::campaign_grid`] |
//! | E14 | campaign feedback loop | [`experiments::campaign_loop`] |
//! | E15 | fleet scaling + demand hot path | [`experiments::fleet_scaling`] |
//! | E16 | persistent pool + negotiation scratch hot loop | [`experiments::hot_loop`] |
//! | E17 | report tiers: retained memory + archive bytes/day | [`experiments::report_tiers`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod lint_check;

/// Allocation accounting hooks for the experiment binary.
///
/// The library never installs a global allocator (that would tax every
/// test run); the `experiments` *binary* wraps the system allocator and
/// funnels each allocation through [`alloc_probe::record_alloc`] and
/// each deallocation through [`alloc_probe::record_dealloc`]. An
/// experiment reads count / byte deltas around a timed or retained
/// section — in uninstrumented contexts (unit tests) the counters stay
/// at zero, [`alloc_probe::installed`] reports `false`, and the
/// experiment reports the measurement as unavailable.
pub mod alloc_probe {
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    static LIVE: AtomicI64 = AtomicI64::new(0);
    static PEAK: AtomicI64 = AtomicI64::new(0);

    /// Called by the instrumented global allocator on every allocation
    /// of `bytes` bytes.
    pub fn record_alloc(bytes: usize) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
        let live = LIVE.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    /// Called by the instrumented global allocator on every
    /// deallocation of `bytes` bytes.
    pub fn record_dealloc(bytes: usize) {
        LIVE.fetch_sub(bytes as i64, Ordering::Relaxed);
    }

    /// Allocations recorded so far (0 when not instrumented).
    pub fn count() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Cumulative bytes allocated so far (0 when not instrumented).
    pub fn bytes() -> u64 {
        BYTES.load(Ordering::Relaxed)
    }

    /// Bytes currently live (allocated minus freed). Deltas of this
    /// around building a long-lived value measure what that value
    /// *retains*, as opposed to what building it churned through.
    pub fn live_bytes() -> i64 {
        LIVE.load(Ordering::Relaxed)
    }

    /// High-water mark of [`live_bytes`].
    pub fn peak_bytes() -> i64 {
        PEAK.load(Ordering::Relaxed)
    }

    /// True when a counting allocator is feeding the probe (any
    /// allocation has been recorded — in the instrumented binary that
    /// is always the case long before an experiment starts).
    pub fn installed() -> bool {
        count() > 0
    }
}
