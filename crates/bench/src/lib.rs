//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment (see `DESIGN.md` §4 for the full index) is a pure
//! function returning a result struct with a `Display` implementation
//! that prints the same quantities the paper reports. The `experiments`
//! binary dispatches on experiment id; the Criterion benches in
//! `benches/` time the underlying workloads.
//!
//! | id | paper artefact | function |
//! |----|----------------|----------|
//! | E1 | Figure 1 (demand curve with peak) | [`experiments::fig1_demand`] |
//! | E2 | Figures 2–5 (process trees) | `loadbal_core::desire_host` + `examples/process_tree.rs` |
//! | E3 | Figures 6–7 (UA trace) | [`experiments::fig6_7_trace`] |
//! | E4 | Figures 8–9 (CA trace) | [`experiments::fig8_9_customer`] |
//! | E5 | §3.2.4 method comparison | [`experiments::methods_comparison`] |
//! | E6 | §6 reward formula | [`experiments::formula_sweep`] |
//! | E7 | §7 β sensitivity | [`experiments::beta_sweep`] |
//! | E8 | §1/§7 scalability | [`experiments::scaling`] |
//! | E9 | §3.1 concession invariants | [`experiments::invariants`] |
//! | E13 | grid→negotiation campaigns | [`experiments::campaign_grid`] |
//! | E14 | campaign feedback loop | [`experiments::campaign_loop`] |
//! | E15 | fleet scaling + demand hot path | [`experiments::fleet_scaling`] |
//! | E16 | persistent pool + negotiation scratch hot loop | [`experiments::hot_loop`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

/// Allocation counting hook for the experiment binary.
///
/// The library never installs a global allocator (that would tax every
/// test run); the `experiments` *binary* wraps the system allocator and
/// funnels each allocation through [`alloc_probe::record_alloc`]. An
/// experiment reads [`alloc_probe::count`] deltas around a timed
/// section — in uninstrumented contexts (unit tests) the counter stays
/// at zero and the experiment reports the measurement as unavailable.
pub mod alloc_probe {
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// Called by the instrumented global allocator on every allocation.
    pub fn record_alloc() {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }

    /// Allocations recorded so far (0 when not instrumented).
    pub fn count() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}
