//! Lint self-check for perf records.
//!
//! Every `BENCH_E*.json` record stamps `lint_clean` into its `meta`
//! block so the perf trajectory can never silently come from a tree
//! that violates the determinism/safety invariants `loadbal-lint`
//! enforces — a nondeterministic tree produces timings that are not
//! comparable across PRs. The experiments binary additionally calls
//! [`assert_clean`] up front, failing fast with the findings instead
//! of burning minutes of benchmarking on an unclean tree.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// The workspace root, reconstructed from this crate's manifest dir
/// (`crates/bench` → two levels up). Returns `None` when the layout
/// is not the source tree (e.g. a relocated binary).
fn workspace_root() -> Option<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.join("Cargo.toml").exists().then_some(root)
}

/// Runs the workspace lint pass once and caches the findings
/// (rendered, one per line; empty when clean or when the source tree
/// is unavailable).
fn findings() -> &'static [String] {
    static FINDINGS: OnceLock<Vec<String>> = OnceLock::new();
    FINDINGS.get_or_init(|| {
        let Some(root) = workspace_root() else {
            return Vec::new();
        };
        match loadbal_lint::lint_workspace(&root) {
            Ok(found) => found.iter().map(|f| f.to_string()).collect(),
            Err(e) => vec![format!("lint pass failed to walk the workspace: {e}")],
        }
    })
}

/// True when the workspace lint pass reports no findings (cached; the
/// pass runs at most once per process). Also true when the source
/// tree is unavailable — absence of sources is not a lint violation.
pub fn lint_clean() -> bool {
    findings().is_empty()
}

/// Panics with every finding when the tree is not lint-clean. The
/// experiments binary calls this before measuring anything.
pub fn assert_clean() {
    let found = findings();
    assert!(
        found.is_empty(),
        "refusing to benchmark an unclean tree; fix or waive:\n{}",
        found.join("\n")
    );
}
