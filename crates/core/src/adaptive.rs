//! The adaptive-control subsystem: the campaign's three self-tuning
//! loops, closed behind the existing policy traits.
//!
//! The paper's Utility Agent carries an *own process control* component
//! (Figure 2) that evaluates every finished negotiation and feeds the
//! experience back into strategy determination — §7 names "dynamically
//! varying the value of beta on the basis of experience" as the open
//! extension. This module wires that evaluation, and two further
//! feedback paths, into the campaign day loop:
//!
//! 1. **Experience-tuned strategy** ([`AdaptiveTuning`], a
//!    [`TuningPolicy`]) — every settled report of a day is recorded
//!    into the campaign's [`OwnProcessControl`], and
//!    [`OwnProcessControl::tune`] adjusts the *next* day's
//!    [`UtilityAgentConfig`]: β steepens after long negotiations and
//!    flattens after overspent instant ones (clamped to
//!    [`BETA_MIN`](crate::utility_agent::own_process_control::BETA_MIN)..[`BETA_MAX`](crate::utility_agent::own_process_control::BETA_MAX)),
//!    and the allowed-overuse band drifts toward the residual overuse
//!    negotiations actually settle at (clamped to
//!    [`BAND_MAX`](crate::utility_agent::own_process_control::BAND_MAX)).
//! 2. **Intra-day renegotiation** ([`RenegotiateResidual`], a
//!    [`FeedbackPolicy`]) — when a day's negotiations leave residual
//!    overuse behind (typically after an economic stop under
//!    [`MarginalCostStop`](crate::campaign::MarginalCostStop)), peaks
//!    are re-detected on the *post-negotiation* predicted profile and
//!    renegotiated the **same day** on a fresh reward ladder, for a
//!    bounded number of passes.
//! 3. **Rolling predictor re-selection** ([`RollingWindow`], a
//!    [`PredictorPolicy`]) — instead of choosing one predictor from the
//!    warmup and keeping it for the season,
//!    [`powergrid::prediction::select_best`] re-runs every few days on
//!    a sliding window of the feedback-adjusted history, so the model
//!    follows the season as negotiated cut-downs (and weather drift)
//!    reshape consumption.
//!
//! All three loops live in the **sequential day boundary** of
//! [`CampaignProgress`](crate::campaign::CampaignProgress) — between
//! [`complete_day`](crate::campaign::CampaignProgress::complete_day)
//! and the next
//! [`next_day`](crate::campaign::CampaignProgress::next_day) — never
//! inside the parallel peak fan-out. Adaptive campaigns therefore keep
//! the project's core invariant: byte-identical reports for any worker
//! thread count and for sync vs distributed-clean execution (pinned by
//! proptests in `tests/sweep_properties.rs`).
//!
//! ```
//! use loadbal_core::adaptive::{AdaptiveTuning, RenegotiateResidual, RollingWindow};
//! use loadbal_core::campaign::{CampaignBuilder, MarginalCostStop};
//! use powergrid::calendar::Horizon;
//! use powergrid::population::PopulationBuilder;
//! use powergrid::weather::{Season, WeatherModel};
//!
//! let homes = PopulationBuilder::new().households(40).build(11);
//! let horizon = Horizon::new(7, 0, Season::Winter);
//! let runner = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
//!     .predictor(RollingWindow::standard(4, 2))
//!     .feedback(RenegotiateResidual::new(2, 0.005))
//!     .tuning(AdaptiveTuning)
//!     .stop_rule(MarginalCostStop)
//!     .build();
//! let report = runner.run(); // parallel; byte-identical to run_sequential()
//! assert_eq!(report, runner.run_sequential());
//! ```

use crate::campaign::{ClosedLoop, FeedbackPolicy, IntervalOutcome, PredictorPolicy};
use crate::utility_agent::own_process_control::OwnProcessControl;
use crate::utility_agent::UtilityAgentConfig;
use powergrid::prediction::{
    select_best, HoltTrend, LoadPredictor, MovingAverage, SeasonalNaive, WeatherRegression,
};
use powergrid::series::Series;
use std::fmt;

// ---------------------------------------------------------------------
// Loop 1 — experience-tuned β and allowed-overuse band
// ---------------------------------------------------------------------

/// Decides the Utility Agent configuration for the *next* campaign day
/// from the campaign's own-process-control experience.
///
/// Called once per completed day in the sequential day boundary, after
/// every one of the day's settlement reports has been recorded into the
/// campaign's [`OwnProcessControl`]. Policies are `Send + Sync` so a
/// fleet can drive many campaigns from shared worker threads.
pub trait TuningPolicy: fmt::Debug + Send + Sync {
    /// The UA configuration for the next day, given the experience
    /// accumulated so far and the configuration used today.
    fn next_config(
        &self,
        control: &OwnProcessControl,
        current: &UtilityAgentConfig,
    ) -> UtilityAgentConfig;
}

/// The identity tuning policy (the default): every day negotiates with
/// the configuration the campaign was built with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticTuning;

impl TuningPolicy for StaticTuning {
    fn next_config(
        &self,
        _control: &OwnProcessControl,
        current: &UtilityAgentConfig,
    ) -> UtilityAgentConfig {
        current.clone()
    }
}

/// Experience-based tuning: each day boundary applies
/// [`OwnProcessControl::tune`] to the configuration, so β and the
/// allowed-overuse band adapt from the campaign's own settlement
/// history — bounded by
/// [`BETA_MIN`](crate::utility_agent::own_process_control::BETA_MIN),
/// [`BETA_MAX`](crate::utility_agent::own_process_control::BETA_MAX) and
/// [`BAND_MAX`](crate::utility_agent::own_process_control::BAND_MAX).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveTuning;

impl TuningPolicy for AdaptiveTuning {
    fn next_config(
        &self,
        control: &OwnProcessControl,
        current: &UtilityAgentConfig,
    ) -> UtilityAgentConfig {
        control.tune(current.clone())
    }
}

// ---------------------------------------------------------------------
// Loop 2 — intra-day renegotiation of residual overuse
// ---------------------------------------------------------------------

/// How a campaign revisits residual overuse the same day: up to
/// `max_passes` extra negotiation rounds per day, each re-detecting
/// peaks on the post-negotiation predicted profile with `threshold` as
/// both the detection threshold and the pass's allowed-overuse band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenegotiationRule {
    /// Renegotiation passes allowed per day beyond the primary one.
    pub max_passes: usize,
    /// Minimum residual overuse fraction that warrants another pass —
    /// also the band the pass negotiates down to, so a completed pass
    /// leaves nothing it would itself re-detect.
    pub threshold: f64,
}

impl RenegotiationRule {
    /// A validated rule.
    ///
    /// # Panics
    ///
    /// Panics if `max_passes` is zero, or `threshold` is negative or
    /// not finite.
    pub fn new(max_passes: usize, threshold: f64) -> RenegotiationRule {
        assert!(max_passes > 0, "renegotiation needs at least one pass");
        assert!(
            threshold >= 0.0 && threshold.is_finite(),
            "renegotiation threshold must be ≥ 0, got {threshold}"
        );
        RenegotiationRule {
            max_passes,
            threshold,
        }
    }
}

/// Closed-loop feedback plus intra-day renegotiation: after a day's
/// negotiations settle (including the paper's economic stop leaving
/// sub-threshold residual overuse behind), the campaign re-detects
/// peaks on the post-negotiation predicted profile and renegotiates
/// them the **same day** — on a fresh reward ladder, so the residual is
/// shaved at entry-level reward rates rather than by escalating the
/// already-expensive table further. Bounded by the rule's `max_passes`;
/// a pass that shaves nothing ends the day's renegotiation early.
///
/// History entries are [`ClosedLoop`]: every pass's settled cut-downs
/// (primary and renegotiated) feed the next day's prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenegotiateResidual {
    rule: RenegotiationRule,
}

impl RenegotiateResidual {
    /// Closed-loop feedback with up to `max_passes` renegotiation
    /// passes per day over residual peaks of at least `threshold`
    /// overuse fraction (see [`RenegotiationRule::new`] for
    /// validation).
    pub fn new(max_passes: usize, threshold: f64) -> RenegotiateResidual {
        RenegotiateResidual {
            rule: RenegotiationRule::new(max_passes, threshold),
        }
    }

    /// The configured rule.
    pub fn rule(&self) -> RenegotiationRule {
        self.rule
    }
}

impl FeedbackPolicy for RenegotiateResidual {
    fn history_entry(&self, actual: &Series, outcomes: &[IntervalOutcome]) -> Series {
        ClosedLoop.history_entry(actual, outcomes)
    }

    fn renegotiate(&self) -> Option<RenegotiationRule> {
        Some(self.rule)
    }
}

// ---------------------------------------------------------------------
// Loop 3 — rolling predictor re-selection
// ---------------------------------------------------------------------

/// Re-runs [`select_best`] every `every` evaluated days on a sliding
/// window of the last `window` days of feedback-adjusted history, so
/// the campaign's predictor follows the season instead of being fixed
/// by the warmup — [`BacktestSelected`](crate::campaign::BacktestSelected)
/// with the choice kept live.
///
/// Re-selection happens in the sequential day boundary
/// ([`PredictorPolicy::reselect`]); each
/// [`DayOutcome`](crate::campaign::DayOutcome) records the predictor
/// that actually forecast it.
#[derive(Debug)]
pub struct RollingWindow {
    candidates: Vec<Box<dyn LoadPredictor>>,
    window: usize,
    every: usize,
}

impl RollingWindow {
    /// A rolling policy over the given candidates.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty, `window` is below 2 (the
    /// backtest needs a seed/score split) or `every` is zero.
    pub fn new(candidates: Vec<Box<dyn LoadPredictor>>, window: usize, every: usize) -> Self {
        assert!(
            !candidates.is_empty(),
            "rolling selection needs at least one candidate"
        );
        assert!(window >= 2, "the rolling backtest window needs ≥ 2 days");
        assert!(every > 0, "re-selection cadence must be ≥ 1 day");
        RollingWindow {
            candidates,
            window,
            every,
        }
    }

    /// The standard candidate set (moving average, seasonal naïve,
    /// calibrated weather regression, Holt's linear trend) over a
    /// `window`-day sliding window, re-selected every `every` days.
    pub fn standard(window: usize, every: usize) -> RollingWindow {
        RollingWindow::new(
            vec![
                Box::new(MovingAverage::new(3)),
                Box::new(SeasonalNaive),
                Box::new(WeatherRegression::calibrated()),
                Box::new(HoltTrend::new(0.5, 0.2)),
            ],
            window,
            every,
        )
    }

    /// The candidate models.
    pub fn candidates(&self) -> &[Box<dyn LoadPredictor>] {
        &self.candidates
    }

    /// The sliding-window length, in days.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The re-selection cadence, in evaluated days.
    pub fn every(&self) -> usize {
        self.every
    }

    /// [`select_best`] over the last `window` days of the given aligned
    /// history/weather series (`None` if the tail is too short to
    /// split).
    fn select<'s>(
        &'s self,
        history: &[Series],
        weathers: &[Series],
    ) -> Option<&'s dyn LoadPredictor> {
        let len = history.len().min(weathers.len());
        let tail = len.min(self.window);
        if tail < 2 {
            return None;
        }
        let refs: Vec<&dyn LoadPredictor> = self.candidates.iter().map(|b| b.as_ref()).collect();
        let split = (tail / 2).max(1);
        select_best(
            &refs,
            &history[len - tail..len],
            &weathers[len - tail..len],
            split,
        )
        .ok()
    }
}

impl PredictorPolicy for RollingWindow {
    fn min_warmup_days(&self) -> usize {
        2 // the first backtest needs a seed/score split
    }

    fn choose<'s>(&'s self, actuals: &[Series], weathers: &[Series]) -> &'s dyn LoadPredictor {
        self.select(actuals, weathers)
            .expect("warmup length validated by CampaignBuilder::build")
    }

    fn reselect<'s>(
        &'s self,
        days_evaluated: usize,
        history: &[Series],
        weathers: &[Series],
    ) -> Option<&'s dyn LoadPredictor> {
        if days_evaluated == 0 || !days_evaluated.is_multiple_of(self.every) {
            return None;
        }
        self.select(history, weathers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignBuilder, MarginalCostStop};
    use powergrid::calendar::Horizon;
    use powergrid::population::PopulationBuilder;
    use powergrid::time::TimeAxis;
    use powergrid::weather::{Season, WeatherModel};

    #[test]
    fn static_tuning_is_identity_and_adaptive_delegates() {
        let control = OwnProcessControl::new();
        let config = UtilityAgentConfig::paper();
        assert_eq!(StaticTuning.next_config(&control, &config), config);
        assert_eq!(
            AdaptiveTuning.next_config(&control, &config),
            control.tune(config.clone())
        );
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn renegotiation_rule_rejects_zero_passes() {
        let _ = RenegotiationRule::new(0, 0.01);
    }

    #[test]
    #[should_panic(expected = "threshold must be ≥ 0")]
    fn renegotiation_rule_rejects_nan_threshold() {
        let _ = RenegotiationRule::new(1, f64::NAN);
    }

    #[test]
    fn renegotiate_residual_feeds_back_like_closed_loop() {
        let policy = RenegotiateResidual::new(2, 0.005);
        assert_eq!(policy.rule().max_passes, 2);
        assert!(policy.renegotiate().is_some());
        let actual = Series::constant(TimeAxis::hourly(), 5.0);
        // With no outcomes the entry is the actual series untouched —
        // exactly ClosedLoop's behaviour.
        assert_eq!(
            policy.history_entry(&actual, &[]),
            ClosedLoop.history_entry(&actual, &[])
        );
    }

    #[test]
    #[should_panic(expected = "window needs ≥ 2")]
    fn rolling_window_rejects_tiny_window() {
        let _ = RollingWindow::standard(1, 1);
    }

    #[test]
    fn rolling_window_selects_from_the_tail() {
        let policy = RollingWindow::standard(4, 2);
        let axis = TimeAxis::quarter_hourly();
        let history: Vec<Series> = (0..8)
            .map(|d| Series::constant(axis, 4.0 + d as f64 * 0.1))
            .collect();
        let weathers: Vec<Series> = (0..8).map(|_| Series::constant(axis, 2.0)).collect();
        // Off-cadence days keep the current predictor.
        assert!(policy.reselect(0, &history, &weathers).is_none());
        assert!(policy.reselect(3, &history, &weathers).is_none());
        // On-cadence days re-select deterministically.
        let a = policy
            .reselect(2, &history, &weathers)
            .expect("cadence hit");
        let b = policy
            .reselect(2, &history, &weathers)
            .expect("cadence hit");
        assert_eq!(a.name(), b.name());
        let names: Vec<&str> = policy.candidates().iter().map(|c| c.name()).collect();
        assert!(names.contains(&a.name()));
        // A too-short tail declines rather than panicking.
        assert!(policy.reselect(2, &history[..1], &weathers[..1]).is_none());
    }

    #[test]
    fn adaptive_campaign_doc_example_is_deterministic() {
        let homes = PopulationBuilder::new().households(30).build(7);
        let horizon = Horizon::new(6, 0, Season::Winter);
        let build = || {
            CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
                .warmup_days(2)
                .predictor(RollingWindow::standard(3, 1))
                .feedback(RenegotiateResidual::new(2, 0.005))
                .tuning(AdaptiveTuning)
                .stop_rule(MarginalCostStop)
                .build()
        };
        let a = build().run();
        let b = build().run_sequential();
        assert_eq!(a, b);
    }
}
