//! β policies: constant (the prototype) and dynamic (the §7 future work).
//!
//! "in the prototype implementation the factor beta which determines the
//! speed of negotiation has a constant value. The effects of dynamically
//! varying the value of beta on the basis of experience, should be
//! examined" (Section 7). [`BetaPolicy`] implements both, and the E7
//! experiment compares them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How β evolves over the course of a negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BetaPolicy {
    /// The prototype: a constant β.
    Constant {
        /// The fixed value.
        beta: f64,
    },
    /// β grows when progress stalls: `beta · (1 + gain · stall_rounds)`,
    /// where a *stall round* is one in which overuse did not improve by
    /// at least `min_progress` (relative).
    Adaptive {
        /// Base value.
        beta: f64,
        /// Multiplier increment per stalled round.
        gain: f64,
        /// Minimum relative overuse improvement that counts as progress.
        min_progress: f64,
    },
    /// β anneals geometrically: `beta · decay^round` — fast early
    /// concessions, careful refinement later.
    Annealing {
        /// Initial value.
        beta: f64,
        /// Per-round decay in `(0, 1]`.
        decay: f64,
    },
}

impl BetaPolicy {
    /// The paper's constant policy with β = 2 (Figure 6/7 calibration).
    pub fn paper() -> BetaPolicy {
        BetaPolicy::Constant { beta: 2.0 }
    }

    /// A constant policy.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is negative or non-finite.
    pub fn constant(beta: f64) -> BetaPolicy {
        assert!(beta >= 0.0 && beta.is_finite(), "beta must be non-negative");
        BetaPolicy::Constant { beta }
    }

    /// The default adaptive policy of the E7 experiment.
    pub fn adaptive(beta: f64) -> BetaPolicy {
        assert!(beta >= 0.0 && beta.is_finite(), "beta must be non-negative");
        BetaPolicy::Adaptive {
            beta,
            gain: 0.5,
            min_progress: 0.02,
        }
    }

    /// The default annealing policy of the E7 experiment.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < decay ≤ 1`.
    pub fn annealing(beta: f64, decay: f64) -> BetaPolicy {
        assert!(beta >= 0.0 && beta.is_finite(), "beta must be non-negative");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        BetaPolicy::Annealing { beta, decay }
    }

    /// The base β the policy starts a negotiation from — the value
    /// experience-based tuning
    /// ([`crate::utility_agent::own_process_control::OwnProcessControl::tune`])
    /// adjusts between campaign days.
    pub fn base_beta(&self) -> f64 {
        match *self {
            BetaPolicy::Constant { beta }
            | BetaPolicy::Adaptive { beta, .. }
            | BetaPolicy::Annealing { beta, .. } => beta,
        }
    }

    /// The same policy shape with its base β replaced.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is negative or non-finite.
    pub fn with_base_beta(self, beta: f64) -> BetaPolicy {
        assert!(beta >= 0.0 && beta.is_finite(), "beta must be non-negative");
        match self {
            BetaPolicy::Constant { .. } => BetaPolicy::Constant { beta },
            BetaPolicy::Adaptive {
                gain, min_progress, ..
            } => BetaPolicy::Adaptive {
                beta,
                gain,
                min_progress,
            },
            BetaPolicy::Annealing { decay, .. } => BetaPolicy::Annealing { beta, decay },
        }
    }

    /// The β to use in `round` (0-based), given the negotiation history.
    ///
    /// `stall_rounds` counts consecutive rounds without meaningful
    /// overuse improvement (maintained by the session).
    pub fn beta(&self, round: u32, stall_rounds: u32) -> f64 {
        match *self {
            BetaPolicy::Constant { beta } => beta,
            BetaPolicy::Adaptive { beta, gain, .. } => {
                beta * (1.0 + gain * f64::from(stall_rounds))
            }
            BetaPolicy::Annealing { beta, decay } => beta * decay.powi(round as i32),
        }
    }

    /// The relative-improvement threshold below which a round counts as
    /// stalled (only meaningful for [`BetaPolicy::Adaptive`]).
    pub fn min_progress(&self) -> f64 {
        match *self {
            BetaPolicy::Adaptive { min_progress, .. } => min_progress,
            _ => 0.0,
        }
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            BetaPolicy::Constant { .. } => "constant",
            BetaPolicy::Adaptive { .. } => "adaptive",
            BetaPolicy::Annealing { .. } => "annealing",
        }
    }
}

impl Default for BetaPolicy {
    fn default() -> Self {
        BetaPolicy::paper()
    }
}

impl fmt::Display for BetaPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BetaPolicy::Constant { beta } => write!(f, "constant(β={beta})"),
            BetaPolicy::Adaptive {
                beta,
                gain,
                min_progress,
            } => {
                write!(
                    f,
                    "adaptive(β={beta}, gain={gain}, min_progress={min_progress})"
                )
            }
            BetaPolicy::Annealing { beta, decay } => {
                write!(f, "annealing(β={beta}, decay={decay})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let p = BetaPolicy::constant(2.0);
        assert_eq!(p.beta(0, 0), 2.0);
        assert_eq!(p.beta(10, 5), 2.0);
    }

    #[test]
    fn adaptive_grows_on_stall() {
        let p = BetaPolicy::adaptive(2.0);
        assert_eq!(p.beta(3, 0), 2.0);
        assert!(p.beta(3, 2) > p.beta(3, 1));
        assert!(p.min_progress() > 0.0);
    }

    #[test]
    fn annealing_decays() {
        let p = BetaPolicy::annealing(4.0, 0.5);
        assert_eq!(p.beta(0, 0), 4.0);
        assert_eq!(p.beta(1, 0), 2.0);
        assert_eq!(p.beta(2, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_beta_panics() {
        let _ = BetaPolicy::constant(-1.0);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn bad_decay_panics() {
        let _ = BetaPolicy::annealing(1.0, 1.5);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(BetaPolicy::paper().name(), "constant");
        assert_eq!(BetaPolicy::adaptive(1.0).name(), "adaptive");
        assert!(BetaPolicy::annealing(1.0, 0.9).to_string().contains("0.9"));
    }
}
