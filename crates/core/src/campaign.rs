//! Grid-backed negotiation campaigns: negotiate the peaks that
//! `powergrid` predicts.
//!
//! This module closes the loop the paper describes end to end: the
//! physical model produces per-household demand for a simulated day,
//! the Utility Agent predicts the aggregate from history and the
//! weather forecast (§5.1.2), peak detection decides which intervals
//! warrant negotiating, and every detected peak becomes one
//! [`Scenario`] — customer preferences derived from each household's
//! `saving_potential` / `max_cutdown` rather than random betas
//! ([`ScenarioBuilder::from_peak`]) — negotiated through the shared
//! sans-io engine.
//!
//! A [`CampaignPlan`] is built once (a pure function of population,
//! weather model, horizon and configuration) and then executed either
//! sequentially or fanned across cores by [`ScenarioSweep`]; the two
//! produce byte-identical [`CampaignReport`]s, so season × population
//! grids are safely parallel.
//!
//! ```
//! use loadbal_core::campaign::{CampaignConfig, CampaignPlan};
//! use powergrid::calendar::Horizon;
//! use powergrid::population::PopulationBuilder;
//! use powergrid::prediction::MovingAverage;
//! use powergrid::weather::{Season, WeatherModel};
//!
//! let homes = PopulationBuilder::new().households(60).build(7);
//! let horizon = Horizon::new(6, 0, Season::Winter);
//! let plan = CampaignPlan::build(
//!     &homes,
//!     &WeatherModel::winter(),
//!     &horizon,
//!     &MovingAverage::new(3),
//!     CampaignConfig::default(),
//! );
//! let report = plan.run(); // parallel; byte-identical to run_sequential()
//! assert_eq!(report.negotiations(), plan.len());
//! assert_eq!(report, plan.run_sequential());
//! ```

use crate::beta::BetaPolicy;
use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, ScenarioBuilder};
use crate::sweep::ScenarioSweep;
use crate::utility_agent::UtilityAgentConfig;
use powergrid::calendar::{CalendarDay, Horizon};
use powergrid::demand::simulate_horizon;
use powergrid::household::Household;
use powergrid::peak::{Peak, PeakDetector};
use powergrid::prediction::LoadPredictor;
use powergrid::production::ProductionModel;
use powergrid::series::Series;
use powergrid::time::TimeAxis;
use powergrid::units::{KilowattHours, Kilowatts, Money};
use powergrid::weather::WeatherModel;
use std::fmt;
use std::num::NonZeroUsize;

/// Everything a campaign fixes besides population, weather and horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Slot resolution of the simulated days.
    pub axis: TimeAxis,
    /// Days of history accumulated before the first prediction; must be
    /// at least one and smaller than the horizon.
    pub warmup_days: usize,
    /// Normal production capacity as a fraction of the highest per-slot
    /// demand observed during warmup — below 1.0 guarantees that days
    /// like the warmup days peak above the capacity line.
    pub capacity_factor: f64,
    /// Minimum overuse fraction that makes a peak worth negotiating.
    pub peak_threshold: f64,
    /// The announcement method every peak is negotiated with.
    pub method: AnnouncementMethod,
    /// The Utility Agent configuration.
    pub ua_config: UtilityAgentConfig,
    /// Worker-thread cap for [`CampaignPlan::run`] (`None` = machine
    /// parallelism).
    pub threads: Option<NonZeroUsize>,
}

impl Default for CampaignConfig {
    /// Quarter-hour slots, three warmup days, capacity at 90 % of the
    /// warmup peak, 2 % overuse threshold, reward tables with the paper
    /// UA configuration recalibrated for grid-level peaks: the campaign
    /// UA negotiates until the peak is back *under the capacity line*
    /// (`max_allowed_overuse` 0 — grid peaks are a few percent of
    /// capacity, far below the Figure-6 scenario's 15 % tolerance, which
    /// would declare every one of them acceptable untouched), and β is
    /// rescaled from the paper's 2-at-35 %-overuse calibration to the
    /// ~5 % overuse a real peak carries (the §6 increment is β·overuse·…,
    /// so the paper β saturates below ε before rewards ever move).
    fn default() -> CampaignConfig {
        CampaignConfig {
            axis: TimeAxis::quarter_hourly(),
            warmup_days: 3,
            capacity_factor: 0.90,
            peak_threshold: 0.02,
            method: AnnouncementMethod::RewardTables,
            ua_config: UtilityAgentConfig::paper()
                .with_max_allowed_overuse(0.0)
                .with_beta_policy(BetaPolicy::constant(14.0)),
            threads: None,
        }
    }
}

/// One peak scheduled for negotiation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedPeak {
    /// The day the peak falls on.
    pub day: CalendarDay,
    /// The detected peak.
    pub peak: Peak,
}

/// One evaluated day of the campaign: its peaks (possibly none).
#[derive(Debug, Clone, PartialEq)]
pub struct DayPlan {
    /// The calendar day.
    pub day: CalendarDay,
    /// Peaks detected in the day's predicted demand, in time order.
    pub peaks: Vec<Peak>,
}

/// A fully materialised campaign: one [`Scenario`](crate::session::Scenario)
/// per detected peak, ready to run.
///
/// Building the plan is deterministic; running it is embarrassingly
/// parallel (every scenario is an independent pure value).
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    days: Vec<DayPlan>,
    planned: Vec<PlannedPeak>,
    sweep: ScenarioSweep,
    production: ProductionModel,
}

impl CampaignPlan {
    /// Plans a campaign: simulates the horizon's actual demand, predicts
    /// each post-warmup day from its history with `predictor`, detects
    /// every negotiable peak, and derives one scenario per peak with
    /// [`ScenarioBuilder::from_peak`].
    ///
    /// # Panics
    ///
    /// Panics if `households` is empty, `config.warmup_days` is zero, or
    /// the horizon is not longer than the warmup.
    pub fn build(
        households: &[Household],
        weather_model: &WeatherModel,
        horizon: &Horizon,
        predictor: &dyn LoadPredictor,
        config: CampaignConfig,
    ) -> CampaignPlan {
        assert!(!households.is_empty(), "a campaign needs households");
        assert!(config.warmup_days > 0, "prediction needs warmup history");
        assert!(
            horizon.len() as usize > config.warmup_days,
            "horizon of {} days leaves nothing to evaluate after {} warmup days",
            horizon.len(),
            config.warmup_days
        );
        let axis = config.axis;
        let simulated = simulate_horizon(households, weather_model, horizon, &axis);
        let actuals: Vec<Series> = simulated.iter().map(|(c, _)| c.series().clone()).collect();
        let weathers: Vec<Series> = simulated.into_iter().map(|(_, w)| w).collect();

        // Capacity sized from the warmup days' highest slot demand.
        let warmup_peak_kwh = actuals[..config.warmup_days]
            .iter()
            .map(|s| s.max())
            .fold(0.0f64, f64::max);
        let normal = Kilowatts(warmup_peak_kwh / axis.slot_hours() * config.capacity_factor);
        let production = ProductionModel::two_tier(normal, Kilowatts(normal.value() * 2.0));
        let detector = PeakDetector::new(config.peak_threshold);

        let mut days = Vec::new();
        let mut planned = Vec::new();
        let mut sweep = ScenarioSweep::new();
        if let Some(threads) = config.threads {
            sweep = sweep.threads(threads);
        }
        for day in horizon.days().skip(config.warmup_days) {
            let d = day.index as usize;
            let predicted = predictor.predict(&actuals[..d], &weathers[d]);
            let peaks = detector.detect_all(&predicted, &production);
            for peak in &peaks {
                let scenario = ScenarioBuilder::from_peak(
                    households,
                    &axis,
                    weathers[d].mean(),
                    peak,
                    day.index,
                    day.day_type.intensity_factor(),
                )
                .config(config.ua_config.clone())
                .method(config.method)
                .build();
                let label = format!("day{}/{}", day.index, peak.interval);
                sweep = sweep.point(label, scenario);
                planned.push(PlannedPeak { day, peak: *peak });
            }
            days.push(DayPlan { day, peaks });
        }
        CampaignPlan {
            days,
            planned,
            sweep,
            production,
        }
    }

    /// Number of peaks scheduled for negotiation.
    pub fn len(&self) -> usize {
        self.planned.len()
    }

    /// True if no day produced a negotiable peak.
    pub fn is_empty(&self) -> bool {
        self.planned.is_empty()
    }

    /// The per-day plans (peaks per evaluated day, possibly none).
    pub fn days(&self) -> &[DayPlan] {
        &self.days
    }

    /// The production model capacity was sized against.
    pub fn production(&self) -> &ProductionModel {
        &self.production
    }

    /// The underlying sweep grid (one cell per peak).
    pub fn sweep(&self) -> &ScenarioSweep {
        &self.sweep
    }

    /// Negotiates every planned peak in parallel via [`ScenarioSweep`];
    /// byte-identical to [`CampaignPlan::run_sequential`].
    pub fn run(&self) -> CampaignReport {
        self.assemble(self.sweep.run())
    }

    /// Negotiates every planned peak on the calling thread (the
    /// reference order for determinism checks).
    pub fn run_sequential(&self) -> CampaignReport {
        self.assemble(self.sweep.run_sequential())
    }

    fn assemble(&self, outcomes: Vec<crate::sweep::SweepOutcome>) -> CampaignReport {
        let outcomes = self
            .planned
            .iter()
            .zip(outcomes)
            .map(|(p, o)| IntervalOutcome {
                day: p.day,
                peak: p.peak,
                label: o.label,
                report: o.report,
            })
            .collect();
        CampaignReport {
            outcomes,
            days_evaluated: self.days.len(),
        }
    }
}

/// The result of negotiating one detected peak.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalOutcome {
    /// The day the peak fell on.
    pub day: CalendarDay,
    /// The peak that triggered the negotiation.
    pub peak: Peak,
    /// The sweep-cell label (`day<i>/<interval>`).
    pub label: String,
    /// The negotiation's full report.
    pub report: NegotiationReport,
}

impl IntervalOutcome {
    /// Energy the negotiation took out of this peak interval.
    pub fn energy_shaved(&self) -> KilowattHours {
        self.report.energy_shaved()
    }
}

/// Aggregate result of a day- or season-campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// One outcome per negotiated peak, in plan order.
    pub outcomes: Vec<IntervalOutcome>,
    /// Days the campaign evaluated (post-warmup), peaks or not.
    pub days_evaluated: usize,
}

impl CampaignReport {
    /// Number of peaks negotiated.
    pub fn negotiations(&self) -> usize {
        self.outcomes.len()
    }

    /// Evaluated days on which no peak warranted negotiation.
    pub fn stable_days(&self) -> usize {
        let peak_days: std::collections::BTreeSet<u64> =
            self.outcomes.iter().map(|o| o.day.index).collect();
        self.days_evaluated - peak_days.len()
    }

    /// Number of negotiations that converged by protocol rules.
    pub fn converged(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.report.converged())
            .count()
    }

    /// True if every negotiated peak converged.
    pub fn all_converged(&self) -> bool {
        self.converged() == self.negotiations()
    }

    /// Total energy shaved across every negotiated peak.
    pub fn total_energy_shaved(&self) -> KilowattHours {
        self.outcomes.iter().map(|o| o.energy_shaved()).sum()
    }

    /// Total reward outlay across every negotiated peak.
    pub fn total_rewards(&self) -> Money {
        self.outcomes.iter().map(|o| o.report.total_rewards()).sum()
    }

    /// Mean rounds per negotiation (zero for an empty campaign).
    pub fn mean_rounds(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.report.rounds().len() as f64)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} days evaluated, {} peaks negotiated ({} converged), \
             {:.1} kWh shaved, {:.1} rewards paid, {:.2} mean rounds",
            self.days_evaluated,
            self.negotiations(),
            self.converged(),
            self.total_energy_shaved().value(),
            self.total_rewards().value(),
            self.mean_rounds()
        )?;
        for o in &self.outcomes {
            writeln!(
                f,
                "  {:<16} {:>2} rounds | overuse {:>5.1}% → {:>5.1}% | shaved {:>7.2} kWh | {}",
                o.label,
                o.report.rounds().len(),
                100.0 * o.report.initial_overuse_fraction(),
                100.0 * o.report.final_overuse_fraction(),
                o.energy_shaved().value(),
                o.report.status()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powergrid::population::PopulationBuilder;
    use powergrid::prediction::{MovingAverage, SeasonalNaive};
    use powergrid::weather::Season;

    fn small_campaign() -> CampaignPlan {
        let homes = PopulationBuilder::new().households(40).build(11);
        let horizon = Horizon::new(6, 0, Season::Winter);
        CampaignPlan::build(
            &homes,
            &WeatherModel::winter(),
            &horizon,
            &MovingAverage::new(3),
            CampaignConfig::default(),
        )
    }

    #[test]
    fn plan_covers_every_detected_peak() {
        let plan = small_campaign();
        let total_peaks: usize = plan.days().iter().map(|d| d.peaks.len()).sum();
        assert_eq!(plan.len(), total_peaks);
        assert_eq!(plan.days().len(), 3, "6-day horizon minus 3 warmup days");
        assert!(
            !plan.is_empty(),
            "winter evenings must peak above 95 % capacity"
        );
        assert_eq!(plan.sweep().len(), plan.len());
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let plan = small_campaign();
        let parallel = plan.run();
        let sequential = plan.run_sequential();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn campaign_converges_and_shaves_energy() {
        let report = small_campaign().run();
        assert!(report.all_converged(), "{report}");
        assert!(report.total_energy_shaved().value() > 0.0, "{report}");
        assert!(report.negotiations() > 0);
        assert!(report.stable_days() < report.days_evaluated);
        let text = report.to_string();
        assert!(text.contains("peaks negotiated"));
    }

    #[test]
    fn plans_are_deterministic() {
        let a = small_campaign();
        let b = small_campaign();
        assert_eq!(a.sweep().points(), b.sweep().points());
        assert_eq!(a.run(), b.run());
    }

    #[test]
    fn predictor_choice_changes_the_plan_not_the_guarantees() {
        let homes = PopulationBuilder::new().households(30).build(5);
        let horizon = Horizon::new(5, 2, Season::Winter);
        let naive = CampaignPlan::build(
            &homes,
            &WeatherModel::winter(),
            &horizon,
            &SeasonalNaive,
            CampaignConfig::default(),
        );
        let report = naive.run();
        assert_eq!(report.negotiations(), naive.len());
        assert!(report.all_converged(), "{report}");
    }

    #[test]
    #[should_panic(expected = "leaves nothing to evaluate")]
    fn short_horizon_panics() {
        let homes = PopulationBuilder::new().households(5).build(1);
        let horizon = Horizon::new(3, 0, Season::Winter);
        let _ = CampaignPlan::build(
            &homes,
            &WeatherModel::winter(),
            &horizon,
            &MovingAverage::new(3),
            CampaignConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "needs households")]
    fn empty_population_panics() {
        let horizon = Horizon::new(6, 0, Season::Winter);
        let _ = CampaignPlan::build(
            &[],
            &WeatherModel::winter(),
            &horizon,
            &MovingAverage::new(3),
            CampaignConfig::default(),
        );
    }
}
