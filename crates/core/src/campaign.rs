//! Policy-driven negotiation campaigns: negotiate the peaks that
//! `powergrid` predicts, day by day, with feedback.
//!
//! The paper's premise is a *daily cycle*: the Utility Agent predicts
//! tomorrow's balance, negotiates the peaks that warrant the effort
//! (§5.1.2), and the settled cut-downs change the consumption the next
//! prediction is trained on. A campaign is that cycle over a calendar
//! [`Horizon`], configured by a fluent [`CampaignBuilder`] and three
//! pluggable policies:
//!
//! * **[`PredictorPolicy`]** — which [`LoadPredictor`] forecasts each
//!   day: a fixed model ([`FixedPredictor`]) or one picked per campaign
//!   from warmup accuracy by rolling backtest ([`BacktestSelected`],
//!   via [`powergrid::prediction::select_best`]);
//! * **[`FeedbackPolicy`]** — what enters prediction history: the
//!   simulated actuals untouched ([`OpenLoop`]) or with each day's
//!   negotiated cut-downs applied ([`ClosedLoop`]), so predictors train
//!   on post-negotiation consumption and later days depend on earlier
//!   outcomes;
//! * **[`StopPolicy`]** — when the UA stops raising reward tables:
//!   never before its protocol rules fire ([`Unconditional`]) or as
//!   soon as the next table would cost more than the expensive
//!   production still avoidable ([`MarginalCostStop`], priced through
//!   [`ProducerAgent::peak_saving_value`]).
//!
//! The [`CampaignRunner`] produced by [`CampaignBuilder::build`]
//! executes days **sequentially** (closed-loop feedback makes day *d*
//! depend on day *d − 1*) but fans each day's peak negotiations across
//! cores with a [`WorkerPool`]; [`CampaignRunner::run`] is
//! byte-identical to [`CampaignRunner::run_sequential`] for any thread
//! count, so campaigns stay replayable. To run *many* campaigns on one
//! shared pool, step them through [`CampaignRunner::progress`] — that
//! is what [`crate::fleet::FleetRunner`] does.
//!
//! ```
//! use loadbal_core::campaign::{CampaignBuilder, ClosedLoop, FixedPredictor};
//! use powergrid::calendar::Horizon;
//! use powergrid::population::PopulationBuilder;
//! use powergrid::prediction::MovingAverage;
//! use powergrid::weather::{Season, WeatherModel};
//!
//! let homes = PopulationBuilder::new().households(60).build(7);
//! let horizon = Horizon::new(6, 0, Season::Winter);
//! let runner = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
//!     .predictor(FixedPredictor(MovingAverage::new(3)))
//!     .feedback(ClosedLoop)
//!     .build();
//! let report = runner.run(); // parallel; byte-identical to run_sequential()
//! assert_eq!(report.negotiations(), report.outcomes.len());
//! assert_eq!(report, runner.run_sequential());
//! ```

use crate::adaptive::{RenegotiationRule, StaticTuning, TuningPolicy};
use crate::beta::BetaPolicy;
use crate::execution::{peak_seed, ExecutionMode, NetworkTraffic, TrafficCell};
use crate::methods::AnnouncementMethod;
use crate::producer_agent::ProducerAgent;
use crate::session::{NegotiationReport, ReportTier, Scenario, ScenarioBuilder};
use crate::sweep::WorkerPool;
use crate::sync_driver::NegotiationScratch;
use crate::utility_agent::own_process_control::OwnProcessControl;
use crate::utility_agent::{EconomicStopRule, UtilityAgentConfig};
use powergrid::calendar::{CalendarDay, Horizon};
use powergrid::demand::simulate_horizon_ref;
use powergrid::household::{DemandScratch, Household};
use powergrid::peak::{Peak, PeakDetector};
use powergrid::prediction::{
    select_best, HoltTrend, LoadPredictor, MovingAverage, SeasonalNaive, WeatherRegression,
};
use powergrid::production::ProductionModel;
use powergrid::series::Series;
use powergrid::slab::PopulationRef;
use powergrid::time::TimeAxis;
use powergrid::units::{KilowattHours, Kilowatts, Money, PricePerKwh};
use powergrid::weather::WeatherModel;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

// ---------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------

/// Chooses the campaign's load predictor from its warmup window.
///
/// Policies are `Send + Sync` so a fleet can drive many campaigns from
/// shared worker threads.
pub trait PredictorPolicy: fmt::Debug + Send + Sync {
    /// Warmup days the policy needs before it can choose (validated by
    /// [`CampaignBuilder::build`]).
    fn min_warmup_days(&self) -> usize {
        1
    }

    /// Chooses the predictor from the warmup window (`actuals` and
    /// `weathers` hold exactly the warmup days, oldest first).
    fn choose<'s>(&'s self, actuals: &[Series], weathers: &[Series]) -> &'s dyn LoadPredictor;

    /// Re-considers the choice at a day boundary, after `days_evaluated`
    /// post-warmup days have completed. `history` holds the campaign's
    /// feedback-adjusted prediction history (warmup plus evaluated days,
    /// oldest first) and `weathers` the aligned weather series. `None`
    /// keeps the current predictor; the default policy never re-selects
    /// — [`crate::adaptive::RollingWindow`] closes this loop.
    ///
    /// Called in the sequential day boundary, never inside the parallel
    /// peak fan-out, so re-selection cannot perturb byte-identity across
    /// thread counts or execution modes.
    fn reselect<'s>(
        &'s self,
        days_evaluated: usize,
        history: &[Series],
        weathers: &[Series],
    ) -> Option<&'s dyn LoadPredictor> {
        let _ = (days_evaluated, history, weathers);
        None
    }
}

/// The trivial predictor policy: always the given model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPredictor<P: LoadPredictor>(pub P);

impl<P: LoadPredictor> PredictorPolicy for FixedPredictor<P> {
    fn choose<'s>(&'s self, _actuals: &[Series], _weathers: &[Series]) -> &'s dyn LoadPredictor {
        &self.0
    }
}

/// Picks the campaign predictor by rolling backtest over the warmup
/// window: the first half of the warmup seeds each candidate, the rest
/// scores it, and the lowest mean MAPE wins (ties to the earliest
/// candidate — selection is deterministic).
#[derive(Debug)]
pub struct BacktestSelected {
    candidates: Vec<Box<dyn LoadPredictor>>,
}

impl BacktestSelected {
    /// A policy choosing among the given candidates.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn new(candidates: Vec<Box<dyn LoadPredictor>>) -> BacktestSelected {
        assert!(
            !candidates.is_empty(),
            "backtest selection needs at least one candidate"
        );
        BacktestSelected { candidates }
    }

    /// The standard candidate set: moving average, seasonal naïve,
    /// calibrated weather regression, and Holt's linear trend.
    pub fn standard() -> BacktestSelected {
        BacktestSelected::new(vec![
            Box::new(MovingAverage::new(3)),
            Box::new(SeasonalNaive),
            Box::new(WeatherRegression::calibrated()),
            Box::new(HoltTrend::new(0.5, 0.2)),
        ])
    }

    /// The candidate models.
    pub fn candidates(&self) -> &[Box<dyn LoadPredictor>] {
        &self.candidates
    }
}

impl PredictorPolicy for BacktestSelected {
    fn min_warmup_days(&self) -> usize {
        2 // the backtest needs a split: seed days plus scored days
    }

    fn choose<'s>(&'s self, actuals: &[Series], weathers: &[Series]) -> &'s dyn LoadPredictor {
        let refs: Vec<&dyn LoadPredictor> = self.candidates.iter().map(|b| b.as_ref()).collect();
        let split = (actuals.len() / 2).max(1);
        select_best(&refs, actuals, weathers, split)
            .expect("warmup length validated by CampaignBuilder::build")
    }
}

/// Decides what a day's consumption looks like once its negotiations
/// have settled — the series appended to prediction history.
///
/// Policies are `Send + Sync` so a fleet can drive many campaigns from
/// shared worker threads.
pub trait FeedbackPolicy: fmt::Debug + Send + Sync {
    /// The history entry for a day, given the day's simulated actual
    /// series and its negotiated outcomes (empty on stable days).
    fn history_entry(&self, actual: &Series, outcomes: &[IntervalOutcome]) -> Series;

    /// Whether (and how) the campaign revisits residual overuse the
    /// same day: `Some(rule)` makes the day loop re-detect peaks on the
    /// post-negotiation predicted profile after each pass and
    /// renegotiate them before the calendar advances, for at most
    /// `rule.max_passes` extra passes. The default never renegotiates —
    /// [`crate::adaptive::RenegotiateResidual`] closes this loop.
    fn renegotiate(&self) -> Option<RenegotiationRule> {
        None
    }
}

/// Open loop: prediction history holds the simulated actuals untouched,
/// as if no customer implemented a cut-down (the pre-feedback campaign
/// behaviour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenLoop;

impl FeedbackPolicy for OpenLoop {
    fn history_entry(&self, actual: &Series, _outcomes: &[IntervalOutcome]) -> Series {
        actual.clone()
    }
}

/// Closed loop: each negotiated peak's aggregate cut
/// ([`NegotiationReport::shaved_fraction`]) is applied to the day's
/// actual consumption over the peak interval before the day enters
/// prediction history — predictors train on post-negotiation
/// consumption, so the next day's forecast reflects the deals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClosedLoop;

impl FeedbackPolicy for ClosedLoop {
    fn history_entry(&self, actual: &Series, outcomes: &[IntervalOutcome]) -> Series {
        let mut entry = actual.clone();
        let len = entry.len();
        for o in outcomes {
            let keep = 1.0 - o.report.shaved_fraction();
            for i in o
                .peak
                .interval
                .intersect(powergrid::time::Interval::new(0, len))
            {
                entry.values_mut()[i] *= keep;
            }
        }
        entry
    }
}

/// Decides whether the Utility Agent negotiates each peak to the
/// protocol's own end or under an economic stop rule.
///
/// Policies are `Send + Sync` so a fleet can drive many campaigns from
/// shared worker threads.
pub trait StopPolicy: fmt::Debug + Send + Sync {
    /// The stop rule injected into the UA configuration, priced against
    /// the campaign's producer (`None` = unconditional).
    fn economic_stop(&self, producer: &ProducerAgent) -> Option<EconomicStopRule>;
}

/// Negotiate every peak to the protocol's own termination rules — the
/// paper's prototype behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Unconditional;

impl StopPolicy for Unconditional {
    fn economic_stop(&self, _producer: &ProducerAgent) -> Option<EconomicStopRule> {
        None
    }
}

/// Stop raising reward tables once the next table — priced at the bids
/// customers have already committed to — would cost more than the
/// expensive production still avoidable, valued at the producer's cost
/// spread ([`ProducerAgent::peak_saving_value`]). Stopped negotiations
/// settle on the current table and count as converged
/// ([`crate::concession::TerminationReason::EconomicStop`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarginalCostStop;

impl StopPolicy for MarginalCostStop {
    fn economic_stop(&self, producer: &ProducerAgent) -> Option<EconomicStopRule> {
        Some(EconomicStopRule::for_producer(producer))
    }
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Fluent configuration of a campaign; [`CampaignBuilder::build`]
/// validates it and produces a ready [`CampaignRunner`].
#[derive(Debug)]
pub struct CampaignBuilder<'a> {
    population: PopulationRef<'a>,
    weather_model: WeatherModel,
    horizon: Horizon,
    axis: TimeAxis,
    warmup_days: usize,
    capacity_factor: f64,
    peak_threshold: f64,
    method: AnnouncementMethod,
    ua_config: UtilityAgentConfig,
    report_tier: ReportTier,
    execution: ExecutionMode,
    threads: Option<NonZeroUsize>,
    normal_cost: PricePerKwh,
    expensive_cost: PricePerKwh,
    predictor: Box<dyn PredictorPolicy + 'a>,
    feedback: Box<dyn FeedbackPolicy + 'a>,
    stop: Box<dyn StopPolicy + 'a>,
    tuning: Box<dyn TuningPolicy + 'a>,
}

impl<'a> CampaignBuilder<'a> {
    /// A builder with the campaign defaults: quarter-hour slots, three
    /// warmup days, capacity at 90 % of the warmup peak, 2 % overuse
    /// threshold, reward tables with the grid-recalibrated paper UA
    /// configuration (the campaign UA negotiates until the peak is back
    /// *under the capacity line* — `max_allowed_overuse` 0, since grid
    /// peaks are a few percent of capacity, far below the Figure-6
    /// scenario's 15 % tolerance — and β rescaled to 14 for the ~5 %
    /// overuse a real peak carries, because the §6 increment is
    /// β·overuse·… and the paper β saturates below ε before rewards ever
    /// move), a calibrated weather-regression predictor, open-loop
    /// feedback and unconditional negotiation.
    pub fn new(
        households: &'a [Household],
        weather_model: &WeatherModel,
        horizon: &Horizon,
    ) -> CampaignBuilder<'a> {
        CampaignBuilder::new_ref(PopulationRef::Objects(households), weather_model, horizon)
    }

    /// [`CampaignBuilder::new`] over either population backend — hand it
    /// a [`SlabView`](powergrid::slab::SlabView) (or a whole
    /// [`PopulationSlab`](powergrid::slab::PopulationSlab) via
    /// `slab.view().into()`) to run a city-scale cell without
    /// materialising per-object households; the campaign negotiates
    /// byte-identically either way.
    pub fn new_ref(
        population: PopulationRef<'a>,
        weather_model: &WeatherModel,
        horizon: &Horizon,
    ) -> CampaignBuilder<'a> {
        CampaignBuilder {
            population,
            weather_model: weather_model.clone(),
            horizon: *horizon,
            axis: TimeAxis::quarter_hourly(),
            warmup_days: 3,
            capacity_factor: 0.90,
            peak_threshold: 0.02,
            method: AnnouncementMethod::RewardTables,
            ua_config: UtilityAgentConfig::paper()
                .with_max_allowed_overuse(0.0)
                .with_beta_policy(BetaPolicy::constant(14.0)),
            report_tier: ReportTier::FullTrace,
            execution: ExecutionMode::Sync,
            threads: None,
            normal_cost: ProductionModel::DEFAULT_NORMAL_COST,
            expensive_cost: ProductionModel::DEFAULT_EXPENSIVE_COST,
            predictor: Box::new(FixedPredictor(WeatherRegression::calibrated())),
            feedback: Box::new(OpenLoop),
            stop: Box::new(Unconditional),
            tuning: Box::new(StaticTuning),
        }
    }

    /// Slot resolution of the simulated days.
    pub fn axis(mut self, axis: TimeAxis) -> Self {
        self.axis = axis;
        self
    }

    /// Days of history accumulated before the first prediction; must be
    /// at least one (and enough for the predictor policy) and smaller
    /// than the horizon.
    pub fn warmup_days(mut self, days: usize) -> Self {
        self.warmup_days = days;
        self
    }

    /// Normal production capacity as a fraction of the highest per-slot
    /// demand observed during warmup — below 1.0 guarantees that days
    /// like the warmup days peak above the capacity line.
    pub fn capacity_factor(mut self, factor: f64) -> Self {
        self.capacity_factor = factor;
        self
    }

    /// Minimum overuse fraction that makes a peak worth negotiating.
    pub fn peak_threshold(mut self, threshold: f64) -> Self {
        self.peak_threshold = threshold;
        self
    }

    /// The announcement method every peak is negotiated with.
    pub fn method(mut self, method: AnnouncementMethod) -> Self {
        self.method = method;
        self
    }

    /// The Utility Agent configuration (a configured [`StopPolicy`] may
    /// still install its economic stop rule on top).
    pub fn ua_config(mut self, config: UtilityAgentConfig) -> Self {
        self.ua_config = config;
        self
    }

    /// How much of each negotiation the campaign's reports retain
    /// (default [`ReportTier::FullTrace`]). Lower tiers negotiate
    /// identically — every scalar in the report and economics is
    /// unchanged — but the per-round records (and, below `FullTrace`,
    /// the materialised scenarios) are streamed away at the source
    /// instead of accumulated, which is what makes season- and
    /// fleet-scale campaigns fit in memory.
    pub fn report_tier(mut self, tier: ReportTier) -> Self {
        self.report_tier = tier;
        self
    }

    /// How each peak's negotiation actually executes (default
    /// [`ExecutionMode::Sync`]): the in-process pump, or a seeded
    /// [`massim`] simulation per peak over a network model. A
    /// distributed-*clean* campaign reports byte-identically to a sync
    /// one at every tier (the byte-identity suites pin this); a faulty
    /// network degrades the season measurably, with the wire activity
    /// accumulated as [`NetworkTraffic`] (see
    /// [`CampaignRunner::run_instrumented`]).
    pub fn execution(mut self, mode: ExecutionMode) -> Self {
        self.execution = mode;
        self
    }

    /// Worker-thread cap for [`CampaignRunner::run`] (default: machine
    /// parallelism).
    pub fn threads(mut self, threads: NonZeroUsize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Production costs per kWh for the two tiers — the economics the
    /// producer agent reports and the stop rule prices against.
    ///
    /// # Panics
    ///
    /// Panics if `expensive` is below `normal` (via
    /// [`ProductionModel::with_costs`] when the campaign is built).
    pub fn production_costs(mut self, normal: PricePerKwh, expensive: PricePerKwh) -> Self {
        self.normal_cost = normal;
        self.expensive_cost = expensive;
        self
    }

    /// The predictor-selection policy.
    pub fn predictor(mut self, policy: impl PredictorPolicy + 'a) -> Self {
        self.predictor = Box::new(policy);
        self
    }

    /// The demand-feedback policy.
    pub fn feedback(mut self, policy: impl FeedbackPolicy + 'a) -> Self {
        self.feedback = Box::new(policy);
        self
    }

    /// The economic stop policy.
    pub fn stop_rule(mut self, policy: impl StopPolicy + 'a) -> Self {
        self.stop = Box::new(policy);
        self
    }

    /// The day-boundary tuning policy: how each completed day's
    /// settlement experience (recorded into the campaign's
    /// [`OwnProcessControl`]) shapes the *next* day's
    /// [`UtilityAgentConfig`]. The default [`StaticTuning`] keeps the
    /// built configuration all season;
    /// [`AdaptiveTuning`](crate::adaptive::AdaptiveTuning) closes the
    /// paper's §7 experience loop.
    pub fn tuning(mut self, policy: impl TuningPolicy + 'a) -> Self {
        self.tuning = Box::new(policy);
        self
    }

    /// Validates the configuration, simulates the horizon's demand,
    /// sizes capacity from the warmup days and prices the stop rule —
    /// everything deterministic that precedes the first negotiation.
    ///
    /// # Panics
    ///
    /// Panics if `households` is empty, `warmup_days` is zero or below
    /// the predictor policy's minimum, or the horizon is not longer than
    /// the warmup.
    pub fn build(self) -> CampaignRunner<'a> {
        assert!(!self.population.is_empty(), "a campaign needs households");
        assert!(self.warmup_days > 0, "prediction needs warmup history");
        assert!(
            self.horizon.len() as usize > self.warmup_days,
            "horizon of {} days leaves nothing to evaluate after {} warmup days",
            self.horizon.len(),
            self.warmup_days
        );
        assert!(
            self.warmup_days >= self.predictor.min_warmup_days(),
            "{:?} needs at least {} warmup days, got {}",
            self.predictor,
            self.predictor.min_warmup_days(),
            self.warmup_days
        );
        let simulated = simulate_horizon_ref(
            self.population,
            &self.weather_model,
            &self.horizon,
            &self.axis,
        );
        let actuals: Vec<Series> = simulated.iter().map(|(c, _)| c.series().clone()).collect();
        let weathers: Vec<Series> = simulated.into_iter().map(|(_, w)| w).collect();

        // Capacity sized from the warmup days' highest slot demand.
        let warmup_peak_kwh = actuals[..self.warmup_days]
            .iter()
            .map(|s| s.max())
            .fold(0.0f64, f64::max);
        let normal = Kilowatts(warmup_peak_kwh / self.axis.slot_hours() * self.capacity_factor);
        let production = ProductionModel::with_costs(
            normal,
            Kilowatts(normal.value() * 2.0),
            self.normal_cost,
            self.expensive_cost,
        );
        let producer = ProducerAgent::new(production);
        let ua_config = self
            .ua_config
            .with_economic_stop(self.stop.economic_stop(&producer));

        CampaignRunner {
            population: self.population,
            horizon: self.horizon,
            axis: self.axis,
            warmup_days: self.warmup_days,
            peak_threshold: self.peak_threshold,
            method: self.method,
            ua_config,
            report_tier: self.report_tier,
            execution: self.execution,
            threads: self.threads,
            pool: OnceLock::new(),
            predictor: self.predictor,
            feedback: self.feedback,
            tuning: self.tuning,
            actuals,
            weathers,
            producer,
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// A validated campaign ready to execute: the day-by-day
/// predict → detect → negotiate → feed-back cycle.
///
/// Days run sequentially (closed-loop feedback makes them dependent);
/// each day's peaks fan across cores via a [`WorkerPool`]. Both entry
/// points are pure: re-running produces byte-identical
/// [`CampaignReport`]s, and [`CampaignRunner::run`] equals
/// [`CampaignRunner::run_sequential`] for any thread count.
#[derive(Debug)]
pub struct CampaignRunner<'a> {
    population: PopulationRef<'a>,
    horizon: Horizon,
    axis: TimeAxis,
    warmup_days: usize,
    peak_threshold: f64,
    method: AnnouncementMethod,
    ua_config: UtilityAgentConfig,
    report_tier: ReportTier,
    execution: ExecutionMode,
    threads: Option<NonZeroUsize>,
    /// The persistent worker pool for [`CampaignRunner::run`]: spawned
    /// on the first parallel run and reused by every day of every
    /// subsequent run — the day loop pays no per-day thread spawn.
    pool: OnceLock<WorkerPool>,
    predictor: Box<dyn PredictorPolicy + 'a>,
    feedback: Box<dyn FeedbackPolicy + 'a>,
    tuning: Box<dyn TuningPolicy + 'a>,
    actuals: Vec<Series>,
    weathers: Vec<Series>,
    producer: ProducerAgent,
}

impl CampaignRunner<'_> {
    /// The production model capacity was sized against.
    pub fn production(&self) -> &ProductionModel {
        self.producer.production()
    }

    /// The producer agent pricing the campaign's economics.
    pub fn producer(&self) -> &ProducerAgent {
        &self.producer
    }

    /// The Utility Agent configuration each peak is negotiated with
    /// (stop rule already installed).
    pub fn ua_config(&self) -> &UtilityAgentConfig {
        &self.ua_config
    }

    /// The tier this campaign's reports retain.
    pub fn report_tier(&self) -> ReportTier {
        self.report_tier
    }

    /// Overrides the report tier after building — how a
    /// [`FleetRunner`](crate::fleet::FleetRunner) applies one fleet-wide
    /// tier across cells built elsewhere.
    pub fn set_report_tier(&mut self, tier: ReportTier) {
        self.report_tier = tier;
    }

    /// The execution mode each peak negotiates under.
    pub fn execution_mode(&self) -> &ExecutionMode {
        &self.execution
    }

    /// Overrides the execution mode after building — how a
    /// [`FleetRunner`](crate::fleet::FleetRunner) applies one fleet-wide
    /// mode across cells built elsewhere.
    pub fn set_execution_mode(&mut self, mode: ExecutionMode) {
        self.execution = mode;
    }

    /// Days the campaign will evaluate after warmup.
    pub fn days_to_evaluate(&self) -> usize {
        self.horizon.len() as usize - self.warmup_days
    }

    /// Runs the campaign, fanning each day's peak negotiations across
    /// cores; byte-identical to [`CampaignRunner::run_sequential`].
    pub fn run(&self) -> CampaignReport {
        self.execute(true).0
    }

    /// Runs the campaign entirely on the calling thread (the reference
    /// order for determinism checks).
    pub fn run_sequential(&self) -> CampaignReport {
        self.execute(false).0
    }

    /// [`CampaignRunner::run`] plus the season's accumulated
    /// [`NetworkTraffic`] — all-zero under [`ExecutionMode::Sync`],
    /// wire/drop/deadline counters under a distributed mode. The report
    /// is byte-identical to [`CampaignRunner::run`]'s; the traffic is
    /// deterministic for a given mode (order-independent sums over
    /// per-peak seeded simulations).
    pub fn run_instrumented(&self) -> (CampaignReport, NetworkTraffic) {
        self.execute(true)
    }

    /// [`CampaignRunner::run_instrumented`] in the sequential reference
    /// order — identical report *and* identical traffic.
    pub fn run_sequential_instrumented(&self) -> (CampaignReport, NetworkTraffic) {
        self.execute(false)
    }

    /// Begins stepping the campaign day by day — the resumable form of
    /// [`CampaignRunner::run`] that a
    /// [`FleetRunner`](crate::fleet::FleetRunner) interleaves with other
    /// campaigns on one shared [`WorkerPool`]: call
    /// [`CampaignProgress::next_day`] for the day's negotiable work,
    /// negotiate the scenarios however you like, hand the reports back
    /// through [`CampaignProgress::complete_day`], and
    /// [`CampaignProgress::finish`] once `next_day` returns `None`.
    ///
    /// Stepping is pure bookkeeping: any driver that negotiates each
    /// scenario with [`Scenario::run`] produces a report byte-identical
    /// to [`CampaignRunner::run_sequential`].
    pub fn progress(&self) -> CampaignProgress<'_> {
        let warmup = self.warmup_days;
        CampaignProgress {
            runner: self,
            predictor: self
                .predictor
                .choose(&self.actuals[..warmup], &self.weathers[..warmup]),
            detector: PeakDetector::new(self.peak_threshold),
            history: self.actuals[..warmup].to_vec(),
            scratch: DemandScratch::new(&self.axis),
            next_index: warmup as u64,
            ua_config: self.ua_config.clone(),
            control: OwnProcessControl::new(),
            pending: None,
            outcomes: Vec::new(),
            days: Vec::new(),
            traffic: NetworkTraffic::ZERO,
        }
    }

    /// The persistent [`WorkerPool`] behind [`CampaignRunner::run`]:
    /// built (threads spawned, parked) on first use, reused across days
    /// and across repeated runs of this campaign.
    pub fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::sized(self.threads))
    }

    fn execute(&self, parallel: bool) -> (CampaignReport, NetworkTraffic) {
        let mut progress = self.progress();
        if parallel {
            // One parked pool across every day; each worker threads one
            // NegotiationScratch through all the peaks it claims —
            // through the sync pump or the distributed simulation,
            // whichever the campaign's execution mode says.
            let pool = self.pool();
            while let Some(plan) = progress.next_day() {
                let reports = pool.run_with(
                    plan.scenarios.len(),
                    NegotiationScratch::new,
                    |scratch, i| plan.negotiate(i, scratch),
                );
                progress.complete_day(plan, reports);
            }
        } else {
            // The reference order reuses one scratch for the whole
            // season — byte-identical to fresh engines per peak.
            let mut scratch = NegotiationScratch::new();
            while let Some(plan) = progress.next_day() {
                let reports = (0..plan.scenarios.len())
                    .map(|i| plan.negotiate(i, &mut scratch))
                    .collect();
                progress.complete_day(plan, reports);
            }
        }
        let traffic = progress.traffic();
        (progress.finish(), traffic)
    }
}

// ---------------------------------------------------------------------
// Stepping
// ---------------------------------------------------------------------

/// One day's negotiable work, produced by [`CampaignProgress::next_day`]:
/// the detected peaks and their materialised scenarios (label +
/// [`Scenario`]), in time order. Days without peaks carry an empty
/// scenario list and are completed with no reports.
#[derive(Debug)]
pub struct DayPlan {
    day: CalendarDay,
    peaks: Vec<Peak>,
    scenarios: Vec<(String, Scenario)>,
    tier: ReportTier,
    mode: ExecutionMode,
    /// Scenarios already negotiated for this day by earlier passes —
    /// offsets the per-peak distributed seeds so a renegotiation pass
    /// never replays the primary pass's network randomness (zero for
    /// the primary plan, which keeps pre-adaptive seeds unchanged).
    seed_base: u64,
    /// Wire activity of this day's distributed negotiations, folded in
    /// through [`DayPlan::negotiate`] by however many workers share the
    /// plan (atomic sums — deterministic under any scheduling).
    traffic: TrafficCell,
}

impl DayPlan {
    /// The calendar day this work belongs to.
    pub fn day(&self) -> CalendarDay {
        self.day
    }

    /// The tier the campaign wants this day's negotiations reported at
    /// — external drivers (the fleet) negotiate with
    /// [`Scenario::run_in_at`] so lower tiers never materialise the
    /// storage they would immediately drop.
    pub fn tier(&self) -> ReportTier {
        self.tier
    }

    /// The detected peaks, in time order (one scenario each).
    pub fn peaks(&self) -> &[Peak] {
        &self.peaks
    }

    /// The labelled scenarios to negotiate, in peak order.
    pub fn scenarios(&self) -> &[(String, Scenario)] {
        &self.scenarios
    }

    /// True if the day is stable — nothing to negotiate.
    pub fn is_stable(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The execution mode this day's negotiations run under.
    pub fn execution_mode(&self) -> &ExecutionMode {
        &self.mode
    }

    /// Negotiates scenario `index` of this plan through `scratch`,
    /// honouring the campaign's [`ExecutionMode`]: the in-process sync
    /// pump, or one seeded [`massim`] simulation over the mode's network
    /// (its per-peak seed fixed by the plan's day and the scenario's
    /// position — never by which worker runs it). Distributed wire
    /// activity accumulates on the plan and reaches the campaign's
    /// [`NetworkTraffic`] when the plan is handed back through
    /// [`CampaignProgress::complete_day`].
    ///
    /// Every driver of a campaign (the runner's own day loop, the
    /// fleet's shared-pool scheduler) negotiates through this method so
    /// the mode is honoured everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range of
    /// [`DayPlan::scenarios`].
    pub fn negotiate(&self, index: usize, scratch: &mut NegotiationScratch) -> NegotiationReport {
        let (_, scenario) = &self.scenarios[index];
        match &self.mode {
            ExecutionMode::Sync => scenario.run_in_at(scenario.method, self.tier, scratch),
            ExecutionMode::Distributed {
                network,
                deadline,
                seed,
            } => {
                let outcome = scratch.run_distributed_at(
                    scenario,
                    scenario.method,
                    self.tier,
                    network,
                    peak_seed(*seed, self.day.index, self.seed_base + index as u64),
                    *deadline,
                );
                self.traffic.record(&outcome);
                outcome.report
            }
        }
    }
}

/// A campaign in flight: the predict → detect → materialise → feed-back
/// bookkeeping of [`CampaignRunner::run`], exposed one day at a time so
/// external schedulers (the fleet) can interleave the *negotiations* of
/// many campaigns while each campaign's days stay strictly sequential.
///
/// One [`DemandScratch`] lives inside the progress and is reused across
/// every household of every peak of every day — the campaign's scenario
/// derivation allocates no per-device series.
///
/// The progress also owns the campaign's **adaptive state** — the
/// current [`UtilityAgentConfig`], the [`OwnProcessControl`] recording
/// every settlement, the live predictor and any staged renegotiation
/// pass. All of it advances only inside
/// [`CampaignProgress::complete_day`], i.e. in the sequential day
/// boundary, which is why adaptive campaigns stay byte-identical across
/// thread counts and execution modes.
#[derive(Debug)]
pub struct CampaignProgress<'r> {
    runner: &'r CampaignRunner<'r>,
    predictor: &'r dyn LoadPredictor,
    detector: PeakDetector,
    history: Vec<Series>,
    scratch: DemandScratch,
    next_index: u64,
    /// The UA configuration the *next* plan's scenarios negotiate with —
    /// starts as the runner's and drifts under the tuning policy.
    ua_config: UtilityAgentConfig,
    /// Evaluation of every settlement completed so far (the paper's own
    /// process control), fed to the tuning policy at each day boundary.
    control: OwnProcessControl,
    /// The calendar day whose passes are still in flight — holds the
    /// day's predicted profile, accumulated outcomes and any staged
    /// renegotiation peaks until the day is finalised.
    pending: Option<PendingDay>,
    outcomes: Vec<IntervalOutcome>,
    days: Vec<DayOutcome>,
    traffic: NetworkTraffic,
}

/// Bookkeeping for the day currently being negotiated: created by
/// [`CampaignProgress::next_day`] when the calendar advances, grown by
/// each completed pass, consumed when the day finalises.
#[derive(Debug)]
struct PendingDay {
    day: CalendarDay,
    /// The profile the day's peaks were detected on — renegotiation
    /// re-detects on this series with the settled cut-downs applied.
    predicted: Series,
    outcomes: Vec<IntervalOutcome>,
    peaks: Vec<Peak>,
    /// Negotiation passes completed for this day (primary included).
    passes_done: usize,
    /// Residual peaks staged for the next renegotiation pass, each with
    /// the fraction of the originally predicted interval energy still
    /// standing (the pass's demand scale).
    staged: Vec<(Peak, f64)>,
}

impl CampaignProgress<'_> {
    /// Predicts, detects and materialises the next day's work, or `None`
    /// once the horizon is exhausted. Each returned plan must be handed
    /// back through [`CampaignProgress::complete_day`] before the next
    /// call.
    ///
    /// When the feedback policy renegotiates
    /// ([`FeedbackPolicy::renegotiate`]) and the previous pass left
    /// residual peaks staged, the returned plan is a **renegotiation
    /// pass over the same calendar day** (labels carry a `#r<pass>`
    /// suffix) rather than the next day — external drivers need no
    /// special handling, pass plans flow through the same
    /// negotiate/complete cycle.
    pub fn next_day(&mut self) -> Option<DayPlan> {
        if let Some(plan) = self.next_pass_plan() {
            return Some(plan);
        }
        let day = self.runner.horizon.day(self.next_index)?;
        self.next_index += 1;
        let d = day.index as usize;
        let predicted = self
            .predictor
            .predict(&self.history, &self.runner.weathers[d]);
        let peaks = self
            .detector
            .detect_all(&predicted, self.runner.producer.production());
        let scenarios = peaks
            .iter()
            .map(|peak| {
                let scenario = ScenarioBuilder::from_peak_ref(
                    self.runner.population,
                    &self.runner.axis,
                    self.runner.weathers[d].mean(),
                    peak,
                    day.index,
                    day.day_type.intensity_factor(),
                    &mut self.scratch,
                )
                .config(self.ua_config.clone())
                .method(self.runner.method)
                .build();
                (format!("day{}/{}", day.index, peak.interval), scenario)
            })
            .collect();
        self.pending = Some(PendingDay {
            day,
            predicted,
            outcomes: Vec::new(),
            peaks: Vec::new(),
            passes_done: 0,
            staged: Vec::new(),
        });
        Some(DayPlan {
            day,
            peaks,
            scenarios,
            tier: self.runner.report_tier,
            mode: self.runner.execution.clone(),
            seed_base: 0,
            traffic: TrafficCell::default(),
        })
    }

    /// Materialises the staged renegotiation pass, if any: the residual
    /// peaks re-detected by the last [`CampaignProgress::complete_day`],
    /// each scenario scaled down to the demand still standing after the
    /// passes already settled, negotiated against the current UA
    /// configuration with the rule's threshold as the allowed-overuse
    /// band (so a completed pass leaves nothing it would re-detect).
    fn next_pass_plan(&mut self) -> Option<DayPlan> {
        let (day, pass, seed_base, staged) = self.pending.as_mut().and_then(|p| {
            if p.staged.is_empty() {
                None
            } else {
                Some((
                    p.day,
                    p.passes_done,
                    p.outcomes.len() as u64,
                    std::mem::take(&mut p.staged),
                ))
            }
        })?;
        let rule = self
            .runner
            .feedback
            .renegotiate()
            .expect("staged residual peaks imply a renegotiation rule");
        let d = day.index as usize;
        let config = self
            .ua_config
            .clone()
            .with_max_allowed_overuse(rule.threshold);
        let mut peaks = Vec::with_capacity(staged.len());
        let mut scenarios = Vec::with_capacity(staged.len());
        for (peak, scale) in staged {
            let scenario = ScenarioBuilder::from_peak_ref(
                self.runner.population,
                &self.runner.axis,
                self.runner.weathers[d].mean(),
                &peak,
                day.index,
                day.day_type.intensity_factor() * scale,
                &mut self.scratch,
            )
            .config(config.clone())
            .method(self.runner.method)
            .build();
            scenarios.push((
                format!("day{}/{}#r{pass}", day.index, peak.interval),
                scenario,
            ));
            peaks.push(peak);
        }
        Some(DayPlan {
            day,
            peaks,
            scenarios,
            tier: self.runner.report_tier,
            mode: self.runner.execution.clone(),
            seed_base,
            traffic: TrafficCell::default(),
        })
    }

    /// The Utility Agent configuration the next plan's scenarios will
    /// negotiate with — the runner's until a tuning policy moves it.
    pub fn ua_config(&self) -> &UtilityAgentConfig {
        &self.ua_config
    }

    /// The campaign's own process control: one evaluation per settled
    /// negotiation so far.
    pub fn control(&self) -> &OwnProcessControl {
        &self.control
    }

    /// Records a completed pass: `reports` must hold one
    /// [`NegotiationReport`] per plan scenario, in plan order. Every
    /// settlement is evaluated into the campaign's
    /// [`OwnProcessControl`]; then either a renegotiation pass is staged
    /// (residual peaks re-detected on the post-negotiation profile, see
    /// [`FeedbackPolicy::renegotiate`]) or the day finalises — feedback
    /// enters prediction history, the tuning policy shapes the next
    /// day's UA configuration and the predictor policy may re-select.
    ///
    /// # Panics
    ///
    /// Panics if `reports.len()` differs from `plan.scenarios().len()`.
    pub fn complete_day(&mut self, plan: DayPlan, reports: Vec<NegotiationReport>) {
        assert_eq!(
            reports.len(),
            plan.scenarios.len(),
            "one report per scenario of the day plan"
        );
        self.traffic += plan.traffic.snapshot();
        let DayPlan {
            day,
            peaks,
            scenarios,
            tier,
            ..
        } = plan;
        let day_outcomes: Vec<IntervalOutcome> = scenarios
            .into_iter()
            .zip(reports)
            .zip(&peaks)
            .map(|(((label, scenario), report), peak)| IntervalOutcome {
                day,
                peak: *peak,
                label,
                // The materialised scenario (its customer profiles
                // dominate an outcome's footprint) is only worth
                // carrying when the full trace is: the digest already
                // holds everything feedback and economics read.
                scenario: tier.keeps_rounds().then_some(scenario),
                report,
            })
            .collect();
        for o in &day_outcomes {
            self.control.record(&o.report);
        }
        let pass_shaved = day_outcomes
            .iter()
            .any(|o| o.report.energy_shaved().value() > 1e-9);
        let pending = self
            .pending
            .as_mut()
            .expect("complete_day follows next_day");
        debug_assert_eq!(pending.day, day, "plans complete in order");
        pending.outcomes.extend(day_outcomes);
        pending.peaks.extend(peaks);
        pending.passes_done += 1;

        // Loop 2: stage an intra-day renegotiation pass while the rule
        // allows one, the last pass still moved energy, and the settled
        // cut-downs leave residual peaks on the predicted profile.
        if let Some(rule) = self.runner.feedback.renegotiate() {
            if pass_shaved && pending.passes_done <= rule.max_passes {
                let residual = ClosedLoop.history_entry(&pending.predicted, &pending.outcomes);
                let staged: Vec<(Peak, f64)> = PeakDetector::new(rule.threshold)
                    .detect_all(&residual, self.runner.producer.production())
                    .into_iter()
                    .filter_map(|peak| {
                        let before = pending.predicted.energy_over(peak.interval).value();
                        let after = residual.energy_over(peak.interval).value();
                        // Only renegotiate intervals that still carry
                        // real demand; the scale re-materialises the
                        // households at the consumption still standing.
                        (before > 1e-9 && after > 1e-9)
                            .then(|| (peak, (after / before).clamp(1e-6, 1.0)))
                    })
                    .collect();
                if !staged.is_empty() {
                    pending.staged = staged;
                    return; // next_day serves the pass before the calendar moves
                }
            }
        }

        // The day is settled: apply feedback and close the day boundary.
        let done = self.pending.take().expect("pending day just updated");
        let d = day.index as usize;
        let entry = self
            .runner
            .feedback
            .history_entry(&self.runner.actuals[d], &done.outcomes);
        let feedback_delta = (self.runner.actuals[d].total() - entry.total()).clamp_non_negative();
        let negotiated = !done.outcomes.is_empty();
        self.history.push(entry);
        self.days.push(DayOutcome {
            day,
            predictor: self.predictor.name(),
            peaks: done.peaks,
            feedback_delta,
        });
        self.outcomes.extend(done.outcomes);

        // Loop 1: tomorrow's UA configuration from today's experience —
        // only when the day brought new experience, so stable days
        // cannot compound an adjustment out of stale evaluations.
        if negotiated {
            self.ua_config = self
                .runner
                .tuning
                .next_config(&self.control, &self.ua_config);
        }
        // Loop 3: the predictor policy may re-select on the updated
        // feedback-adjusted history.
        if let Some(p) = self.runner.predictor.reselect(
            self.days.len(),
            &self.history,
            &self.runner.weathers[..self.history.len()],
        ) {
            self.predictor = p;
        }
    }

    /// The [`NetworkTraffic`] accumulated over the days completed so
    /// far — all-zero for a sync campaign. Read before
    /// [`CampaignProgress::finish`].
    pub fn traffic(&self) -> NetworkTraffic {
        self.traffic
    }

    /// Assembles the finished [`CampaignReport`].
    ///
    /// Call after [`CampaignProgress::next_day`] returns `None`; calling
    /// earlier yields a report over the days completed so far.
    pub fn finish(self) -> CampaignReport {
        let economics =
            CampaignEconomics::compute(&self.outcomes, &self.runner.producer, self.runner.axis);
        CampaignReport {
            outcomes: self.outcomes,
            days: self.days,
            economics,
        }
    }
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

/// One evaluated day of the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct DayOutcome {
    /// The calendar day.
    pub day: CalendarDay,
    /// The predictor that forecast this day (the campaign's choice).
    pub predictor: &'static str,
    /// Peaks detected in the day's predicted demand, in time order.
    pub peaks: Vec<Peak>,
    /// Energy the feedback policy removed from this day's actual series
    /// before it entered prediction history (zero open-loop).
    pub feedback_delta: KilowattHours,
}

/// The result of negotiating one detected peak.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalOutcome {
    /// The day the peak fell on.
    pub day: CalendarDay,
    /// The peak that triggered the negotiation.
    pub peak: Peak,
    /// The sweep-cell label (`day<i>/<interval>`).
    pub label: String,
    /// The materialised scenario (physically grounded customer
    /// profiles) — retained only at
    /// [`ReportTier::FullTrace`].
    pub scenario: Option<Scenario>,
    /// The negotiation's report, at the campaign's tier.
    pub report: NegotiationReport,
}

impl IntervalOutcome {
    /// Energy the negotiation took out of this peak interval.
    pub fn energy_shaved(&self) -> KilowattHours {
        self.report.energy_shaved()
    }

    /// Copies this outcome down to `tier` (see
    /// [`NegotiationReport::at_tier`]): the report is downgraded and the
    /// scenario dropped below
    /// [`ReportTier::FullTrace`].
    pub fn at_tier(&self, tier: ReportTier) -> IntervalOutcome {
        IntervalOutcome {
            day: self.day,
            peak: self.peak,
            label: self.label.clone(),
            scenario: if tier.keeps_rounds() {
                self.scenario.clone()
            } else {
                None
            },
            report: self.report.at_tier(tier),
        }
    }

    /// True if the marginal-cost stop rule ended this negotiation.
    pub fn stopped_economically(&self) -> bool {
        self.report.status()
            == crate::concession::NegotiationStatus::Converged(
                crate::concession::TerminationReason::EconomicStop,
            )
    }
}

/// Stop-rule accounting for a campaign, priced by its producer agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignEconomics {
    /// Total reward outlay across every negotiated peak.
    pub rewards_paid: Money,
    /// Total energy shaved out of the peaks.
    pub energy_shaved: KilowattHours,
    /// Production cost avoided by not serving the shaved overuse at the
    /// expensive tier ([`ProducerAgent::cost_of_energy`] before minus
    /// after, per peak) — gross, before the forgone normal-rate revenue
    /// of the unsold energy.
    pub production_cost_avoided: Money,
    /// The shaved overuse priced at the producer's cost spread
    /// ([`ProducerAgent::peak_saving_value`]) — the *same* per-kWh value
    /// the marginal-cost stop rule negotiates against, so stop decisions
    /// and report accounting agree.
    pub peak_saving: Money,
    /// Peak saving minus rewards paid.
    pub net_gain: Money,
    /// Negotiations the marginal-cost stop rule ended.
    pub economic_stops: usize,
}

impl CampaignEconomics {
    fn compute(outcomes: &[IntervalOutcome], producer: &ProducerAgent, axis: TimeAxis) -> Self {
        let mut rewards_paid = Money::ZERO;
        let mut energy_shaved = KilowattHours::ZERO;
        let mut production_cost_avoided = Money::ZERO;
        let mut overuse_removed = KilowattHours::ZERO;
        let mut economic_stops = 0;
        for o in outcomes {
            rewards_paid += o.report.total_rewards();
            energy_shaved += o.energy_shaved();
            let hours = o.peak.interval.hours(axis);
            let before =
                producer.cost_of_energy(o.report.normal_use() + o.report.initial_overuse(), hours);
            let after =
                producer.cost_of_energy(o.report.normal_use() + o.report.final_overuse(), hours);
            production_cost_avoided += (before - after).clamp_non_negative();
            overuse_removed +=
                (o.report.initial_overuse() - o.report.final_overuse()).clamp_non_negative();
            if o.stopped_economically() {
                economic_stops += 1;
            }
        }
        let peak_saving = overuse_removed * producer.peak_saving_value();
        CampaignEconomics {
            rewards_paid,
            energy_shaved,
            production_cost_avoided,
            peak_saving,
            net_gain: peak_saving - rewards_paid,
            economic_stops,
        }
    }
}

impl CampaignEconomics {
    /// The zero element — what an empty campaign (or empty fleet) sums
    /// to.
    pub const ZERO: CampaignEconomics = CampaignEconomics {
        rewards_paid: Money::ZERO,
        energy_shaved: KilowattHours::ZERO,
        production_cost_avoided: Money::ZERO,
        peak_saving: Money::ZERO,
        net_gain: Money::ZERO,
        economic_stops: 0,
    };
}

impl std::iter::Sum for CampaignEconomics {
    /// Field-wise aggregation — how a
    /// [`FleetReport`](crate::fleet::FleetReport) rolls per-cell
    /// economics up to the fleet (each cell's savings stay priced by its
    /// own producer).
    fn sum<I: Iterator<Item = CampaignEconomics>>(iter: I) -> CampaignEconomics {
        iter.fold(CampaignEconomics::ZERO, |acc, e| CampaignEconomics {
            rewards_paid: acc.rewards_paid + e.rewards_paid,
            energy_shaved: acc.energy_shaved + e.energy_shaved,
            production_cost_avoided: acc.production_cost_avoided + e.production_cost_avoided,
            peak_saving: acc.peak_saving + e.peak_saving,
            net_gain: acc.net_gain + e.net_gain,
            economic_stops: acc.economic_stops + e.economic_stops,
        })
    }
}

/// Aggregate result of a day- or season-campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// One outcome per negotiated peak, in day order.
    pub outcomes: Vec<IntervalOutcome>,
    /// One record per evaluated day (peaks or not), in order.
    pub days: Vec<DayOutcome>,
    /// Stop-rule accounting against the campaign's producer.
    pub economics: CampaignEconomics,
}

impl CampaignReport {
    /// Number of peaks negotiated.
    pub fn negotiations(&self) -> usize {
        self.outcomes.len()
    }

    /// Days the campaign evaluated (post-warmup), peaks or not.
    pub fn days_evaluated(&self) -> usize {
        self.days.len()
    }

    /// Evaluated days on which no peak warranted negotiation.
    pub fn stable_days(&self) -> usize {
        self.days.iter().filter(|d| d.peaks.is_empty()).count()
    }

    /// Number of negotiations that converged by protocol rules.
    pub fn converged(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.report.converged())
            .count()
    }

    /// True if every negotiated peak converged.
    pub fn all_converged(&self) -> bool {
        self.converged() == self.negotiations()
    }

    /// Total energy shaved across every negotiated peak.
    pub fn total_energy_shaved(&self) -> KilowattHours {
        self.outcomes.iter().map(|o| o.energy_shaved()).sum()
    }

    /// Total reward outlay across every negotiated peak.
    pub fn total_rewards(&self) -> Money {
        self.outcomes.iter().map(|o| o.report.total_rewards()).sum()
    }

    /// Total energy the feedback policy removed from the actual series
    /// entering prediction history (zero for an open-loop campaign).
    pub fn total_feedback(&self) -> KilowattHours {
        self.days.iter().map(|d| d.feedback_delta).sum()
    }

    /// Mean rounds per negotiation (zero for an empty campaign).
    pub fn mean_rounds(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| f64::from(o.report.digest().rounds))
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// The predictor the campaign chose (None if nothing was evaluated).
    pub fn predictor(&self) -> Option<&'static str> {
        self.days.first().map(|d| d.predictor)
    }

    /// Copies the whole report down to `tier` — equal to what running
    /// the campaign with
    /// [`CampaignBuilder::report_tier`] at `tier` produces, which the
    /// tier-equivalence tests pin and the archive writer uses to
    /// downgrade on the way out.
    pub fn at_tier(&self, tier: ReportTier) -> CampaignReport {
        CampaignReport {
            outcomes: self.outcomes.iter().map(|o| o.at_tier(tier)).collect(),
            days: self.days.clone(),
            economics: self.economics,
        }
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} days evaluated, {} peaks negotiated ({} converged), \
             {:.1} kWh shaved, {:.1} rewards paid, {:.2} mean rounds",
            self.days_evaluated(),
            self.negotiations(),
            self.converged(),
            self.total_energy_shaved().value(),
            self.total_rewards().value(),
            self.mean_rounds()
        )?;
        if let Some(name) = self.predictor() {
            writeln!(
                f,
                "  predictor {} | feedback {:.1} kWh | {} economic stops | net gain {:.1}",
                name,
                self.total_feedback().value(),
                self.economics.economic_stops,
                self.economics.net_gain.value()
            )?;
        }
        for o in &self.outcomes {
            writeln!(
                f,
                "  {:<16} {:>2} rounds | overuse {:>5.1}% → {:>5.1}% | shaved {:>7.2} kWh | {}",
                o.label,
                o.report.digest().rounds,
                100.0 * o.report.initial_overuse_fraction(),
                100.0 * o.report.final_overuse_fraction(),
                o.energy_shaved().value(),
                o.report.status()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concession::NegotiationStatus;
    use powergrid::population::PopulationBuilder;
    use powergrid::prediction::SeasonalNaive;
    use powergrid::weather::Season;

    fn homes(n: usize, seed: u64) -> Vec<Household> {
        PopulationBuilder::new().households(n).build(seed)
    }

    fn small_runner(homes: &[Household]) -> CampaignRunner<'_> {
        let horizon = Horizon::new(6, 0, Season::Winter);
        CampaignBuilder::new(homes, &WeatherModel::winter(), &horizon)
            .predictor(FixedPredictor(MovingAverage::new(3)))
            .build()
    }

    #[test]
    fn report_covers_every_detected_peak() {
        let homes = homes(40, 11);
        let report = small_runner(&homes).run();
        let total_peaks: usize = report.days.iter().map(|d| d.peaks.len()).sum();
        assert_eq!(report.negotiations(), total_peaks);
        assert_eq!(report.days_evaluated(), 3, "6-day horizon minus 3 warmup");
        assert!(
            report.negotiations() > 0,
            "winter evenings must peak above 90 % capacity"
        );
        assert!(report.predictor().is_some());
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let homes = homes(40, 11);
        let runner = small_runner(&homes);
        assert_eq!(runner.run(), runner.run_sequential());
    }

    #[test]
    fn campaign_converges_and_shaves_energy() {
        let homes = homes(40, 11);
        let report = small_runner(&homes).run();
        assert!(report.all_converged(), "{report}");
        assert!(report.total_energy_shaved().value() > 0.0, "{report}");
        assert!(report.stable_days() < report.days_evaluated());
        assert_eq!(report.total_feedback(), KilowattHours::ZERO, "open loop");
        let text = report.to_string();
        assert!(text.contains("peaks negotiated"));
        assert!(text.contains("predictor moving-average"));
    }

    #[test]
    fn campaigns_are_deterministic() {
        let homes = homes(40, 11);
        let a = small_runner(&homes).run();
        let b = small_runner(&homes).run();
        assert_eq!(a, b);
    }

    #[test]
    fn predictor_choice_changes_the_plan_not_the_guarantees() {
        let homes = homes(30, 5);
        let horizon = Horizon::new(5, 2, Season::Winter);
        let report = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
            .predictor(FixedPredictor(SeasonalNaive))
            .build()
            .run();
        assert!(report.all_converged(), "{report}");
    }

    #[test]
    fn backtest_policy_picks_a_candidate_and_reports_it() {
        let homes = homes(30, 5);
        let horizon = Horizon::new(8, 0, Season::Winter);
        let report = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
            .warmup_days(4)
            .predictor(BacktestSelected::standard())
            .build()
            .run();
        let chosen = report.predictor().expect("days evaluated");
        let names: Vec<&str> = BacktestSelected::standard()
            .candidates()
            .iter()
            .map(|c| c.name())
            .collect();
        assert!(names.contains(&chosen), "{chosen} not a candidate");
        for day in &report.days {
            assert_eq!(day.predictor, chosen, "one choice per campaign");
        }
    }

    #[test]
    fn closed_loop_reports_feedback_on_negotiated_days() {
        let homes = homes(40, 11);
        let horizon = Horizon::new(6, 0, Season::Winter);
        let report = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
            .predictor(FixedPredictor(MovingAverage::new(3)))
            .feedback(ClosedLoop)
            .build()
            .run();
        assert!(report.total_feedback().value() > 0.0, "{report}");
        for day in &report.days {
            let negotiated: Vec<_> = report
                .outcomes
                .iter()
                .filter(|o| o.day == day.day && o.energy_shaved().value() > 0.0)
                .collect();
            if negotiated.is_empty() {
                assert_eq!(day.feedback_delta, KilowattHours::ZERO);
            } else {
                assert!(day.feedback_delta.value() > 0.0);
            }
        }
    }

    #[test]
    fn economic_stop_status_is_counted() {
        let homes = homes(40, 11);
        let horizon = Horizon::new(6, 0, Season::Winter);
        let report = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
            .predictor(FixedPredictor(MovingAverage::new(3)))
            .stop_rule(MarginalCostStop)
            .build()
            .run();
        let counted = report
            .outcomes
            .iter()
            .filter(|o| {
                o.report.status()
                    == NegotiationStatus::Converged(
                        crate::concession::TerminationReason::EconomicStop,
                    )
            })
            .count();
        assert_eq!(report.economics.economic_stops, counted);
        assert!(report.all_converged(), "economic stops are converged");
    }

    #[test]
    #[should_panic(expected = "leaves nothing to evaluate")]
    fn short_horizon_panics() {
        let homes = homes(5, 1);
        let horizon = Horizon::new(3, 0, Season::Winter);
        let _ = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon).build();
    }

    #[test]
    #[should_panic(expected = "needs households")]
    fn empty_population_panics() {
        let horizon = Horizon::new(6, 0, Season::Winter);
        let _ = CampaignBuilder::new(&[], &WeatherModel::winter(), &horizon).build();
    }

    #[test]
    #[should_panic(expected = "warmup days")]
    fn backtest_selection_needs_two_warmup_days() {
        let homes = homes(5, 1);
        let horizon = Horizon::new(4, 0, Season::Winter);
        let _ = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
            .warmup_days(1)
            .predictor(BacktestSelected::standard())
            .build();
    }
}
