//! Customer categories for the offer method (§3.2.1).
//!
//! "A possible solution to this problem is to divide the customers into
//! different categories (for example according to the number of persons
//! in the household) and treat all customers in a certain category in the
//! same way." This module implements that refinement: customers are
//! bucketed by predicted use and each bucket receives its own `x_max`,
//! while all members of a bucket still get identical terms (the Swedish
//! equal-treatment constraint applies *within* a category).

use crate::concession::{NegotiationStatus, TerminationReason};
use crate::customer_agent::decide_offer;
use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, RoundRecord, Scenario};
use powergrid::units::{Fraction, KilowattHours};
use serde::{Deserialize, Serialize};

/// A consumption category: all customers whose predicted use falls in
/// `[lower, upper)` receive the category's `x_max`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Category {
    /// Inclusive lower bound on predicted use.
    pub lower: KilowattHours,
    /// Exclusive upper bound on predicted use (`f64::INFINITY` allowed).
    pub upper: KilowattHours,
    /// The offer parameter for this category.
    pub x_max: Fraction,
}

impl Category {
    /// True if a customer with this predicted use belongs here.
    pub fn contains(&self, predicted_use: KilowattHours) -> bool {
        predicted_use >= self.lower && predicted_use < self.upper
    }
}

/// Splits the scenario's population into `buckets` equal-width
/// consumption bands and assigns stricter `x_max` values to heavier
/// consumers (they have more flexible load to shed).
///
/// # Panics
///
/// Panics if `buckets` is zero.
pub fn consumption_categories(scenario: &Scenario, buckets: usize) -> Vec<Category> {
    assert!(buckets > 0, "need at least one category");
    let min = scenario
        .customers
        .iter()
        .map(|c| c.predicted_use.value())
        .fold(f64::INFINITY, f64::min);
    let max = scenario
        .customers
        .iter()
        .map(|c| c.predicted_use.value())
        .fold(f64::NEG_INFINITY, f64::max);
    let width = ((max - min) / buckets as f64).max(f64::EPSILON);
    (0..buckets)
        .map(|i| {
            let lower = min + i as f64 * width;
            let upper = if i + 1 == buckets {
                f64::INFINITY
            } else {
                lower + width
            };
            // Heavier consumers get a stricter cap: base x_max minus 5 %
            // per bucket step.
            let x_max = Fraction::clamped(scenario.config.offer_x_max.value() - 0.05 * i as f64);
            Category {
                lower: KilowattHours(lower),
                upper: KilowattHours(upper),
                x_max,
            }
        })
        .collect()
}

/// Splits the population into `buckets` consumption bands and picks each
/// band's `x_max` from `candidates` to maximise the predicted energy
/// reduction of that band — the Utility Agent "optimisation" tactic of
/// §5.1.3 applied per category. The uniform offer is always among the
/// candidates, so the optimized categorization never predicts worse than
/// uniform.
///
/// # Panics
///
/// Panics if `buckets` is zero or `candidates` is empty.
pub fn optimized_categories(
    scenario: &Scenario,
    buckets: usize,
    candidates: &[Fraction],
) -> Vec<Category> {
    assert!(!candidates.is_empty(), "need candidate x_max values");
    let mut categories = consumption_categories(scenario, buckets);
    for category in &mut categories {
        let members: Vec<_> = scenario
            .customers
            .iter()
            .filter(|c| category.contains(c.predicted_use))
            .collect();
        let mut best = (category.x_max, KilowattHours(f64::NEG_INFINITY));
        for &x_max in candidates {
            let reduction: KilowattHours = members
                .iter()
                .map(|c| {
                    let accept = decide_offer(
                        &c.preferences,
                        c.predicted_use,
                        c.allowed_use,
                        x_max,
                        &scenario.tariff,
                    );
                    if accept {
                        (c.predicted_use - c.predicted_use.min(x_max * c.allowed_use))
                            .clamp_non_negative()
                    } else {
                        KilowattHours::ZERO
                    }
                })
                .sum();
            if reduction > best.1 {
                best = (x_max, reduction);
            }
        }
        category.x_max = best.0;
    }
    categories
}

/// Runs the categorized offer method: like §3.2.1's offer, but each
/// category has its own `x_max`.
///
/// # Panics
///
/// Panics if some customer falls outside every category.
pub fn run_categorized_offer(scenario: &Scenario, categories: &[Category]) -> NegotiationReport {
    let n = scenario.customers.len() as u64;
    let mut bids = Vec::with_capacity(scenario.customers.len());
    let mut settlements = Vec::with_capacity(scenario.customers.len());
    let mut predicted_total = KilowattHours::ZERO;

    for customer in &scenario.customers {
        let category = categories
            .iter()
            .find(|cat| cat.contains(customer.predicted_use))
            .unwrap_or_else(|| {
                panic!(
                    "customer with predicted use {} has no category",
                    customer.predicted_use
                )
            });
        let x_max = category.x_max;
        let accept = decide_offer(
            &customer.preferences,
            customer.predicted_use,
            customer.allowed_use,
            x_max,
            &scenario.tariff,
        );
        let (new_use, settlement) = crate::engine::offer_outcome(
            customer.predicted_use,
            customer.allowed_use,
            x_max,
            &scenario.tariff,
            accept,
        );
        predicted_total += new_use;
        bids.push(settlement.cutdown);
        settlements.push(settlement);
    }

    let rounds = vec![RoundRecord {
        round: 1,
        table: None,
        bids,
        predicted_total,
        messages: 2 * n,
    }];
    NegotiationReport::new(
        AnnouncementMethod::Offer,
        scenario.normal_use,
        scenario.initial_total(),
        rounds,
        NegotiationStatus::Converged(TerminationReason::SingleRound),
        settlements,
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;

    #[test]
    fn categories_cover_the_population() {
        let scenario = ScenarioBuilder::random(100, 0.35, 5).build();
        let cats = consumption_categories(&scenario, 3);
        assert_eq!(cats.len(), 3);
        for c in &scenario.customers {
            assert!(
                cats.iter().any(|cat| cat.contains(c.predicted_use)),
                "uncovered customer at {}",
                c.predicted_use
            );
        }
    }

    #[test]
    fn heavier_categories_get_stricter_caps() {
        let scenario = ScenarioBuilder::random(100, 0.35, 5).build();
        let cats = consumption_categories(&scenario, 3);
        for pair in cats.windows(2) {
            assert!(pair[1].x_max <= pair[0].x_max);
        }
    }

    #[test]
    fn categorized_offer_runs_single_round() {
        let scenario = ScenarioBuilder::random(100, 0.35, 5).build();
        let cats = consumption_categories(&scenario, 3);
        let report = run_categorized_offer(&scenario, &cats);
        assert_eq!(report.rounds().len(), 1);
        assert!(report.converged());
        assert!(report.final_overuse() <= report.initial_overuse());
    }

    #[test]
    fn single_category_equals_uniform_offer() {
        let scenario = ScenarioBuilder::random(80, 0.35, 9).build();
        let uniform = scenario.run_with(AnnouncementMethod::Offer);
        let one = vec![Category {
            lower: KilowattHours(0.0),
            upper: KilowattHours(f64::INFINITY),
            x_max: scenario.config.offer_x_max,
        }];
        let categorized = run_categorized_offer(&scenario, &one);
        assert_eq!(categorized.final_bids(), uniform.final_bids());
        assert_eq!(categorized.final_overuse(), uniform.final_overuse());
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn zero_buckets_panics() {
        let scenario = ScenarioBuilder::random(10, 0.35, 1).build();
        let _ = consumption_categories(&scenario, 0);
    }

    #[test]
    fn optimized_categories_never_reduce_less_than_uniform() {
        let scenario = ScenarioBuilder::random(150, 0.35, 13).build();
        let uniform = scenario.run_with(AnnouncementMethod::Offer);
        let candidates: Vec<Fraction> = [0.5, 0.6, 0.7, 0.8, 0.9]
            .iter()
            .map(|&v| Fraction::clamped(v))
            .collect();
        assert!(candidates.contains(&scenario.config.offer_x_max));
        let cats = optimized_categories(&scenario, 3, &candidates);
        let report = run_categorized_offer(&scenario, &cats);
        assert!(
            report.final_overuse() <= uniform.final_overuse() + KilowattHours(1e-9),
            "optimized categories ({}) must not trail uniform ({})",
            report.final_overuse(),
            uniform.final_overuse()
        );
    }

    #[test]
    #[should_panic(expected = "candidate")]
    fn optimizer_needs_candidates() {
        let scenario = ScenarioBuilder::random(10, 0.35, 1).build();
        let _ = optimized_categories(&scenario, 2, &[]);
    }

    #[test]
    fn within_category_treatment_is_equal() {
        // §3.2.1: same kind of customers treated the same — identical
        // profiles must end with identical settlements.
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let cats = consumption_categories(&scenario, 2);
        let report = run_categorized_offer(&scenario, &cats);
        // Customers 0 and 1 are identical (k = 1.0 twins).
        assert_eq!(report.settlements()[0], report.settlements()[1]);
    }
}
