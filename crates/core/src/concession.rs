//! The monotonic concession protocol (Rosenschein & Zlotkin), §3.1.
//!
//! "During a negotiation process all proposed deals must be equally or
//! more acceptable to the counter party than all previous deals proposed."
//! For load balancing this means: announced reward tables never pay less
//! than before, and customer bids never shrink. "The strength of this
//! protocol is that the negotiation process always converges."
//!
//! This module provides the protocol-level bookkeeping and validators;
//! the E9 experiment property-tests them over random populations.

use crate::reward::RewardTable;
use powergrid::units::Fraction;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a negotiation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminationReason {
    /// "(1) the peak is satisfactorily low for the Utility Agent (at most
    /// the maximal allowed overuse)".
    OveruseAcceptable,
    /// "(2) the reward values in the new reward table have (almost)
    /// reached the maximum value the Utility Agent can offer" — detected
    /// as a table step of at most ε.
    RewardSaturated,
    /// All customers stood still (request-for-bids method) — no deal can
    /// improve further.
    NoMovement,
    /// Single-round method (offer) completed.
    SingleRound,
    /// The marginal-cost stop rule fired: the next reward table would
    /// cost more than the expensive production still avoidable, so the
    /// Utility Agent settled on the current table instead of raising.
    EconomicStop,
}

impl fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TerminationReason::OveruseAcceptable => "overuse acceptable",
            TerminationReason::RewardSaturated => "reward table saturated",
            TerminationReason::NoMovement => "no customer movement",
            TerminationReason::SingleRound => "single-round method complete",
            TerminationReason::EconomicStop => "next table uneconomical",
        };
        f.write_str(s)
    }
}

/// Outcome status of a negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegotiationStatus {
    /// The protocol terminated by its own rules.
    Converged(TerminationReason),
    /// The round budget ran out first (should not happen with the §6
    /// rule, whose saturation guarantees convergence).
    MaxRoundsExceeded,
}

impl NegotiationStatus {
    /// True if the protocol terminated by its own rules.
    pub fn is_converged(&self) -> bool {
        matches!(self, NegotiationStatus::Converged(_))
    }
}

impl fmt::Display for NegotiationStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegotiationStatus::Converged(r) => write!(f, "converged ({r})"),
            NegotiationStatus::MaxRoundsExceeded => write!(f, "max rounds exceeded"),
        }
    }
}

/// A violation of the monotonic concession protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ConcessionViolation {
    /// An announcement paid less than its predecessor somewhere.
    AnnouncementRegressed {
        /// Round of the offending announcement (1-based).
        round: usize,
    },
    /// A customer retreated to a smaller cut-down.
    BidRetreated {
        /// Round of the offending bid (1-based).
        round: usize,
        /// Index of the offending customer.
        customer: usize,
        /// The earlier, larger bid.
        previous: Fraction,
        /// The later, smaller bid.
        current: Fraction,
    },
}

impl fmt::Display for ConcessionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcessionViolation::AnnouncementRegressed { round } => {
                write!(
                    f,
                    "announcement in round {round} pays less than its predecessor"
                )
            }
            ConcessionViolation::BidRetreated {
                round,
                customer,
                previous,
                current,
            } => write!(
                f,
                "customer {customer} retreated from {previous} to {current} in round {round}"
            ),
        }
    }
}

impl std::error::Error for ConcessionViolation {}

/// Verifies that a sequence of announcements is monotone (each dominates
/// its predecessor).
///
/// # Errors
///
/// Returns the first [`ConcessionViolation::AnnouncementRegressed`].
pub fn verify_announcements(tables: &[RewardTable]) -> Result<(), ConcessionViolation> {
    for (i, pair) in tables.windows(2).enumerate() {
        if !pair[1].dominates(&pair[0]) {
            return Err(ConcessionViolation::AnnouncementRegressed { round: i + 2 });
        }
    }
    Ok(())
}

/// Verifies that per-customer bid sequences never retreat.
///
/// `rounds[r][c]` is customer `c`'s bid in round `r`; all rounds must
/// have the same number of customers.
///
/// # Errors
///
/// Returns the first [`ConcessionViolation::BidRetreated`].
///
/// # Panics
///
/// Panics if rounds have inconsistent customer counts.
pub fn verify_bids(rounds: &[Vec<Fraction>]) -> Result<(), ConcessionViolation> {
    for (r, pair) in rounds.windows(2).enumerate() {
        assert_eq!(
            pair[0].len(),
            pair[1].len(),
            "bid rounds must cover the same customers"
        );
        for (c, (&prev, &cur)) in pair[0].iter().zip(&pair[1]).enumerate() {
            if cur < prev {
                return Err(ConcessionViolation::BidRetreated {
                    round: r + 2,
                    customer: c,
                    previous: prev,
                    current: cur,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::{RewardFormula, DEFAULT_LEVELS};
    use powergrid::time::Interval;
    use powergrid::units::Money;

    fn fr(v: f64) -> Fraction {
        Fraction::clamped(v)
    }

    fn table(reward_at: f64) -> RewardTable {
        RewardTable::quadratic(
            Interval::new(0, 8),
            &DEFAULT_LEVELS,
            Money(reward_at),
            fr(0.4),
        )
    }

    #[test]
    fn monotone_announcements_pass() {
        let t0 = table(17.0);
        let t1 = t0.updated(&RewardFormula::paper(), 0.3, 2.0);
        let t2 = t1.updated(&RewardFormula::paper(), 0.2, 2.0);
        assert!(verify_announcements(&[t0, t1, t2]).is_ok());
    }

    #[test]
    fn regressed_announcement_detected() {
        let err = verify_announcements(&[table(20.0), table(17.0)]).unwrap_err();
        assert_eq!(err, ConcessionViolation::AnnouncementRegressed { round: 2 });
        assert!(err.to_string().contains("round 2"));
    }

    #[test]
    fn monotone_bids_pass() {
        let rounds = vec![
            vec![fr(0.0), fr(0.2)],
            vec![fr(0.1), fr(0.2)],
            vec![fr(0.1), fr(0.4)],
        ];
        assert!(verify_bids(&rounds).is_ok());
    }

    #[test]
    fn retreating_bid_detected() {
        let rounds = vec![vec![fr(0.3)], vec![fr(0.2)]];
        let err = verify_bids(&rounds).unwrap_err();
        assert!(matches!(
            err,
            ConcessionViolation::BidRetreated {
                round: 2,
                customer: 0,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "same customers")]
    fn inconsistent_rounds_panic() {
        let rounds = vec![vec![fr(0.1)], vec![fr(0.1), fr(0.2)]];
        let _ = verify_bids(&rounds);
    }

    #[test]
    fn status_and_reason_display() {
        let s = NegotiationStatus::Converged(TerminationReason::OveruseAcceptable);
        assert!(s.is_converged());
        assert!(s.to_string().contains("overuse acceptable"));
        assert!(!NegotiationStatus::MaxRoundsExceeded.is_converged());
        assert_eq!(
            TerminationReason::RewardSaturated.to_string(),
            "reward table saturated"
        );
    }

    #[test]
    fn empty_and_singleton_sequences_are_monotone() {
        assert!(verify_announcements(&[]).is_ok());
        assert!(verify_announcements(&[table(17.0)]).is_ok());
        assert!(verify_bids(&[]).is_ok());
        assert!(verify_bids(&[vec![fr(0.2)]]).is_ok());
    }
}
