//! The Customer Agent (CA): negotiation state and decision logic (§5.2,
//! §6.2), plus the interface to its Resource Consumer Agents
//! ([`resource_interface`]).

pub mod resource_interface;

use crate::preferences::CustomerPreferences;
use crate::reward::RewardTable;
use powergrid::tariff::Tariff;
use powergrid::units::{Fraction, KilowattHours, Money};
use serde::{Deserialize, Serialize};

/// The CA's per-negotiation state: its preferences and the bid history
/// the monotonic concession protocol obliges it to respect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomerAgentState {
    preferences: CustomerPreferences,
    previous_bid: Fraction,
    bids: Vec<Fraction>,
}

impl CustomerAgentState {
    /// Starts a fresh negotiation.
    pub fn new(preferences: CustomerPreferences) -> CustomerAgentState {
        CustomerAgentState {
            preferences,
            previous_bid: Fraction::ZERO,
            bids: Vec::new(),
        }
    }

    /// Starts a fresh negotiation in place, keeping the bid-history
    /// buffer's capacity — behaviourally identical to
    /// [`CustomerAgentState::new`].
    pub fn reset(&mut self, preferences: CustomerPreferences) {
        self.preferences = preferences;
        self.previous_bid = Fraction::ZERO;
        self.bids.clear();
    }

    /// The customer's preferences.
    pub fn preferences(&self) -> &CustomerPreferences {
        &self.preferences
    }

    /// The most recent bid (zero before the first response).
    pub fn previous_bid(&self) -> Fraction {
        self.previous_bid
    }

    /// All bids made so far, oldest first.
    pub fn bid_history(&self) -> &[Fraction] {
        &self.bids
    }

    /// Responds to an announced reward table: the highest acceptable
    /// cut-down, never below the previous bid (§3.1, §6.2). Records the
    /// bid in the history.
    pub fn respond(&mut self, table: &RewardTable) -> Fraction {
        let bid = self.preferences.respond(table, self.previous_bid);
        debug_assert!(
            bid >= self.previous_bid,
            "monotonic concession on the CA side"
        );
        self.previous_bid = bid;
        self.bids.push(bid);
        bid
    }
}

/// The CA's yes/no decision for the offer method (§3.2.1).
///
/// Accept when capping consumption at `x_max · allowed_use` is *feasible*
/// (the implied cut-down is within the customer's ceiling) and
/// *worthwhile*: the billing advantage of the lower price (net of the
/// higher-price risk already reflected in capped usage) beats the effort
/// cost of the implied cut-down.
pub fn decide_offer(
    preferences: &CustomerPreferences,
    predicted_use: KilowattHours,
    allowed_use: KilowattHours,
    x_max: Fraction,
    tariff: &Tariff,
) -> bool {
    let limit = x_max * allowed_use;
    // Implied cut-down relative to predicted usage (no cut needed if
    // already below the limit).
    let needed = if predicted_use <= limit || predicted_use.value() <= f64::EPSILON {
        Fraction::ZERO
    } else {
        Fraction::clamped((predicted_use - limit) / predicted_use)
    };
    let Some(effort) = preferences.effort_for_fraction(needed) else {
        return false; // physically infeasible
    };
    let capped_use = predicted_use.min(limit);
    let bill_if_accept = tariff.bill_with_limit(capped_use, limit);
    let bill_if_decline = tariff.bill_normal(predicted_use);
    let saving = bill_if_decline - bill_if_accept;
    saving >= effort
}

/// One step of the request-for-bids method on the CA side (§3.2.2):
/// given the current committed cut-down, either "stand still" or move
/// "one step forward" towards the customer's most profitable level.
///
/// The target is the largest tabled level whose effort cost is covered by
/// the billing advantage of committing to `y_min = (1 − level) · allowed`.
/// Returns the new cut-down (equal to `current` when standing still).
pub fn rfb_step(
    preferences: &CustomerPreferences,
    current: Fraction,
    predicted_use: KilowattHours,
    allowed_use: KilowattHours,
    tariff: &Tariff,
) -> Fraction {
    let mut target = Fraction::ZERO;
    for level in preferences.levels() {
        if level > preferences.max_cutdown() {
            break;
        }
        let y_min = level.complement() * allowed_use;
        let committed_use = predicted_use.min(y_min);
        let saving =
            tariff.bill_normal(predicted_use) - tariff.bill_with_limit(committed_use, y_min);
        let effort = preferences.effort_cost(level);
        if saving >= effort && level > target {
            target = level;
        }
    }
    if target <= current {
        return current; // stand still
    }
    // One step forward: the smallest tabled level above the current bid.
    preferences
        .levels()
        .find(|&lvl| lvl > current)
        .map(|lvl| lvl.min(target))
        .unwrap_or(current)
}

/// Converts a cut-down commitment into the `y_min` the CA reports.
pub fn y_min_for(cutdown: Fraction, allowed_use: KilowattHours) -> KilowattHours {
    cutdown.complement() * allowed_use
}

/// The customer's financial gain from a settled reward-table deal:
/// reward received minus the effort cost of the implemented cut-down.
pub fn settlement_gain(
    preferences: &CustomerPreferences,
    cutdown: Fraction,
    reward: Money,
) -> Money {
    reward - preferences.effort_cost(cutdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::{RewardTable, DEFAULT_LEVELS};
    use powergrid::time::Interval;

    fn fr(v: f64) -> Fraction {
        Fraction::clamped(v)
    }

    fn table(reward_at: f64) -> RewardTable {
        RewardTable::quadratic(
            Interval::new(0, 8),
            &DEFAULT_LEVELS,
            Money(reward_at),
            fr(0.4),
        )
    }

    #[test]
    fn state_tracks_bid_history_monotonically() {
        // Tables evolve via the §6 logistic update (quadratic
        // extrapolation would overpay the 0.5 level and distort bids).
        let formula = crate::reward::RewardFormula::paper();
        let mut ca = CustomerAgentState::new(CustomerPreferences::paper_figure_8());
        let t1 = table(17.0);
        let t2 = t1.updated(&formula, 0.323, 2.0);
        let t3 = t2.updated(&formula, 0.242, 2.0);
        let b1 = ca.respond(&t1);
        assert_eq!(b1, fr(0.2));
        let b2 = ca.respond(&t2);
        assert_eq!(b2, fr(0.4), "round 2: reward(0.4) ≈ 21.76 ≥ 21");
        let b3 = ca.respond(&t3);
        assert_eq!(b3, fr(0.4));
        assert!(b2 >= b1 && b3 >= b2);
        assert_eq!(ca.bid_history().len(), 3);
        assert_eq!(ca.previous_bid(), fr(0.4));
    }

    #[test]
    fn offer_accepted_when_cheap_and_feasible() {
        // Flexible customer, modest cut needed.
        let prefs = CustomerPreferences::from_base_scaled(0.2, fr(0.5));
        let accept = decide_offer(
            &prefs,
            KilowattHours(10.0),
            KilowattHours(10.0),
            fr(0.8),
            &Tariff::default_scheme(),
        );
        assert!(accept);
    }

    #[test]
    fn offer_declined_when_effort_exceeds_saving() {
        // Very reluctant customer: huge thresholds dwarf the bill saving.
        let prefs = CustomerPreferences::from_base_scaled(50.0, fr(0.5));
        let accept = decide_offer(
            &prefs,
            KilowattHours(10.0),
            KilowattHours(10.0),
            fr(0.8),
            &Tariff::default_scheme(),
        );
        assert!(!accept);
    }

    #[test]
    fn offer_declined_when_infeasible() {
        // Ceiling 0.3 but the offer needs a 0.5 cut.
        let prefs = CustomerPreferences::from_base_scaled(0.1, fr(0.3));
        let accept = decide_offer(
            &prefs,
            KilowattHours(10.0),
            KilowattHours(10.0),
            fr(0.5),
            &Tariff::default_scheme(),
        );
        assert!(!accept);
    }

    #[test]
    fn offer_trivially_accepted_when_already_below_limit() {
        let prefs = CustomerPreferences::paper_figure_8();
        // Predicted use far below the capped allowance: zero cut-down
        // needed, lower price is pure gain.
        let accept = decide_offer(
            &prefs,
            KilowattHours(4.0),
            KilowattHours(10.0),
            fr(0.8),
            &Tariff::default_scheme(),
        );
        assert!(accept);
    }

    #[test]
    fn rfb_steps_one_level_at_a_time() {
        let prefs = CustomerPreferences::from_base_scaled(0.3, fr(0.5));
        let tariff = Tariff::default_scheme();
        let (pred, allowed) = (KilowattHours(10.0), KilowattHours(10.0));
        let mut current = Fraction::ZERO;
        let mut steps = Vec::new();
        for _ in 0..8 {
            let next = rfb_step(&prefs, current, pred, allowed, &tariff);
            if next == current {
                break;
            }
            steps.push(next);
            current = next;
        }
        assert!(!steps.is_empty(), "a flexible customer should concede");
        // Strictly one level per step.
        let levels: Vec<Fraction> = prefs.levels().collect();
        let mut expected = Vec::new();
        for lvl in levels {
            if lvl > Fraction::ZERO && lvl <= current {
                expected.push(lvl);
            }
        }
        assert_eq!(steps, expected, "one tabled level per round");
    }

    #[test]
    fn rfb_stands_still_when_target_reached() {
        let prefs = CustomerPreferences::from_base_scaled(10.0, fr(0.5));
        let tariff = Tariff::default_scheme();
        let next = rfb_step(
            &prefs,
            Fraction::ZERO,
            KilowattHours(10.0),
            KilowattHours(10.0),
            &tariff,
        );
        assert_eq!(next, Fraction::ZERO, "reluctant customer never moves");
    }

    #[test]
    fn y_min_computation() {
        assert_eq!(y_min_for(fr(0.3), KilowattHours(10.0)), KilowattHours(7.0));
    }

    #[test]
    fn settlement_gain_is_reward_minus_effort() {
        let prefs = CustomerPreferences::paper_figure_8();
        let gain = settlement_gain(&prefs, fr(0.4), Money(24.8));
        assert!((gain.value() - 3.8).abs() < 1e-9);
    }
}
