//! The CA ↔ Resource Consumer Agent interface (§5.2.2).
//!
//! "Based on information received from its Resource Consumer Agents on
//! the amount of electricity that can be saved in a given time interval,
//! a Customer Agent examines and evaluates the rewards for the different
//! cut-down values" — this module aggregates RCA saving reports into the
//! physical cut-down ceiling the CA negotiates under.

use crate::resource_consumer::ResourceConsumerAgent;
use powergrid::time::Interval;
use powergrid::units::{Fraction, KilowattHours};

/// *Determine needs of resource consumers* (Figure 5): query each RCA for
/// its saving potential over the interval and sum.
pub fn total_saving_potential(rcas: &[ResourceConsumerAgent], interval: Interval) -> KilowattHours {
    rcas.iter().map(|rca| rca.saving_potential(interval)).sum()
}

/// Derives the physical cut-down ceiling from RCA reports: the largest
/// fraction of interval usage the household's devices can actually shed,
/// snapped *down* to the nearest offered level (a CA must not promise a
/// cut-down its resources cannot implement).
pub fn max_cutdown_from_rcas(
    rcas: &[ResourceConsumerAgent],
    interval: Interval,
    levels: &[f64],
) -> Fraction {
    let usage: KilowattHours = rcas.iter().map(|rca| rca.interval_usage(interval)).sum();
    if usage.value() <= f64::EPSILON {
        return Fraction::ZERO;
    }
    let potential = total_saving_potential(rcas, interval);
    let raw = (potential / usage).clamp(0.0, 1.0);
    let mut best = 0.0;
    for &level in levels {
        if level <= raw && level > best {
            best = level;
        }
    }
    Fraction::clamped(best)
}

/// *Determine implementation instructions* (Figure 5): split an agreed
/// cut-down over the RCAs proportionally to their saving potential.
/// Returns per-RCA energy reductions summing to `cutdown × usage`.
pub fn implementation_instructions(
    rcas: &[ResourceConsumerAgent],
    interval: Interval,
    cutdown: Fraction,
) -> Vec<KilowattHours> {
    let usage: KilowattHours = rcas.iter().map(|rca| rca.interval_usage(interval)).sum();
    let target = cutdown * usage;
    let total_potential = total_saving_potential(rcas, interval);
    if total_potential.value() <= f64::EPSILON {
        return vec![KilowattHours::ZERO; rcas.len()];
    }
    rcas.iter()
        .map(|rca| {
            let share = rca.saving_potential(interval) / total_potential;
            share * target
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powergrid::device::{Device, DeviceKind};
    use powergrid::time::TimeAxis;

    fn rcas() -> Vec<ResourceConsumerAgent> {
        let axis = TimeAxis::hourly();
        vec![
            ResourceConsumerAgent::new(Device::typical(DeviceKind::SpaceHeating), &axis, -4.0, 1.0),
            ResourceConsumerAgent::new(Device::typical(DeviceKind::Laundry), &axis, -4.0, 1.0),
            ResourceConsumerAgent::new(Device::typical(DeviceKind::Cooking), &axis, -4.0, 1.0),
        ]
    }

    fn evening() -> Interval {
        Interval::new(17, 21)
    }

    #[test]
    fn potential_is_sum_of_devices() {
        let rcas = rcas();
        let total = total_saving_potential(&rcas, evening());
        let by_hand: KilowattHours = rcas.iter().map(|r| r.saving_potential(evening())).sum();
        assert_eq!(total, by_hand);
        assert!(total.value() > 0.0);
    }

    #[test]
    fn ceiling_snaps_down_to_level() {
        let rcas = rcas();
        let levels = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
        let ceiling = max_cutdown_from_rcas(&rcas, evening(), &levels);
        // It must be a tabled level and not exceed the raw ratio.
        assert!(levels.contains(&ceiling.value()));
        let usage: KilowattHours = rcas.iter().map(|r| r.interval_usage(evening())).sum();
        let raw = total_saving_potential(&rcas, evening()) / usage;
        assert!(ceiling.value() <= raw);
    }

    #[test]
    fn empty_interval_gives_zero_ceiling() {
        let rcas = rcas();
        let ceiling = max_cutdown_from_rcas(&rcas, Interval::new(5, 5), &[0.0, 0.5]);
        assert_eq!(ceiling, Fraction::ZERO);
    }

    #[test]
    fn instructions_sum_to_target() {
        let rcas = rcas();
        let cutdown = Fraction::clamped(0.2);
        let instructions = implementation_instructions(&rcas, evening(), cutdown);
        assert_eq!(instructions.len(), rcas.len());
        let total: KilowattHours = instructions.iter().copied().sum();
        let usage: KilowattHours = rcas.iter().map(|r| r.interval_usage(evening())).sum();
        assert!((total.value() - (cutdown * usage).value()).abs() < 1e-9);
    }

    #[test]
    fn inflexible_devices_get_smaller_share() {
        let rcas = rcas();
        let instructions = implementation_instructions(&rcas, evening(), Fraction::clamped(0.2));
        // Laundry (fully flexible) should carry more than cooking (5 %).
        assert!(instructions[1] > instructions[2]);
    }
}
