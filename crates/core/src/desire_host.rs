//! DESIRE-hosted execution and the Figures 2–5 process hierarchies.
//!
//! The paper's prototype was "(fully) specified and (automatically)
//! implemented in the DESIRE software environment" (§6). This module does
//! the same with our [`desire`] re-implementation:
//!
//! * [`ua_own_process_control_tree`], [`ua_cooperation_tree`],
//!   [`ca_own_process_control_tree`], [`ca_cooperation_tree`] build the
//!   exact process-abstraction hierarchies of Figures 2–5 (rendered by
//!   `examples/process_tree.rs`);
//! * [`run_hosted`] executes a reward-table negotiation *inside* the
//!   DESIRE kernel — the Utility Agent and the Customer Agents are
//!   calculation components exchanging facts over information links —
//!   and is cross-validated against the native synchronous session.

use crate::engine::{CustomerEngine, Effect, Input, Peer, ReportAssembler, UtilityEngine};
use crate::message::Msg;
use crate::reward::RewardTable;
use crate::session::{NegotiationReport, Scenario};
use desire::component::{Component, FnCalculation};
use desire::engine::{FactBase, TruthValue};
use desire::kb::KnowledgeBase;
use desire::link::{Endpoint, InfoLink};
use desire::system::System;
use desire::task_control::TaskControl;
use desire::term::{Atom, Term};
use powergrid::units::{Fraction, Money};
use std::cell::RefCell;
use std::rc::Rc;

fn leaf(name: &str) -> Component {
    Component::primitive(name, KnowledgeBase::new(name))
}

/// Figure 2: process abstraction levels within *own process control* of
/// the UA.
pub fn ua_own_process_control_tree() -> Component {
    let determine = Component::composed(
        "determine_general_negotiation_strategy",
        vec![
            leaf("determine_announcement_method"),
            leaf("determine_bid_acceptance_strategy"),
        ],
        vec![],
        TaskControl::new(),
    );
    Component::composed(
        "own_process_control",
        vec![determine, leaf("evaluate_negotiation_process")],
        vec![],
        TaskControl::new(),
    )
}

/// Figure 3: process abstraction levels within *cooperation management*
/// of the UA.
pub fn ua_cooperation_tree() -> Component {
    let generate_select = Component::composed(
        "determine_announcement_by_generate_and_select",
        vec![
            leaf("generate_announcements"),
            leaf("evaluate_prediction_for_announcements"),
            leaf("select_announcement"),
        ],
        vec![],
        TaskControl::new(),
    );
    let determine_announcement = Component::composed(
        "determine_announcement",
        vec![
            generate_select,
            leaf("determine_announcement_by_statistical_analysis_and_optimisation"),
        ],
        vec![],
        TaskControl::new(),
    );
    let determine_bid_acceptance = Component::composed(
        "determine_bid_acceptance",
        vec![
            leaf("monitor_bid_receipt"),
            leaf("evaluate_bids"),
            leaf("select_bids"),
        ],
        vec![],
        TaskControl::new(),
    );
    Component::composed(
        "cooperation_management",
        vec![determine_announcement, determine_bid_acceptance],
        vec![],
        TaskControl::new(),
    )
}

/// Figure 4: process abstraction levels within *own process control* of
/// the CA.
pub fn ca_own_process_control_tree() -> Component {
    let determine = Component::composed(
        "determine_general_negotiation_strategies",
        vec![
            leaf("determine_general_resource_allocation_strategy"),
            leaf("determine_general_bidding_strategy"),
        ],
        vec![],
        TaskControl::new(),
    );
    let evaluate = Component::composed(
        "evaluate_processes",
        vec![
            leaf("evaluate_resource_allocation_process"),
            leaf("evaluate_bidding_process"),
        ],
        vec![],
        TaskControl::new(),
    );
    Component::composed(
        "own_process_control",
        vec![determine, evaluate],
        vec![],
        TaskControl::new(),
    )
}

/// Figure 5: process abstraction levels within *cooperation management*
/// of the CA.
pub fn ca_cooperation_tree() -> Component {
    let determine_resource_consumers = Component::composed(
        "determine_resource_consumers",
        vec![
            leaf("determine_needs_of_resource_consumers"),
            leaf("determine_implementation_instructions"),
            leaf("interpret_monitoring_results_of_resource_allocation"),
        ],
        vec![],
        TaskControl::new(),
    );
    let choose = Component::composed(
        "choose_appropriate_bid",
        vec![leaf("calculate_expected_gain")],
        vec![],
        TaskControl::new(),
    );
    let determine_bid = Component::composed(
        "determine_bid",
        vec![
            leaf("generate_bids"),
            choose,
            leaf("select_bid"),
            leaf("evaluate_bid"),
            leaf("interpret_monitoring_results_of_bids"),
        ],
        vec![],
        TaskControl::new(),
    );
    Component::composed(
        "cooperation_management",
        vec![determine_resource_consumers, determine_bid],
        vec![],
        TaskControl::new(),
    )
}

/// The full generic agent model (§5) for the UA: the seven generic agent
/// tasks of reference \[4\], assembled by [`desire::agent_model`] with
/// its standard information-flow wiring, refined by the Figure 2/3
/// hierarchies and the §5.1.2 agent-specific tasks.
pub fn utility_agent_tree() -> Component {
    use desire::agent_model::{GenericAgentBuilder, GenericTask};
    GenericAgentBuilder::new("utility_agent")
        .with_task(
            GenericTask::OwnProcessControl,
            ua_own_process_control_tree(),
        )
        .with_task(
            GenericTask::AgentSpecificTask,
            Component::composed(
                "agent_specific_task",
                vec![
                    leaf("determine_predicted_balance_consumption_production"),
                    leaf("evaluate_prediction"),
                ],
                vec![],
                TaskControl::new(),
            ),
        )
        .with_task(GenericTask::CooperationManagement, ua_cooperation_tree())
        .build()
}

/// The full generic agent model (§5) for the CA, assembled like
/// [`utility_agent_tree`] with the Figure 4/5 refinements.
pub fn customer_agent_tree() -> Component {
    use desire::agent_model::{GenericAgentBuilder, GenericTask};
    GenericAgentBuilder::new("customer_agent")
        .with_task(
            GenericTask::OwnProcessControl,
            ca_own_process_control_tree(),
        )
        .with_task(GenericTask::CooperationManagement, ca_cooperation_tree())
        .build()
}

// ---------------------------------------------------------------------
// The negotiation ontology (§4.2: information types)
// ---------------------------------------------------------------------

/// The order-sorted information type (ontology) of the negotiation
/// vocabulary: the predicates flowing over the `announce` and `bids`
/// information links, with their argument sorts. "An information type
/// defines an ontology (lexicon, vocabulary) to describe objects or
/// terms, their sorts, and the relations or functions that can be
/// defined on these objects" (§4.2.1).
pub fn negotiation_info_type() -> desire::info::InfoType {
    desire::info::InfoType::new("load_balancing_negotiation")
        // announce_round(Round)
        .with_predicate("announce_round", &["number"])
        // announced(Round, Cutdown, Reward)
        .with_predicate("announced", &["number", "number", "number"])
        // bid(CustomerIndex, Round, Cutdown)
        .with_predicate("bid", &["number", "number", "number"])
        // negotiation_ended(Round)
        .with_predicate("negotiation_ended", &["number"])
}

// ---------------------------------------------------------------------
// Hosted execution
// ---------------------------------------------------------------------

fn table_to_facts(round: u32, table: &RewardTable) -> Vec<(Atom, TruthValue)> {
    let mut facts = vec![(
        Atom::new("announce_round", vec![Term::number(f64::from(round))]),
        TruthValue::True,
    )];
    for &(cutdown, reward) in table.entries() {
        facts.push((
            Atom::new(
                "announced",
                vec![
                    Term::number(f64::from(round)),
                    Term::number(cutdown.value()),
                    Term::number(reward.value()),
                ],
            ),
            TruthValue::True,
        ));
    }
    facts
}

fn facts_to_table(facts: &FactBase, round: u32, template: &RewardTable) -> Option<RewardTable> {
    let mut entries = Vec::new();
    for (atom, value) in facts.with_predicate(&"announced".into()) {
        if value != TruthValue::True || atom.args.len() != 3 {
            continue;
        }
        let (Some(r), Some(c), Some(reward)) = (
            atom.args[0].as_number(),
            atom.args[1].as_number(),
            atom.args[2].as_number(),
        ) else {
            continue;
        };
        if (r - f64::from(round)).abs() < 1e-9 {
            entries.push((Fraction::clamped(c), Money(reward)));
        }
    }
    if entries.is_empty() {
        None
    } else {
        Some(RewardTable::new(template.interval(), entries))
    }
}

/// Runs the reward-table negotiation inside the DESIRE kernel.
///
/// Convenience wrapper around [`run_hosted_traced`] discarding the
/// execution trace.
///
/// # Panics
///
/// See [`run_hosted_traced`].
pub fn run_hosted(scenario: &Scenario) -> NegotiationReport {
    run_hosted_traced(scenario).0
}

/// Runs the reward-table negotiation inside the DESIRE kernel,
/// returning both the report and the kernel's execution trace (for
/// compositional verification with [`desire::verify`]).
///
/// The composition has two calculation children, `utility_agent` and
/// `customer_agents`, whose interfaces are connected by information
/// links `announce` (UA output → CA input) and `bids` (CA output → UA
/// input). The kernel's macro-rounds carry the negotiation until
/// quiescence.
///
/// # Panics
///
/// Panics if the kernel fails to reach quiescence (cannot happen for
/// terminating negotiations within the task-control round budget).
pub fn run_hosted_traced(scenario: &Scenario) -> (NegotiationReport, desire::trace::Trace) {
    // --- Utility Agent calculation component -------------------------
    // The component is pure fact-translation glue: facts in → engine
    // inputs, engine effects → facts out. All §3.2.3 round logic lives
    // in the shared sans-io engine. The method is pinned to reward
    // tables regardless of `scenario.method`: the hosted composition's
    // ontology and links only model announce/bid traffic, and this
    // function's contract is the paper-prototype strategy.
    let mut engine =
        UtilityEngine::with_method(scenario, crate::methods::AnnouncementMethod::RewardTables);
    let assembler = Rc::new(RefCell::new(ReportAssembler::for_engine(&engine)));
    let ua_assembler = Rc::clone(&assembler);
    let mut started = false;
    let ua_calc = FnCalculation::new("ua_round", move |input: &FactBase| {
        if engine.is_settled() {
            return Vec::new();
        }
        if !started {
            started = true;
            engine.handle(Input::Start);
        } else {
            // Feed this round's bids: bid(index, round, cutdown). Facts
            // persist across kernel rounds; the engine ignores stale and
            // duplicate deliveries, so re-feeding is harmless.
            for (atom, value) in input.with_predicate(&"bid".into()) {
                if value != TruthValue::True || atom.args.len() != 3 {
                    continue;
                }
                let (Some(i), Some(r), Some(c)) = (
                    atom.args[0].as_number(),
                    atom.args[1].as_number(),
                    atom.args[2].as_number(),
                ) else {
                    continue;
                };
                engine.handle(Input::Received {
                    from: Peer::Customer(i as usize),
                    msg: Msg::Bid {
                        round: r as u32,
                        cutdown: Fraction::clamped(c),
                    },
                });
            }
        }
        let mut out = Vec::new();
        let mut announced = None;
        while let Some(effect) = engine.poll_effect() {
            // Settlement is consumed by the assembler below; note it
            // first so the ended-fact still goes out.
            if matches!(effect, Effect::Settled { .. }) {
                out.push((
                    Atom::new(
                        "negotiation_ended",
                        vec![Term::number(f64::from(engine.current_round()))],
                    ),
                    TruthValue::True,
                ));
            }
            match ua_assembler.borrow_mut().observe(effect) {
                // Announcements are broadcast facts: encode each round's
                // table once, not once per customer.
                Some(Effect::Send {
                    msg: Msg::Announce { round, table },
                    ..
                }) if announced != Some(round) => {
                    announced = Some(round);
                    out.extend(table_to_facts(round, &table));
                }
                // Award sends are counted by the assembler; timers are
                // meaningless under the kernel's quiescence semantics.
                _ => {}
            }
        }
        out
    });
    let utility =
        Component::calculation("utility_agent", ua_calc).with_typed_input(negotiation_info_type());

    // --- Customer Agents calculation component ------------------------
    let mut engines: Vec<CustomerEngine> = (0..scenario.customers.len())
        .map(|i| CustomerEngine::for_customer(scenario, i))
        .collect();
    let template = scenario.config.initial_table(scenario.interval);
    let mut responded_round = 0u32;
    let ca_calc = FnCalculation::new("ca_respond", move |input: &FactBase| {
        // Highest announced round not yet answered.
        let mut latest = 0u32;
        for (atom, value) in input.with_predicate(&"announce_round".into()) {
            if value == TruthValue::True && atom.args.len() == 1 {
                if let Some(r) = atom.args[0].as_number() {
                    latest = latest.max(r as u32);
                }
            }
        }
        if latest == 0 || latest <= responded_round {
            return Vec::new();
        }
        let Some(table) = facts_to_table(input, latest, &template) else {
            return Vec::new();
        };
        // One shared snapshot for every customer's announcement.
        let table = std::sync::Arc::new(table);
        responded_round = latest;
        engines
            .iter_mut()
            .enumerate()
            .filter_map(|(i, engine)| {
                engine.handle(Input::Received {
                    from: Peer::Utility,
                    msg: Msg::Announce {
                        round: latest,
                        table: table.clone(),
                    },
                });
                let Some(Effect::Send {
                    msg: Msg::Bid { round, cutdown },
                    ..
                }) = engine.poll_effect()
                else {
                    return None;
                };
                Some((
                    Atom::new(
                        "bid",
                        vec![
                            Term::number(f64::from(i as u32)),
                            Term::number(f64::from(round)),
                            Term::number(cutdown.value()),
                        ],
                    ),
                    TruthValue::True,
                ))
            })
            .collect()
    });
    let customers = Component::calculation("customer_agents", ca_calc)
        .with_typed_input(negotiation_info_type());

    // --- Composition ---------------------------------------------------
    let links = vec![
        InfoLink::new(
            "announce",
            Endpoint::ChildOutput("utility_agent".into()),
            Endpoint::ChildInput("customer_agents".into()),
        )
        .with_mapping("announce_round", "announce_round")
        .with_mapping("announced", "announced"),
        InfoLink::new(
            "bids",
            Endpoint::ChildOutput("customer_agents".into()),
            Endpoint::ChildInput("utility_agent".into()),
        )
        .with_mapping("bid", "bid"),
    ];
    let root = Component::composed(
        "load_balancing_negotiation",
        vec![utility, customers],
        links,
        TaskControl::new().with_max_rounds(500),
    );
    let mut system = System::new(root);
    system
        .run()
        .expect("DESIRE-hosted negotiation reaches quiescence");

    let report = assembler.borrow().clone().finish();
    (report, system.trace().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;
    use desire::render::render_tree;

    #[test]
    fn figure_trees_have_paper_components() {
        let fig2 = render_tree(&ua_own_process_control_tree());
        assert!(fig2.contains("determine_general_negotiation_strategy"));
        assert!(fig2.contains("determine_announcement_method"));
        assert!(fig2.contains("evaluate_negotiation_process"));

        let fig3 = render_tree(&ua_cooperation_tree());
        assert!(fig3.contains("generate_announcements"));
        assert!(fig3.contains("select_announcement"));
        assert!(fig3.contains("monitor_bid_receipt"));

        let fig4 = render_tree(&ca_own_process_control_tree());
        assert!(fig4.contains("determine_general_bidding_strategy"));
        assert!(fig4.contains("evaluate_resource_allocation_process"));

        let fig5 = render_tree(&ca_cooperation_tree());
        assert!(fig5.contains("determine_needs_of_resource_consumers"));
        assert!(fig5.contains("calculate_expected_gain"));
    }

    #[test]
    fn full_agent_trees_cover_generic_tasks() {
        let ua = render_tree(&utility_agent_tree());
        for task in [
            "own_process_control",
            "cooperation_management",
            "agent_interaction_management",
            "world_interaction_management",
            "maintenance_of_agent_information",
            "maintenance_of_world_information",
        ] {
            assert!(ua.contains(task), "UA tree missing {task}");
        }
        let ca = render_tree(&customer_agent_tree());
        assert!(ca.contains("determine_bid"));
    }

    #[test]
    fn hosted_run_matches_native_on_paper_scenario() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let native = scenario.run();
        let hosted = run_hosted(&scenario);
        assert_eq!(hosted.rounds().len(), native.rounds().len());
        assert_eq!(hosted.status(), native.status());
        assert_eq!(hosted.final_bids(), native.final_bids());
        // Reward tables agree to micro precision (fact encoding).
        let native_r3 = native.rounds()[2].table.as_ref().unwrap();
        let hosted_r3 = hosted.rounds()[2].table.as_ref().unwrap();
        for (a, b) in native_r3.entries().iter().zip(hosted_r3.entries()) {
            assert_eq!(a.0, b.0);
            assert!((a.1.value() - b.1.value()).abs() < 2e-3);
        }
    }

    #[test]
    fn negotiation_facts_conform_to_the_ontology() {
        let info = negotiation_info_type();
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let table = scenario.config.initial_table(scenario.interval);
        for (atom, _) in table_to_facts(1, &table) {
            assert!(info.check_atom(&atom).is_ok(), "ill-typed fact {atom}");
        }
        let bid = Atom::new(
            "bid",
            vec![Term::number(0.0), Term::number(1.0), Term::number(0.2)],
        );
        assert!(info.check_atom(&bid).is_ok());
        // Off-vocabulary predicates are rejected.
        assert!(info.check_atom(&Atom::prop("retract")).is_err());
        // Wrong arity is rejected.
        assert!(info
            .check_atom(&Atom::new("bid", vec![Term::number(1.0)]))
            .is_err());
    }

    #[test]
    fn typed_interfaces_reject_ill_typed_external_input() {
        let component = Component::calculation(
            "ua",
            desire::component::FnCalculation::new("noop", |_: &desire::engine::FactBase| {
                Vec::new()
            }),
        )
        .with_typed_input(negotiation_info_type());
        let mut component = component;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            component.input_mut().assert(
                Atom::prop("malicious_injection"),
                desire::engine::TruthValue::True,
            );
        }));
        assert!(
            result.is_err(),
            "off-vocabulary input must be rejected loudly"
        );
    }

    #[test]
    fn hosted_run_pins_reward_tables_regardless_of_scenario_method() {
        use crate::methods::AnnouncementMethod;
        // The hosted composition only models announce/bid traffic, so
        // run_hosted must negotiate with reward tables even when the
        // scenario is configured for another method — not quiesce into
        // an empty degenerate report.
        let scenario = ScenarioBuilder::random(10, 0.35, 1)
            .method(AnnouncementMethod::Offer)
            .build();
        let hosted = run_hosted(&scenario);
        let native = scenario.run_with(AnnouncementMethod::RewardTables);
        assert_eq!(hosted.method(), AnnouncementMethod::RewardTables);
        assert!(!hosted.rounds().is_empty());
        assert_eq!(hosted.final_bids(), native.final_bids());
        assert_eq!(hosted.status(), native.status());
    }

    #[test]
    fn hosted_run_matches_native_on_random_scenarios() {
        for seed in [1, 2] {
            let scenario = ScenarioBuilder::random(15, 0.35, seed).build();
            let native = scenario.run();
            let hosted = run_hosted(&scenario);
            assert_eq!(hosted.final_bids(), native.final_bids(), "seed {seed}");
            assert_eq!(hosted.status(), native.status(), "seed {seed}");
        }
    }
}
