//! Distributed execution: the sans-io engine behind message-passing
//! actors.
//!
//! The paper's vision is "large open distributed industrial systems"
//! (§7): one Utility Agent process negotiating with thousands of Customer
//! Agent processes over a real network. This module adapts the shared
//! [`crate::engine`] state machines to the [`massim`] runtime — latency,
//! loss and response deadlines included. The adapters contain **no
//! protocol logic**: they translate runtime callbacks into engine
//! [`Input`]s and engine [`Effect`]s into runtime calls, so on a perfect
//! network the outcome is identical to [`Scenario::run`] by
//! construction.

use crate::concession::NegotiationStatus;
use crate::engine::{CustomerEngine, Effect, Input, Peer, ReportAssembler, UtilityEngine};
use crate::message::Msg;
use crate::session::{NegotiationReport, RoundRecord, Scenario, Settlement};
use crate::sync_driver::NegotiationScratch;
use massim::agent::{Agent, AgentId, Context, TimerToken};
use massim::clock::SimDuration;
use massim::metrics::Metrics;
use massim::network::NetworkModel;
use massim::runtime::Simulation;
use std::collections::BTreeMap;

/// A Customer Agent process: a [`CustomerEngine`] on the wire.
#[derive(Debug)]
pub struct CustomerProcess {
    engine: CustomerEngine,
}

impl CustomerProcess {
    /// Creates the process around a customer engine.
    pub fn new(engine: CustomerEngine) -> CustomerProcess {
        CustomerProcess { engine }
    }

    /// The award received at the end, if any.
    pub fn awarded(&self) -> Option<&Settlement> {
        self.engine.awarded()
    }

    /// Unwraps the engine — how a hot loop recovers its buffers after a
    /// run (see [`NegotiationScratch::run_distributed_at`]).
    pub fn into_engine(self) -> CustomerEngine {
        self.engine
    }
}

impl Agent<Msg> for CustomerProcess {
    fn on_message(&mut self, from: AgentId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        self.engine.handle(Input::Received {
            from: Peer::Utility,
            msg,
        });
        while let Some(effect) = self.engine.poll_effect() {
            if let Effect::Send {
                to: Peer::Utility,
                msg,
            } = effect
            {
                ctx.send(from, msg);
            }
        }
    }
}

/// The Utility Agent process: a [`UtilityEngine`] on the wire, with the
/// per-round response deadline realised as a runtime timer.
#[derive(Debug)]
pub struct UtilityProcess {
    engine: UtilityEngine,
    assembler: ReportAssembler,
    /// Customer agent ids, scenario order (`Peer::Customer(i)` ↔ `customers[i]`).
    customers: Vec<AgentId>,
    index_of: BTreeMap<AgentId, usize>,
    deadline: SimDuration,
}

impl UtilityProcess {
    /// Creates the UA process for a scenario. `customers` must be the
    /// already-registered Customer Agent ids, in scenario order.
    pub fn new(
        scenario: &Scenario,
        customers: Vec<AgentId>,
        deadline: SimDuration,
    ) -> UtilityProcess {
        UtilityProcess::with_engine_at(
            UtilityEngine::new(scenario),
            customers,
            deadline,
            crate::session::ReportTier::FullTrace,
        )
    }

    /// Creates the UA process around an already-built engine, assembling
    /// the report at `tier` — the constructor the scratch-reusing hot
    /// path uses, so a campaign's distributed negotiations neither
    /// rebuild engines nor retain more than their tier keeps.
    pub fn with_engine_at(
        engine: UtilityEngine,
        customers: Vec<AgentId>,
        deadline: SimDuration,
        tier: crate::session::ReportTier,
    ) -> UtilityProcess {
        let assembler = ReportAssembler::for_engine_at(&engine, tier);
        let index_of = customers
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        UtilityProcess {
            engine,
            assembler,
            customers,
            index_of,
            deadline,
        }
    }

    /// Unwraps the process into its engine and finished report — how the
    /// hot loop recovers the UA engine for reuse after a run.
    pub fn into_engine_and_report(self) -> (UtilityEngine, NegotiationReport) {
        let report = self.assembler.finish();
        (self.engine, report)
    }

    /// The per-round history collected so far.
    pub fn rounds(&self) -> &[RoundRecord] {
        self.assembler.rounds()
    }

    /// The final status once the negotiation is over.
    pub fn status(&self) -> Option<NegotiationStatus> {
        self.assembler.status()
    }

    /// The report assembled so far (complete once [`UtilityProcess::status`]
    /// is `Some`).
    pub fn report(&self) -> NegotiationReport {
        self.assembler.clone().finish()
    }

    fn pump(&mut self, ctx: &mut Context<'_, Msg>) {
        while let Some(effect) = self.engine.poll_effect() {
            // Observations (round records, settlements) move into the
            // assembler; transport effects come back to go on the wire.
            // The simulation drains naturally after settlement so the
            // award messages still reach the customers.
            match self.assembler.observe(effect) {
                Some(Effect::Send {
                    to: Peer::Customer(i),
                    msg,
                }) => ctx.send(self.customers[i], msg),
                Some(Effect::SetTimer { token }) => {
                    ctx.set_timer(TimerToken(token), self.deadline);
                }
                _ => {}
            }
        }
    }
}

impl Agent<Msg> for UtilityProcess {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.engine.handle(Input::Start);
        self.pump(ctx);
    }

    fn on_message(&mut self, from: AgentId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let Some(&i) = self.index_of.get(&from) else {
            return; // not one of our customers
        };
        self.engine.handle(Input::Received {
            from: Peer::Customer(i),
            msg,
        });
        self.pump(ctx);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Msg>) {
        self.engine.handle(Input::TimerFired { token: token.0 });
        self.pump(ctx);
    }
}

/// Result of a distributed run: the report plus runtime metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedOutcome {
    /// The negotiation report (same shape as the synchronous one).
    pub report: NegotiationReport,
    /// Runtime metrics: real message counts, drops, virtual end time.
    pub metrics: Metrics,
    /// Rounds the UA concluded on its response deadline instead of a
    /// full response set — zero on a clean network.
    pub deadline_forced_rounds: u64,
}

/// Runs the scenario's configured announcement method as a distributed
/// simulation.
///
/// `deadline` is the UA's per-round response deadline; it must exceed a
/// network round trip or every round concludes empty. On a perfect
/// network the outcome is identical to [`Scenario::run`] — both drive
/// the same [`crate::engine`].
///
/// # Panics
///
/// Panics if the simulation fails (event-budget exhaustion — impossible
/// for terminating negotiations).
pub fn run_distributed(
    scenario: &Scenario,
    network: NetworkModel,
    seed: u64,
    deadline: SimDuration,
) -> DistributedOutcome {
    let mut sim: Simulation<Msg> = Simulation::with_network(seed, network);
    sim.set_logging(false);
    let customer_ids: Vec<AgentId> = (0..scenario.customers.len())
        .map(|i| {
            sim.add_agent(CustomerProcess::new(CustomerEngine::for_customer(
                scenario, i,
            )))
        })
        .collect();
    let ua = sim.add_agent(UtilityProcess::new(scenario, customer_ids, deadline));
    sim.run().expect("negotiation simulation terminates");

    let process = sim.agent::<UtilityProcess>(ua).expect("UA process exists");
    DistributedOutcome {
        report: process.report(),
        metrics: *sim.metrics(),
        deadline_forced_rounds: process.engine.deadline_forced_rounds(),
    }
}

impl NegotiationScratch {
    /// Runs `method` on `scenario` through the distributed simulation,
    /// reusing the scratch's engines — the distributed twin of
    /// [`NegotiationScratch::run_at`]. The engines are checked out of
    /// the scratch, moved into the simulation's processes, and recovered
    /// afterwards via [`Simulation::take_agent`], so a campaign fanning
    /// thousands of peaks through the network keeps its per-worker
    /// buffers. Byte-identical to [`run_distributed`] for the same
    /// scenario, network, seed and deadline (at
    /// [`ReportTier::FullTrace`](crate::session::ReportTier::FullTrace)).
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (event-budget exhaustion —
    /// impossible for terminating negotiations).
    pub fn run_distributed_at(
        &mut self,
        scenario: &Scenario,
        method: crate::methods::AnnouncementMethod,
        tier: crate::session::ReportTier,
        network: &NetworkModel,
        seed: u64,
        deadline: SimDuration,
    ) -> DistributedOutcome {
        let (utility, customer_engines) = self.checkout(scenario, method);
        let mut sim: Simulation<Msg> = Simulation::with_network(seed, network.clone());
        sim.set_logging(false);
        // Registration order matches `run_distributed` (customers in
        // scenario order, then the UA) so the seeded event interleaving
        // is identical.
        let customer_ids: Vec<AgentId> = customer_engines
            .into_iter()
            .map(|engine| sim.add_agent(CustomerProcess::new(engine)))
            .collect();
        let ua = sim.add_agent(UtilityProcess::with_engine_at(
            utility,
            customer_ids.clone(),
            deadline,
            tier,
        ));
        sim.run().expect("negotiation simulation terminates");

        let metrics = *sim.metrics();
        let customers = customer_ids
            .iter()
            .map(|&id| {
                sim.take_agent::<CustomerProcess>(id)
                    .expect("customer process exists")
                    .into_engine()
            })
            .collect();
        let (utility, report) = sim
            .take_agent::<UtilityProcess>(ua)
            .expect("UA process exists")
            .into_engine_and_report();
        let deadline_forced_rounds = utility.deadline_forced_rounds();
        self.check_in(utility, customers);
        DistributedOutcome {
            report,
            metrics,
            deadline_forced_rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::AnnouncementMethod;
    use crate::session::ScenarioBuilder;

    fn deadline() -> SimDuration {
        SimDuration::from_ticks(100)
    }

    #[test]
    fn perfect_network_matches_synchronous_run() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let sync = scenario.run();
        let dist = run_distributed(&scenario, NetworkModel::perfect(), 1, deadline());
        assert_eq!(dist.report.rounds().len(), sync.rounds().len());
        assert_eq!(dist.report.status(), sync.status());
        assert_eq!(dist.report.final_bids(), sync.final_bids());
        assert_eq!(dist.report.final_overuse(), sync.final_overuse());
    }

    #[test]
    fn perfect_network_matches_on_random_populations() {
        for seed in 0..5 {
            let scenario = ScenarioBuilder::random(40, 0.35, seed).build();
            let sync = scenario.run();
            let dist = run_distributed(&scenario, NetworkModel::perfect(), seed, deadline());
            assert_eq!(
                dist.report.final_bids(),
                sync.final_bids(),
                "seed {seed} diverged"
            );
            assert_eq!(dist.report.status(), sync.status());
        }
    }

    #[test]
    fn other_methods_also_match_their_synchronous_runs() {
        // The engine behind the wire is method-agnostic, so the actors
        // now run all three §3.2 methods, not just reward tables.
        for method in [
            AnnouncementMethod::Offer,
            AnnouncementMethod::RequestForBids,
        ] {
            let scenario = ScenarioBuilder::random(25, 0.35, 11).method(method).build();
            let sync = scenario.run();
            let dist = run_distributed(&scenario, NetworkModel::perfect(), 3, deadline());
            assert_eq!(dist.report.method(), method);
            assert_eq!(dist.report.final_bids(), sync.final_bids(), "{method}");
            assert_eq!(dist.report.status(), sync.status(), "{method}");
            assert_eq!(
                dist.report.total_messages(),
                sync.total_messages(),
                "{method}"
            );
        }
    }

    #[test]
    fn latency_does_not_change_outcome() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let sync = scenario.run();
        let dist = run_distributed(
            &scenario,
            NetworkModel::uniform(1, 30),
            7,
            SimDuration::from_ticks(200),
        );
        assert_eq!(dist.report.final_bids(), sync.final_bids());
    }

    #[test]
    fn lossy_network_still_converges() {
        let scenario = ScenarioBuilder::random(30, 0.35, 3).build();
        let dist = run_distributed(
            &scenario,
            NetworkModel::uniform(1, 10).with_drop_probability(0.2),
            9,
            SimDuration::from_ticks(200),
        );
        assert!(dist.report.converged(), "{}", dist.report);
        assert!(
            dist.metrics.messages_dropped > 0,
            "loss should actually occur"
        );
        // Overuse still improves despite losses.
        assert!(dist.report.final_overuse() <= dist.report.initial_overuse());
    }

    #[test]
    fn customers_receive_awards() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let mut sim: Simulation<Msg> = Simulation::new(1);
        let ids: Vec<AgentId> = (0..scenario.customers.len())
            .map(|i| {
                sim.add_agent(CustomerProcess::new(CustomerEngine::for_customer(
                    &scenario, i,
                )))
            })
            .collect();
        let _ua = sim.add_agent(UtilityProcess::new(&scenario, ids.clone(), deadline()));
        sim.run().unwrap();
        let awarded = ids
            .iter()
            .filter(|&&id| {
                sim.agent::<CustomerProcess>(id)
                    .and_then(|c| c.awarded())
                    .is_some()
            })
            .count();
        assert_eq!(awarded, ids.len(), "every CA gets an award message");
    }

    #[test]
    fn deterministic_given_seed() {
        let scenario = ScenarioBuilder::random(25, 0.35, 4).build();
        let net = NetworkModel::uniform(1, 20).with_drop_probability(0.1);
        let a = run_distributed(&scenario, net.clone(), 42, SimDuration::from_ticks(300));
        let b = run_distributed(&scenario, net, 42, SimDuration::from_ticks(300));
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_distributed_matches_fresh_engines() {
        use crate::session::ReportTier;
        // One scratch across mixed sizes, methods and networks — the
        // checked-out/recovered engines must behave exactly like fresh
        // ones, faults included.
        let mut scratch = NegotiationScratch::new();
        let nets = [
            NetworkModel::perfect(),
            NetworkModel::uniform(1, 15)
                .with_drop_probability(0.15)
                .with_duplicate_probability(0.1)
                .with_reordering(0.2, 20),
        ];
        for &(n, seed) in &[(30usize, 1u64), (12, 2), (30, 1), (45, 3)] {
            for method in AnnouncementMethod::all() {
                let scenario = ScenarioBuilder::random(n, 0.35, seed)
                    .method(method)
                    .build();
                for net in &nets {
                    let fresh =
                        run_distributed(&scenario, net.clone(), seed, SimDuration::from_ticks(300));
                    let reused = scratch.run_distributed_at(
                        &scenario,
                        method,
                        ReportTier::FullTrace,
                        net,
                        seed,
                        SimDuration::from_ticks(300),
                    );
                    assert_eq!(fresh, reused, "n={n} seed={seed} {method}");
                }
            }
        }
    }

    #[test]
    fn lossy_runs_report_deadline_forced_rounds() {
        let scenario = ScenarioBuilder::random(30, 0.35, 3).build();
        let clean = run_distributed(
            &scenario,
            NetworkModel::perfect(),
            9,
            SimDuration::from_ticks(200),
        );
        assert_eq!(clean.deadline_forced_rounds, 0, "clean runs never force");
        let lossy = run_distributed(
            &scenario,
            NetworkModel::uniform(1, 10).with_drop_probability(0.3),
            9,
            SimDuration::from_ticks(200),
        );
        assert!(
            lossy.deadline_forced_rounds > 0,
            "30% loss must force at least one round"
        );
    }
}
