//! Distributed execution: the negotiation as message-passing actors.
//!
//! The paper's vision is "large open distributed industrial systems"
//! (§7): one Utility Agent process negotiating with thousands of Customer
//! Agent processes over a real network. This module runs the
//! reward-table method on the [`massim`] runtime — with latency, loss and
//! response deadlines — and is cross-validated against the synchronous
//! session: on a perfect network both produce identical outcomes.

use crate::concession::NegotiationStatus;
use crate::customer_agent::CustomerAgentState;
use crate::message::Msg;
use crate::methods::AnnouncementMethod;
use crate::reward::{overuse_fraction, predicted_use_with_cutdown};
use crate::session::{NegotiationReport, RoundRecord, Scenario, Settlement};
use crate::utility_agent::cooperation::assess_bids;
use crate::utility_agent::{RewardTableNegotiator, UaDecision};
use massim::agent::{Agent, AgentId, Context, TimerToken};
use massim::clock::SimDuration;
use massim::metrics::Metrics;
use massim::network::NetworkModel;
use massim::runtime::Simulation;
use powergrid::units::{Fraction, KilowattHours};
use std::collections::BTreeMap;

/// A Customer Agent process.
#[derive(Debug)]
pub struct CustomerProcess {
    state: CustomerAgentState,
    awarded: Option<Settlement>,
}

impl CustomerProcess {
    /// Creates the process from per-customer state.
    pub fn new(state: CustomerAgentState) -> CustomerProcess {
        CustomerProcess { state, awarded: None }
    }

    /// The award received at the end, if any.
    pub fn awarded(&self) -> Option<&Settlement> {
        self.awarded.as_ref()
    }
}

impl Agent<Msg> for CustomerProcess {
    fn on_message(&mut self, from: AgentId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::Announce { round, table } => {
                let cutdown = self.state.respond(&table);
                ctx.send(from, Msg::Bid { round, cutdown });
            }
            Msg::Award { round, cutdown, reward } => {
                let _ = round;
                self.awarded = Some(Settlement { cutdown, reward });
            }
            _ => {}
        }
    }
}

/// The Utility Agent process: announces, collects bids until all arrive
/// or the round deadline fires, evaluates, and either awards or announces
/// the next table.
#[derive(Debug)]
pub struct UtilityProcess {
    negotiator: RewardTableNegotiator,
    customers: Vec<AgentId>,
    /// `(predicted_use, allowed_use)` per customer, same order as ids.
    profiles: Vec<(KilowattHours, KilowattHours)>,
    normal_use: KilowattHours,
    deadline: SimDuration,
    received: BTreeMap<AgentId, Fraction>,
    last_bids: Vec<Fraction>,
    concluded_round: u32,
    rounds: Vec<RoundRecord>,
    status: Option<NegotiationStatus>,
}

impl UtilityProcess {
    /// Creates the UA process for a scenario. `customers` must be the
    /// already-registered Customer Agent ids, in scenario order.
    pub fn new(
        scenario: &Scenario,
        customers: Vec<AgentId>,
        deadline: SimDuration,
    ) -> UtilityProcess {
        let profiles = scenario
            .customers
            .iter()
            .map(|c| (c.predicted_use, c.allowed_use))
            .collect::<Vec<_>>();
        let n = profiles.len();
        UtilityProcess {
            negotiator: RewardTableNegotiator::new(scenario.config.clone(), scenario.interval),
            customers,
            profiles,
            normal_use: scenario.normal_use,
            deadline,
            received: BTreeMap::new(),
            last_bids: vec![Fraction::ZERO; n],
            concluded_round: 0,
            rounds: Vec::new(),
            status: None,
        }
    }

    /// The per-round history collected so far.
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// The final status once the negotiation is over.
    pub fn status(&self) -> Option<NegotiationStatus> {
        self.status
    }

    fn announce_current(&mut self, ctx: &mut Context<'_, Msg>) {
        let round = self.negotiator.round();
        let table = self.negotiator.current_table().clone();
        ctx.broadcast(&self.customers, Msg::Announce { round, table });
        ctx.set_timer(TimerToken(u64::from(round)), self.deadline);
    }

    fn conclude_round(&mut self, ctx: &mut Context<'_, Msg>) {
        let round = self.negotiator.round();
        self.concluded_round = round;
        // Missing responders (lost announce or lost bid) keep their last
        // known bid — monotonic concession makes this safe.
        let bids: Vec<Fraction> = self
            .customers
            .iter()
            .zip(&self.last_bids)
            .map(|(id, &last)| self.received.get(id).copied().unwrap_or(last).max(last))
            .collect();
        let table = self.negotiator.current_table().clone();
        let accepted = assess_bids(&table, &bids);
        self.last_bids = accepted.clone();
        self.received.clear();

        let predicted_total: KilowattHours = self
            .profiles
            .iter()
            .zip(&accepted)
            .map(|(&(pred, allowed), &b)| predicted_use_with_cutdown(pred, allowed, b))
            .sum();
        let n = self.customers.len() as u64;
        self.rounds.push(RoundRecord {
            round,
            table: Some(table.clone()),
            bids: accepted.clone(),
            predicted_total,
            messages: 2 * n,
        });
        let overuse = overuse_fraction(predicted_total, self.normal_use);
        match self.negotiator.evaluate(overuse) {
            UaDecision::Converged(reason) => {
                self.status = Some(NegotiationStatus::Converged(reason));
                // No halt: the simulation drains naturally so the award
                // messages still reach the customers.
                for (id, &cutdown) in self.customers.clone().iter().zip(&accepted) {
                    ctx.send(
                        *id,
                        Msg::Award { round, cutdown, reward: table.reward_for(cutdown) },
                    );
                }
            }
            UaDecision::NextTable(_) => {
                self.announce_current(ctx);
            }
        }
    }
}

impl Agent<Msg> for UtilityProcess {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.announce_current(ctx);
    }

    fn on_message(&mut self, from: AgentId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Msg::Bid { round, cutdown } = msg {
            if round != self.negotiator.round() || self.status.is_some() {
                return; // stale bid from a slow or replayed message
            }
            self.received.insert(from, cutdown);
            if self.received.len() == self.customers.len() {
                self.conclude_round(ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Msg>) {
        let round = token.0 as u32;
        if round == self.negotiator.round() && self.concluded_round < round && self.status.is_none()
        {
            self.conclude_round(ctx);
        }
    }
}

/// Result of a distributed run: the report plus runtime metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedOutcome {
    /// The negotiation report (same shape as the synchronous one).
    pub report: NegotiationReport,
    /// Runtime metrics: real message counts, drops, virtual end time.
    pub metrics: Metrics,
}

/// Runs the reward-table negotiation as a distributed simulation.
///
/// `deadline` is the UA's per-round response deadline; it must exceed a
/// network round trip or every round concludes empty. On a perfect
/// network the outcome is identical to [`Scenario::run`].
///
/// # Panics
///
/// Panics if the simulation fails (event-budget exhaustion — impossible
/// for terminating negotiations).
pub fn run_distributed(
    scenario: &Scenario,
    network: NetworkModel,
    seed: u64,
    deadline: SimDuration,
) -> DistributedOutcome {
    let mut sim: Simulation<Msg> = Simulation::with_network(seed, network);
    sim.set_logging(false);
    let customer_ids: Vec<AgentId> = scenario
        .customers
        .iter()
        .map(|c| sim.add_agent(CustomerProcess::new(CustomerAgentState::new(c.preferences.clone()))))
        .collect();
    let ua = sim.add_agent(UtilityProcess::new(scenario, customer_ids, deadline));
    sim.run().expect("negotiation simulation terminates");

    let process = sim.agent::<UtilityProcess>(ua).expect("UA process exists");
    let rounds = process.rounds().to_vec();
    let status = process.status().unwrap_or(NegotiationStatus::MaxRoundsExceeded);
    let final_table = rounds
        .last()
        .and_then(|r| r.table.clone())
        .expect("at least one round concluded");
    let settlements: Vec<Settlement> = rounds
        .last()
        .map(|r| {
            r.bids
                .iter()
                .map(|&cutdown| Settlement { cutdown, reward: final_table.reward_for(cutdown) })
                .collect()
        })
        .unwrap_or_default();
    let n = scenario.customers.len() as u64;
    let report = NegotiationReport::new(
        AnnouncementMethod::RewardTables,
        scenario.normal_use,
        scenario.initial_total(),
        rounds,
        status,
        settlements,
        n,
    );
    DistributedOutcome { report, metrics: *sim.metrics() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;

    fn deadline() -> SimDuration {
        SimDuration::from_ticks(100)
    }

    #[test]
    fn perfect_network_matches_synchronous_run() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let sync = scenario.run();
        let dist = run_distributed(&scenario, NetworkModel::perfect(), 1, deadline());
        assert_eq!(dist.report.rounds().len(), sync.rounds().len());
        assert_eq!(dist.report.status(), sync.status());
        assert_eq!(dist.report.final_bids(), sync.final_bids());
        assert_eq!(dist.report.final_overuse(), sync.final_overuse());
    }

    #[test]
    fn perfect_network_matches_on_random_populations() {
        for seed in 0..5 {
            let scenario = ScenarioBuilder::random(40, 0.35, seed).build();
            let sync = scenario.run();
            let dist = run_distributed(&scenario, NetworkModel::perfect(), seed, deadline());
            assert_eq!(
                dist.report.final_bids(),
                sync.final_bids(),
                "seed {seed} diverged"
            );
            assert_eq!(dist.report.status(), sync.status());
        }
    }

    #[test]
    fn latency_does_not_change_outcome() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let sync = scenario.run();
        let dist = run_distributed(
            &scenario,
            NetworkModel::uniform(1, 30),
            7,
            SimDuration::from_ticks(200),
        );
        assert_eq!(dist.report.final_bids(), sync.final_bids());
    }

    #[test]
    fn lossy_network_still_converges() {
        let scenario = ScenarioBuilder::random(30, 0.35, 3).build();
        let dist = run_distributed(
            &scenario,
            NetworkModel::uniform(1, 10).with_drop_probability(0.2),
            9,
            SimDuration::from_ticks(200),
        );
        assert!(dist.report.converged(), "{}", dist.report);
        assert!(dist.metrics.messages_dropped > 0, "loss should actually occur");
        // Overuse still improves despite losses.
        assert!(dist.report.final_overuse() <= dist.report.initial_overuse());
    }

    #[test]
    fn customers_receive_awards() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let mut sim: Simulation<Msg> = Simulation::new(1);
        let ids: Vec<AgentId> = scenario
            .customers
            .iter()
            .map(|c| {
                sim.add_agent(CustomerProcess::new(CustomerAgentState::new(
                    c.preferences.clone(),
                )))
            })
            .collect();
        let _ua = sim.add_agent(UtilityProcess::new(&scenario, ids.clone(), deadline()));
        sim.run().unwrap();
        let awarded = ids
            .iter()
            .filter(|&&id| {
                sim.agent::<CustomerProcess>(id)
                    .and_then(|c| c.awarded())
                    .is_some()
            })
            .count();
        assert_eq!(awarded, ids.len(), "every CA gets an award message");
    }

    #[test]
    fn deterministic_given_seed() {
        let scenario = ScenarioBuilder::random(25, 0.35, 4).build();
        let net = NetworkModel::uniform(1, 20).with_drop_probability(0.1);
        let a = run_distributed(&scenario, net.clone(), 42, SimDuration::from_ticks(300));
        let b = run_distributed(&scenario, net, 42, SimDuration::from_ticks(300));
        assert_eq!(a, b);
    }
}
