//! The sans-io negotiation engine: one protocol core, every transport.
//!
//! The paper defines a single negotiation protocol (§3.2 announcement
//! methods under monotonic concession), but a system that must run it
//! synchronously (experiments), over a lossy network (production), and
//! inside the DESIRE kernel (verification) cannot afford three
//! implementations. This module holds the protocol as a pair of pure
//! state machines in the *sans-io* style of production Rust protocol
//! crates: no clocks, no sockets, no threads — callers feed [`Input`]s
//! with [`UtilityEngine::handle`] and drain [`Effect`]s with
//! [`UtilityEngine::poll_effect`], and the *driver* decides what a
//! "send" or a "timer" physically means.
//!
//! * [`UtilityEngine`] — the Utility Agent half, parameterized by
//!   [`AnnouncementMethod`]; reuses [`RewardTableNegotiator`] (the §6
//!   reward/concession logic) and
//!   [`assess_bids`](crate::utility_agent::cooperation::assess_bids()).
//! * [`CustomerEngine`] — the Customer Agent half; reuses
//!   [`CustomerAgentState`] and the §3.2.1/§3.2.2 decision functions of
//!   [`crate::customer_agent`].
//!
//! Three drivers ship with the crate:
//!
//! 1. [`SyncDriver`](crate::sync_driver::SyncDriver) — in-process message
//!    pump, used by [`Scenario::run`](crate::session::Scenario::run);
//! 2. the [`massim`] actor adapters in [`crate::distributed`];
//! 3. the DESIRE component glue in [`crate::desire_host`].
//!
//! All three produce their
//! [`NegotiationReport`](crate::session::NegotiationReport) through the shared
//! [`ReportAssembler`], so outcomes agree *by construction* — the
//! property `tests/cross_mode.rs` checks over random scenarios.

use crate::concession::{NegotiationStatus, TerminationReason};
use crate::customer_agent::{decide_offer, rfb_step, y_min_for, CustomerAgentState};
use crate::message::Msg;
use crate::methods::AnnouncementMethod;
use crate::preferences::CustomerPreferences;
use crate::reward::{overuse_fraction, predicted_use_with_cutdown, RewardTable};
use crate::session::{RoundRecord, Scenario, Settlement};
use crate::utility_agent::cooperation::assess_bids_in_place;
use crate::utility_agent::{RewardTableNegotiator, UaDecision, UtilityAgentConfig};
use powergrid::tariff::Tariff;
use powergrid::units::{Fraction, KilowattHours, Money};
use std::collections::VecDeque;
use std::sync::Arc;

/// The counterparty an engine addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// The (single) Utility Agent.
    Utility,
    /// Customer `i`, in scenario order.
    Customer(usize),
}

/// Everything the outside world can tell an engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// Begin the negotiation (Utility side only; customers are reactive).
    Start,
    /// A protocol message arrived from `from`.
    Received {
        /// The message's sender.
        from: Peer,
        /// The message.
        msg: Msg,
    },
    /// A timer set through [`Effect::SetTimer`] fired.
    TimerFired {
        /// The token the timer was set with.
        token: u64,
    },
}

/// Everything an engine can ask the outside world to do.
///
/// `Send` and `SetTimer` are *transport* effects the driver must
/// perform; `RoundComplete` and `Settled` are *observations* it feeds to
/// a [`ReportAssembler`].
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Deliver `msg` to `to`.
    Send {
        /// The recipient.
        to: Peer,
        /// The message.
        msg: Msg,
    },
    /// Arm a round deadline. Drivers without real time (the synchronous
    /// pump, the DESIRE kernel) may ignore this: conclusion then happens
    /// when every response has arrived.
    SetTimer {
        /// Token identifying the round; echoed in [`Input::TimerFired`].
        token: u64,
    },
    /// One negotiation round concluded.
    RoundComplete(RoundRecord),
    /// The negotiation is over.
    Settled {
        /// Protocol outcome.
        status: NegotiationStatus,
        /// Per-customer settlements (the monetary
        /// [`SettlementSummary`](crate::outcome::SettlementSummary) is
        /// derived from these by [`crate::outcome`]).
        settlements: Vec<Settlement>,
    },
}

// ---------------------------------------------------------------------
// Utility side
// ---------------------------------------------------------------------

/// Per-method protocol state of the [`UtilityEngine`].
#[derive(Debug, Clone, PartialEq)]
enum MethodState {
    /// §3.2.3 — driven by the shared [`RewardTableNegotiator`].
    RewardTables { negotiator: RewardTableNegotiator },
    /// §3.2.1 — the yes/no replies received so far (index = customer).
    Offer { accepts: Vec<Option<bool>> },
    /// §3.2.2 — current round number.
    RequestForBids { round: u32 },
}

/// The Utility Agent as a sans-io state machine.
///
/// Feed it [`Input`]s, drain [`Effect`]s; it never blocks, allocates per
/// round only what the round records need, and is identical under every
/// driver. A finished engine can be [`UtilityEngine::reset`] onto the
/// next scenario, reusing its internal buffers — what the
/// [`NegotiationScratch`](crate::sync_driver::NegotiationScratch) hot
/// path does for every peak of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityEngine {
    method: AnnouncementMethod,
    config: UtilityAgentConfig,
    tariff: Tariff,
    /// `(predicted_use, allowed_use)` per customer, scenario order.
    profiles: Vec<(KilowattHours, KilowattHours)>,
    normal_use: KilowattHours,
    initial_total: KilowattHours,
    state: MethodState,
    /// The shared snapshot of the current round's announced reward
    /// table (reward-table method only): taken once in
    /// [`announce_round`](UtilityEngine::handle), reused by every
    /// announcement message *and* the round record — one table clone
    /// per round, total.
    announced: Option<Arc<RewardTable>>,
    /// Responses received for the current round (index = customer).
    responses: Vec<Option<Fraction>>,
    /// Distinct customers heard from this round.
    responded: usize,
    /// Accepted cut-down per customer after the last concluded round
    /// (monotonic-concession floor for missing responders).
    last_bids: Vec<Fraction>,
    rounds_run: u32,
    concluded_round: u32,
    /// Rounds concluded by the response deadline firing rather than by
    /// every customer answering — always zero under the synchronous
    /// driver (where timers never fire) and on a clean network; the
    /// resilience layer reads it as a degradation signal.
    deadline_forced: u64,
    status: Option<NegotiationStatus>,
    effects: VecDeque<Effect>,
}

impl UtilityEngine {
    /// An engine for `scenario`'s configured method.
    pub fn new(scenario: &Scenario) -> UtilityEngine {
        UtilityEngine::with_method(scenario, scenario.method)
    }

    fn initial_state(scenario: &Scenario, method: AnnouncementMethod, n: usize) -> MethodState {
        match method {
            AnnouncementMethod::RewardTables => MethodState::RewardTables {
                negotiator: RewardTableNegotiator::new(scenario.config.clone(), scenario.interval),
            },
            AnnouncementMethod::Offer => MethodState::Offer {
                accepts: vec![None; n],
            },
            AnnouncementMethod::RequestForBids => MethodState::RequestForBids { round: 1 },
        }
    }

    /// An engine for a specific announcement method on `scenario`.
    pub fn with_method(scenario: &Scenario, method: AnnouncementMethod) -> UtilityEngine {
        let profiles: Vec<(KilowattHours, KilowattHours)> = scenario
            .customers
            .iter()
            .map(|c| (c.predicted_use, c.allowed_use))
            .collect();
        let n = profiles.len();
        UtilityEngine {
            method,
            config: scenario.config.clone(),
            tariff: scenario.tariff,
            profiles,
            normal_use: scenario.normal_use,
            initial_total: scenario.initial_total(),
            state: UtilityEngine::initial_state(scenario, method, n),
            announced: None,
            responses: vec![None; n],
            responded: 0,
            last_bids: vec![Fraction::ZERO; n],
            rounds_run: 0,
            concluded_round: 0,
            deadline_forced: 0,
            status: None,
            effects: VecDeque::new(),
        }
    }

    /// Re-aims the engine at a fresh scenario, reusing every internal
    /// buffer (profiles, response table, bid floor, effect queue) —
    /// behaviourally identical to
    /// [`UtilityEngine::with_method(scenario, method)`](UtilityEngine::with_method)
    /// without the per-negotiation allocations.
    pub fn reset(&mut self, scenario: &Scenario, method: AnnouncementMethod) {
        let n = scenario.customers.len();
        self.method = method;
        self.config = scenario.config.clone();
        self.tariff = scenario.tariff;
        self.profiles.clear();
        self.profiles.extend(
            scenario
                .customers
                .iter()
                .map(|c| (c.predicted_use, c.allowed_use)),
        );
        self.normal_use = scenario.normal_use;
        self.initial_total = scenario.initial_total();
        self.state = UtilityEngine::initial_state(scenario, method, n);
        self.announced = None;
        self.responses.clear();
        self.responses.resize(n, None);
        self.responded = 0;
        self.last_bids.clear();
        self.last_bids.resize(n, Fraction::ZERO);
        self.rounds_run = 0;
        self.concluded_round = 0;
        self.deadline_forced = 0;
        self.status = None;
        self.effects.clear();
    }

    /// The announcement method being run.
    pub fn method(&self) -> AnnouncementMethod {
        self.method
    }

    /// The normal-use capacity.
    pub fn normal_use(&self) -> KilowattHours {
        self.normal_use
    }

    /// Total predicted consumption before negotiation.
    pub fn initial_total(&self) -> KilowattHours {
        self.initial_total
    }

    /// The negotiation round currently being collected (1-based).
    pub fn current_round(&self) -> u32 {
        match &self.state {
            MethodState::RewardTables { negotiator } => negotiator.round(),
            MethodState::Offer { .. } => 1,
            MethodState::RequestForBids { round } => *round,
        }
    }

    /// The final status, once settled.
    pub fn status(&self) -> Option<NegotiationStatus> {
        self.status
    }

    /// Rounds this engine concluded because the response deadline fired
    /// before every customer answered (always zero under the
    /// synchronous driver and on a clean network).
    pub fn deadline_forced_rounds(&self) -> u64 {
        self.deadline_forced
    }

    /// True once a [`Effect::Settled`] has been emitted.
    pub fn is_settled(&self) -> bool {
        self.status.is_some()
    }

    /// Feeds one input; resulting effects are queued for
    /// [`UtilityEngine::poll_effect`].
    pub fn handle(&mut self, input: Input) {
        match input {
            Input::Start => self.announce_round(),
            Input::Received {
                from: Peer::Customer(i),
                msg,
            } => self.on_message(i, msg),
            Input::Received {
                from: Peer::Utility,
                ..
            } => {}
            Input::TimerFired { token } => self.on_timer(token),
        }
    }

    /// The next pending effect, if any.
    pub fn poll_effect(&mut self) -> Option<Effect> {
        self.effects.pop_front()
    }

    fn n(&self) -> usize {
        self.profiles.len()
    }

    /// Queues this round's announcements (plus the round deadline).
    ///
    /// The reward-table method snapshots the current table **once** and
    /// shares it across every recipient's message (see
    /// [`Msg::Announce`]) — the announcement fan-out costs one table
    /// clone per round, not one per customer.
    fn announce_round(&mut self) {
        let round = self.current_round();
        self.announced = match &self.state {
            MethodState::RewardTables { negotiator } => {
                Some(Arc::new(negotiator.current_table().clone()))
            }
            _ => None,
        };
        for i in 0..self.n() {
            let msg = match &self.state {
                MethodState::RewardTables { .. } => Msg::Announce {
                    round,
                    table: Arc::clone(self.announced.as_ref().expect("snapshot taken above")),
                },
                MethodState::Offer { .. } => Msg::Offer {
                    x_max: self.config.offer_x_max,
                },
                MethodState::RequestForBids { .. } => Msg::RequestBids { round },
            };
            self.effects.push_back(Effect::Send {
                to: Peer::Customer(i),
                msg,
            });
        }
        self.effects.push_back(Effect::SetTimer {
            token: u64::from(round),
        });
    }

    fn on_message(&mut self, from: usize, msg: Msg) {
        if self.status.is_some() || from >= self.n() {
            return;
        }
        let current = self.current_round();
        let response = match (&self.state, msg) {
            (MethodState::RewardTables { .. }, Msg::Bid { round, cutdown }) if round == current => {
                Some(cutdown)
            }
            (MethodState::Offer { .. }, Msg::OfferReply { accept }) => {
                if let MethodState::Offer { accepts } = &mut self.state {
                    accepts[from] = Some(accept);
                }
                // Tracked separately; mark receipt with a placeholder.
                Some(Fraction::ZERO)
            }
            (MethodState::RequestForBids { .. }, Msg::NeedBid { round, cutdown, .. })
                if round == current =>
            {
                Some(cutdown)
            }
            _ => None, // stale round or off-protocol message
        };
        if let Some(cutdown) = response {
            if self.responses[from].is_none() {
                self.responded += 1;
            }
            self.responses[from] = Some(cutdown);
            if self.responded == self.n() {
                self.conclude_round();
            }
        }
    }

    fn on_timer(&mut self, token: u64) {
        let round = token as u32;
        if round == self.current_round() && self.concluded_round < round && self.status.is_none() {
            self.deadline_forced += 1;
            self.conclude_round();
        }
    }

    /// Closes the current round with whatever responses arrived (missing
    /// responders keep their last known bid — monotonic concession makes
    /// this safe) and either settles or opens the next round.
    fn conclude_round(&mut self) {
        let round = self.current_round();
        self.concluded_round = round;
        self.rounds_run += 1;
        match &self.state {
            MethodState::RewardTables { .. } => self.conclude_reward_tables(round),
            MethodState::Offer { .. } => self.conclude_offer(),
            MethodState::RequestForBids { .. } => self.conclude_request_for_bids(round),
        }
        for slot in &mut self.responses {
            *slot = None;
        }
        self.responded = 0;
    }

    fn predicted_total(&self, bids: &[Fraction]) -> KilowattHours {
        self.profiles
            .iter()
            .zip(bids)
            .map(|(&(pred, allowed), &b)| predicted_use_with_cutdown(pred, allowed, b))
            .sum()
    }

    fn push_round(&mut self, record: RoundRecord) {
        self.effects.push_back(Effect::RoundComplete(record));
    }

    /// Emits the award messages and the settled effect.
    fn settle(
        &mut self,
        round: u32,
        status: NegotiationStatus,
        settlements: Vec<Settlement>,
        announce_awards: bool,
    ) {
        if announce_awards {
            for (i, s) in settlements.iter().enumerate() {
                self.effects.push_back(Effect::Send {
                    to: Peer::Customer(i),
                    msg: Msg::Award {
                        round,
                        cutdown: s.cutdown,
                        reward: s.reward,
                    },
                });
            }
        }
        self.status = Some(status);
        self.effects.push_back(Effect::Settled {
            status,
            settlements,
        });
    }

    fn conclude_reward_tables(&mut self, round: u32) {
        let n = self.n();
        // The round record shares the announce-time snapshot — the one
        // table clone this round ever makes.
        let table = self
            .announced
            .clone()
            .expect("a reward-table round is announced before it concludes");
        let mut accepted: Vec<Fraction> = Vec::with_capacity(n);
        accepted.extend(
            self.last_bids
                .iter()
                .enumerate()
                .map(|(i, &last)| self.responses[i].unwrap_or(last).max(last)),
        );
        assess_bids_in_place(&table, &mut accepted);
        self.last_bids.copy_from_slice(&accepted);
        let predicted_total = self.predicted_total(&accepted);
        let overuse = overuse_fraction(predicted_total, self.normal_use);
        let MethodState::RewardTables { negotiator } = &mut self.state else {
            unreachable!("reward-table conclusion in reward-table state");
        };
        debug_assert_eq!(
            negotiator.current_table(),
            &*table,
            "the announced snapshot is this round's table"
        );
        // The economic context for the marginal-cost stop rule: the
        // energy still predicted above capacity, and a pricer for the
        // candidate table at the bids customers have already committed
        // to (a floor on its cost — §3.1 bids never retreat).
        let remaining = (predicted_total - self.normal_use).clamp_non_negative();
        let decision = negotiator.evaluate_with_outlay(overuse, remaining, |t| {
            accepted.iter().map(|&b| t.reward_for(b)).sum()
        });
        // The settlement payload comes off the same owned vector that
        // then moves into the round record — the accepted bids are
        // never cloned.
        let settlements = match decision {
            UaDecision::Converged(_) => Some(
                accepted
                    .iter()
                    .map(|&cutdown| Settlement {
                        cutdown,
                        reward: table.reward_for(cutdown),
                    })
                    .collect::<Vec<Settlement>>(),
            ),
            UaDecision::NextTable => None,
        };
        self.push_round(RoundRecord {
            round,
            table: Some(table),
            bids: accepted,
            predicted_total,
            messages: 2 * n as u64,
        });
        match decision {
            UaDecision::Converged(reason) => {
                // The round budget is a backstop, not a protocol rule:
                // report it as such when the peak is still too high.
                let status = if self.rounds_run >= self.config.max_rounds
                    && overuse > self.config.max_allowed_overuse
                {
                    NegotiationStatus::MaxRoundsExceeded
                } else {
                    NegotiationStatus::Converged(reason)
                };
                self.settle(round, status, settlements.expect("built above"), true);
            }
            UaDecision::NextTable => self.announce_round(),
        }
    }

    fn conclude_offer(&mut self) {
        let MethodState::Offer { accepts } = &self.state else {
            unreachable!("offer conclusion in offer state");
        };
        let x_max = self.config.offer_x_max;
        let n = self.n();
        let mut bids = Vec::with_capacity(n);
        let mut settlements = Vec::with_capacity(n);
        let mut predicted_total = KilowattHours::ZERO;
        for (i, &(predicted, allowed)) in self.profiles.iter().enumerate() {
            // A reply lost in transit counts as a decline.
            let accept = accepts[i].unwrap_or(false);
            let (new_use, settlement) =
                offer_outcome(predicted, allowed, x_max, &self.tariff, accept);
            predicted_total += new_use;
            bids.push(settlement.cutdown);
            settlements.push(settlement);
        }
        self.last_bids.copy_from_slice(&bids);
        self.push_round(RoundRecord {
            round: 1,
            table: None,
            bids,
            predicted_total,
            messages: 2 * n as u64,
        });
        self.settle(
            1,
            NegotiationStatus::Converged(TerminationReason::SingleRound),
            settlements,
            false,
        );
    }

    fn conclude_request_for_bids(&mut self, round: u32) {
        let n = self.n();
        let mut moved = false;
        let mut bids: Vec<Fraction> = Vec::with_capacity(n);
        bids.extend(self.last_bids.iter().enumerate().map(|(i, &last)| {
            let next = self.responses[i].unwrap_or(last).max(last);
            if next > last {
                moved = true;
            }
            next
        }));
        self.last_bids.copy_from_slice(&bids);
        let predicted_total = self.predicted_total(&bids);
        let overuse = overuse_fraction(predicted_total, self.normal_use);
        let status = if overuse <= self.config.max_allowed_overuse {
            Some(NegotiationStatus::Converged(
                TerminationReason::OveruseAcceptable,
            ))
        } else if !moved && self.responded == n {
            // Unanimous stand-still, with every customer heard from. A
            // missing reply (lost on the network, deadline fired) is
            // indistinguishable from a concession we did not see, so a
            // round with absent responders must not terminate the
            // negotiation; the round budget bounds persistent loss.
            Some(NegotiationStatus::Converged(TerminationReason::NoMovement))
        } else if round >= self.config.max_rounds {
            Some(NegotiationStatus::MaxRoundsExceeded)
        } else {
            None
        };
        // Settlements come off the bid vector before it moves into the
        // round record — no clone of the bids.
        let settlements = status.map(|_| {
            self.profiles
                .iter()
                .zip(&bids)
                .map(|(&(predicted, allowed), &cutdown)| {
                    if cutdown == Fraction::ZERO {
                        return Settlement {
                            cutdown,
                            reward: Money::ZERO,
                        };
                    }
                    let y_min = cutdown.complement() * allowed;
                    let committed_use = predicted.min(y_min);
                    let reward = self.tariff.bill_normal(predicted)
                        - self.tariff.bill_with_limit(committed_use, y_min);
                    Settlement {
                        cutdown,
                        reward: reward.max(Money::ZERO),
                    }
                })
                .collect::<Vec<Settlement>>()
        });
        self.push_round(RoundRecord {
            round,
            table: None,
            bids,
            predicted_total,
            messages: 2 * n as u64,
        });
        match status {
            Some(status) => {
                self.settle(round, status, settlements.expect("built above"), true);
            }
            None => {
                let MethodState::RequestForBids { round } = &mut self.state else {
                    unreachable!();
                };
                *round += 1;
                self.announce_round();
            }
        }
    }
}

/// The §3.2.1 outcome of one customer's accept/decline on an offer
/// capping cheap-rate consumption at `x_max · allowed_use`: the new
/// predicted use and the settlement (implied cut-down plus billing
/// advantage). The single source of this arithmetic — the engine's
/// offer method and the categorized-offer refinement
/// ([`crate::category`]) both call it.
pub(crate) fn offer_outcome(
    predicted: KilowattHours,
    allowed: KilowattHours,
    x_max: Fraction,
    tariff: &Tariff,
    accept: bool,
) -> (KilowattHours, Settlement) {
    if !accept {
        return (
            predicted,
            Settlement {
                cutdown: Fraction::ZERO,
                reward: Money::ZERO,
            },
        );
    }
    let limit = x_max * allowed;
    let new_use = predicted.min(limit);
    // The implied cut-down, as a fraction of predicted use.
    let cutdown = if predicted.value() > f64::EPSILON {
        Fraction::clamped((predicted - new_use) / predicted)
    } else {
        Fraction::ZERO
    };
    // The "reward" is the billing advantage the utility grants.
    let reward = tariff.bill_normal(predicted) - tariff.bill_with_limit(new_use, limit);
    (
        new_use,
        Settlement {
            cutdown,
            reward: reward.max(Money::ZERO),
        },
    )
}

// ---------------------------------------------------------------------
// Customer side
// ---------------------------------------------------------------------

/// One Customer Agent as a sans-io state machine: reacts to
/// announcements, offers and bid requests with the §5.2/§6.2 decision
/// logic, and records its award.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomerEngine {
    state: CustomerAgentState,
    predicted_use: KilowattHours,
    allowed_use: KilowattHours,
    tariff: Tariff,
    /// Current request-for-bids commitment.
    commitment: Fraction,
    /// Highest request-for-bids round already answered (0 = none). A
    /// duplicated or reordered-stale `RequestBids` (at-least-once,
    /// out-of-order transport) must re-send the same commitment, not
    /// concede another step.
    answered_rfb_round: u32,
    /// Highest reward-table round already answered (0 = none), for the
    /// same idempotency under duplicated or stale announcements.
    answered_announce_round: u32,
    awarded: Option<Settlement>,
    effects: VecDeque<Effect>,
}

impl CustomerEngine {
    /// An engine for customer `index` of `scenario`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn for_customer(scenario: &Scenario, index: usize) -> CustomerEngine {
        let c = &scenario.customers[index];
        CustomerEngine::new(
            c.preferences.clone(),
            c.predicted_use,
            c.allowed_use,
            scenario.tariff,
        )
    }

    /// An engine from explicit parts.
    pub fn new(
        preferences: CustomerPreferences,
        predicted_use: KilowattHours,
        allowed_use: KilowattHours,
        tariff: Tariff,
    ) -> CustomerEngine {
        CustomerEngine {
            state: CustomerAgentState::new(preferences),
            predicted_use,
            allowed_use,
            tariff,
            commitment: Fraction::ZERO,
            answered_rfb_round: 0,
            answered_announce_round: 0,
            awarded: None,
            effects: VecDeque::new(),
        }
    }

    /// Re-aims the engine at customer `index` of a fresh scenario,
    /// reusing its buffers (bid history, effect queue) — behaviourally
    /// identical to [`CustomerEngine::for_customer`] without the
    /// per-negotiation allocations.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn reset_for(&mut self, scenario: &Scenario, index: usize) {
        let c = &scenario.customers[index];
        self.state.reset(c.preferences.clone());
        self.predicted_use = c.predicted_use;
        self.allowed_use = c.allowed_use;
        self.tariff = scenario.tariff;
        self.commitment = Fraction::ZERO;
        self.answered_rfb_round = 0;
        self.answered_announce_round = 0;
        self.awarded = None;
        self.effects.clear();
    }

    /// The settlement awarded at the end, if any arrived.
    pub fn awarded(&self) -> Option<&Settlement> {
        self.awarded.as_ref()
    }

    /// All reward-table bids made so far, oldest first.
    pub fn bid_history(&self) -> &[Fraction] {
        self.state.bid_history()
    }

    /// Feeds one input; resulting effects are queued for
    /// [`CustomerEngine::poll_effect`].
    pub fn handle(&mut self, input: Input) {
        let Input::Received { msg, .. } = input else {
            return; // customers are purely reactive
        };
        match msg {
            Msg::Announce { round, table } => {
                // A duplicated *or reordered-stale* announcement
                // (`round ≤` the newest answered) re-sends the recorded
                // bid without conceding again or growing the history —
                // and never regresses the high-water mark, or a later
                // duplicate of the newest round would re-concede too.
                let cutdown = if round <= self.answered_announce_round {
                    self.state.previous_bid()
                } else {
                    self.state.respond(&table)
                };
                self.answered_announce_round = self.answered_announce_round.max(round);
                self.effects.push_back(Effect::Send {
                    to: Peer::Utility,
                    msg: Msg::Bid { round, cutdown },
                });
            }
            Msg::Offer { x_max } => {
                let accept = decide_offer(
                    self.state.preferences(),
                    self.predicted_use,
                    self.allowed_use,
                    x_max,
                    &self.tariff,
                );
                self.effects.push_back(Effect::Send {
                    to: Peer::Utility,
                    msg: Msg::OfferReply { accept },
                });
            }
            Msg::RequestBids { round } => {
                // Same duplicate/stale guard as for announcements: only
                // a round *beyond* the newest answered one concedes.
                let next = if round <= self.answered_rfb_round {
                    self.commitment
                } else {
                    rfb_step(
                        self.state.preferences(),
                        self.commitment,
                        self.predicted_use,
                        self.allowed_use,
                        &self.tariff,
                    )
                };
                self.answered_rfb_round = self.answered_rfb_round.max(round);
                self.commitment = next;
                self.effects.push_back(Effect::Send {
                    to: Peer::Utility,
                    msg: Msg::NeedBid {
                        round,
                        y_min: y_min_for(next, self.allowed_use),
                        cutdown: next,
                    },
                });
            }
            Msg::Award {
                cutdown, reward, ..
            } => {
                self.awarded = Some(Settlement { cutdown, reward });
            }
            _ => {}
        }
    }

    /// The next pending effect, if any.
    pub fn poll_effect(&mut self) -> Option<Effect> {
        self.effects.pop_front()
    }
}

// ---------------------------------------------------------------------
// Shared report assembly
// ---------------------------------------------------------------------

/// Folds the observation effects of a [`UtilityEngine`] into the
/// [`NegotiationReport`](crate::session::NegotiationReport) every driver
/// returns — the tier-aware sink of the reporting subsystem.
///
/// Drivers pass each polled effect through [`ReportAssembler::observe`],
/// which **consumes** the observation effects (round records and
/// settlements move straight into the report — they are never cloned)
/// and hands the transport effects back for the driver to perform.
/// Call [`ReportAssembler::finish`] once the engine settles.
///
/// The assembler enforces the
/// [`ReportTier`](crate::session::ReportTier) *at the source*: every
/// observation is folded into the running
/// [`RoundDigest`](crate::session::RoundDigest), but a round record is
/// only *stored* at [`ReportTier::FullTrace`] and settlements only at
/// [`ReportTier::Settlement`] or above — below those tiers the payloads
/// are dropped on the spot, so a `Settlement`-tier season never
/// accumulates per-round storage at all (pinned by the `report_tiers`
/// bench experiment's allocation guard).
///
/// [`ReportTier`]: crate::session::ReportTier
/// [`ReportTier::FullTrace`]: crate::session::ReportTier::FullTrace
/// [`ReportTier::Settlement`]: crate::session::ReportTier::Settlement
#[derive(Debug, Clone)]
pub struct ReportAssembler {
    method: AnnouncementMethod,
    normal_use: KilowattHours,
    initial_total: KilowattHours,
    tier: crate::session::ReportTier,
    digest: crate::session::RoundDigest,
    rounds: Vec<RoundRecord>,
    outcome: Option<(NegotiationStatus, Vec<Settlement>)>,
    award_messages: u64,
}

impl ReportAssembler {
    /// A full-trace assembler for the given engine (the historical
    /// behaviour — every round record is kept).
    pub fn for_engine(engine: &UtilityEngine) -> ReportAssembler {
        ReportAssembler::for_engine_at(engine, crate::session::ReportTier::FullTrace)
    }

    /// An assembler for the given engine retaining only what `tier`
    /// keeps.
    pub fn for_engine_at(
        engine: &UtilityEngine,
        tier: crate::session::ReportTier,
    ) -> ReportAssembler {
        let initial_total = engine.initial_total();
        ReportAssembler {
            method: engine.method(),
            normal_use: engine.normal_use(),
            initial_total,
            tier,
            digest: crate::session::RoundDigest::starting_at(initial_total),
            rounds: Vec::new(),
            outcome: None,
            award_messages: 0,
        }
    }

    /// Records what an effect means for the report (awards count as the
    /// extra confirmation messages of §3.2.3).
    ///
    /// Observation effects ([`Effect::RoundComplete`],
    /// [`Effect::Settled`]) are consumed — their payloads are folded
    /// into the digest, then moved into the report under construction
    /// or dropped, as the tier dictates. Transport effects come back
    /// out for the driver to perform.
    pub fn observe(&mut self, effect: Effect) -> Option<Effect> {
        match effect {
            Effect::RoundComplete(record) => {
                self.digest.observe_round(&record);
                if self.tier.keeps_rounds() {
                    self.rounds.push(record);
                }
                None
            }
            Effect::Settled {
                status,
                settlements,
            } => {
                self.digest.observe_settlements(&settlements);
                let settlements = if self.tier.keeps_settlements() {
                    settlements
                } else {
                    Vec::new()
                };
                self.outcome = Some((status, settlements));
                None
            }
            effect => {
                if let Effect::Send {
                    msg: Msg::Award { .. },
                    ..
                } = &effect
                {
                    self.award_messages += 1;
                }
                Some(effect)
            }
        }
    }

    /// The tier this assembler retains.
    pub fn tier(&self) -> crate::session::ReportTier {
        self.tier
    }

    /// The rounds observed so far (empty below
    /// [`ReportTier::FullTrace`](crate::session::ReportTier::FullTrace);
    /// the count is in the digest).
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// The settled status, if the engine finished.
    pub fn status(&self) -> Option<NegotiationStatus> {
        self.outcome.as_ref().map(|(s, _)| *s)
    }

    /// Builds the report. An unsettled engine (e.g. a driver stopping a
    /// simulation early) reports [`NegotiationStatus::MaxRoundsExceeded`]
    /// with empty settlements.
    pub fn finish(self) -> crate::session::NegotiationReport {
        let (status, settlements) = self
            .outcome
            .unwrap_or((NegotiationStatus::MaxRoundsExceeded, Vec::new()));
        crate::session::NegotiationReport::from_parts(
            self.method,
            self.normal_use,
            self.initial_total,
            self.tier,
            self.digest,
            self.rounds,
            status,
            settlements,
            self.award_messages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;

    #[test]
    fn utility_engine_starts_by_announcing_to_everyone() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let mut ua = UtilityEngine::new(&scenario);
        ua.handle(Input::Start);
        let mut sends = 0;
        let mut timers = 0;
        while let Some(e) = ua.poll_effect() {
            match e {
                Effect::Send {
                    to: Peer::Customer(_),
                    msg: Msg::Announce { round: 1, .. },
                } => {
                    sends += 1;
                }
                Effect::SetTimer { token: 1 } => timers += 1,
                other => panic!("unexpected effect {other:?}"),
            }
        }
        assert_eq!(sends, 20);
        assert_eq!(timers, 1);
    }

    #[test]
    fn customer_engine_bids_from_the_announced_table() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let table = Arc::new(scenario.config.initial_table(scenario.interval));
        let mut ca = CustomerEngine::for_customer(&scenario, 0);
        ca.handle(Input::Received {
            from: Peer::Utility,
            msg: Msg::Announce { round: 1, table },
        });
        let Some(Effect::Send {
            to: Peer::Utility,
            msg: Msg::Bid { round: 1, cutdown },
        }) = ca.poll_effect()
        else {
            panic!("expected a bid");
        };
        // The Figure 8/9 customer opens at 0.2.
        assert_eq!(cutdown, Fraction::clamped(0.2));
        assert!(ca.poll_effect().is_none());
    }

    #[test]
    fn duplicated_announcements_are_idempotent() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let table = Arc::new(scenario.config.initial_table(scenario.interval));
        let mut ca = CustomerEngine::for_customer(&scenario, 0);
        for _ in 0..3 {
            ca.handle(Input::Received {
                from: Peer::Utility,
                msg: Msg::Announce {
                    round: 1,
                    table: Arc::clone(&table),
                },
            });
        }
        // Three replies, all identical, and a single history entry.
        let mut bids = Vec::new();
        while let Some(Effect::Send {
            msg: Msg::Bid { round: 1, cutdown },
            ..
        }) = ca.poll_effect()
        {
            bids.push(cutdown);
        }
        assert_eq!(bids, vec![Fraction::clamped(0.2); 3]);
        assert_eq!(ca.bid_history(), &[Fraction::clamped(0.2)]);
    }

    #[test]
    fn duplicated_bid_requests_do_not_double_concede() {
        let scenario = ScenarioBuilder::random(6, 0.35, 3)
            .method(AnnouncementMethod::RequestForBids)
            .build();
        let mut ca = CustomerEngine::for_customer(&scenario, 0);
        let reply = |ca: &mut CustomerEngine| {
            ca.handle(Input::Received {
                from: Peer::Utility,
                msg: Msg::RequestBids { round: 1 },
            });
            let Some(Effect::Send {
                msg: Msg::NeedBid { cutdown, .. },
                ..
            }) = ca.poll_effect()
            else {
                panic!("expected a NeedBid reply");
            };
            cutdown
        };
        let first = reply(&mut ca);
        let duplicate = reply(&mut ca);
        assert_eq!(
            first, duplicate,
            "a duplicated round-1 request must not advance the concession"
        );
        // The next *round* still concedes as usual.
        ca.handle(Input::Received {
            from: Peer::Utility,
            msg: Msg::RequestBids { round: 2 },
        });
        let Some(Effect::Send {
            msg: Msg::NeedBid { cutdown, .. },
            ..
        }) = ca.poll_effect()
        else {
            panic!("expected a round-2 reply");
        };
        assert!(cutdown >= first, "monotonic concession across rounds");
    }

    #[test]
    fn reordered_stale_requests_do_not_concede_or_regress_the_guard() {
        // A reordered network can deliver an *old* round's message after
        // a newer round was already answered. The customer must neither
        // concede on the stale message nor let it regress the
        // duplicate guard (or a later copy of the newest round would
        // re-concede).
        let scenario = ScenarioBuilder::random(6, 0.35, 3)
            .method(AnnouncementMethod::RequestForBids)
            .build();
        let mut ca = CustomerEngine::for_customer(&scenario, 0);
        let reply = |ca: &mut CustomerEngine, round: u32| {
            ca.handle(Input::Received {
                from: Peer::Utility,
                msg: Msg::RequestBids { round },
            });
            let Some(Effect::Send {
                msg: Msg::NeedBid { cutdown, .. },
                ..
            }) = ca.poll_effect()
            else {
                panic!("expected a NeedBid reply");
            };
            cutdown
        };
        let r1 = reply(&mut ca, 1);
        let r2 = reply(&mut ca, 2);
        // Held-back copy of round 1 arrives late: idempotent reply,
        // commitment untouched.
        let stale = reply(&mut ca, 1);
        assert_eq!(stale, r2, "stale request must re-send the commitment");
        // And a duplicate of round 2 afterwards is still idempotent.
        let dup2 = reply(&mut ca, 2);
        assert_eq!(dup2, r2, "guard must not regress to the stale round");
        let _ = r1;

        // Same for reward-table announcements.
        let rt = ScenarioBuilder::paper_figure_6().build();
        let table = Arc::new(rt.config.initial_table(rt.interval));
        let mut ca = CustomerEngine::for_customer(&rt, 0);
        let announce = |ca: &mut CustomerEngine, round: u32| {
            ca.handle(Input::Received {
                from: Peer::Utility,
                msg: Msg::Announce {
                    round,
                    table: Arc::clone(&table),
                },
            });
            let Some(Effect::Send {
                msg: Msg::Bid { cutdown, .. },
                ..
            }) = ca.poll_effect()
            else {
                panic!("expected a bid");
            };
            cutdown
        };
        let b1 = announce(&mut ca, 1);
        let b2 = announce(&mut ca, 2);
        let stale = announce(&mut ca, 1);
        assert_eq!(stale, b2, "stale announcement re-sends the current bid");
        assert_eq!(
            ca.bid_history().len(),
            2,
            "no history entry for stale rounds"
        );
        let dup = announce(&mut ca, 2);
        assert_eq!(dup, b2);
        assert_eq!(ca.bid_history().len(), 2);
        let _ = b1;
    }

    #[test]
    fn duplicated_bids_at_the_utility_are_idempotent() {
        let scenario = ScenarioBuilder::random(4, 0.35, 1).build();
        let mut ua = UtilityEngine::new(&scenario);
        ua.handle(Input::Start);
        while ua.poll_effect().is_some() {}
        // Customer 0's bid arrives three times (retransmitting network);
        // the round must conclude only once all four *distinct* customers
        // are heard, and with the same bids a single delivery produces.
        for _ in 0..3 {
            ua.handle(Input::Received {
                from: Peer::Customer(0),
                msg: Msg::Bid {
                    round: 1,
                    cutdown: Fraction::clamped(0.2),
                },
            });
        }
        assert!(
            std::iter::from_fn(|| ua.poll_effect()).all(|e| !matches!(e, Effect::RoundComplete(_))),
            "duplicates of one customer must not conclude the round"
        );
        for i in 1..4 {
            ua.handle(Input::Received {
                from: Peer::Customer(i),
                msg: Msg::Bid {
                    round: 1,
                    cutdown: Fraction::ZERO,
                },
            });
        }
        let mut rounds = 0;
        let mut first_bid = None;
        while let Some(e) = ua.poll_effect() {
            if let Effect::RoundComplete(r) = e {
                rounds += 1;
                first_bid = Some(r.bids[0]);
            }
        }
        assert_eq!(rounds, 1, "exactly one conclusion despite duplicates");
        assert_eq!(first_bid, Some(Fraction::clamped(0.2)));
    }

    #[test]
    fn stale_bids_are_ignored() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let mut ua = UtilityEngine::new(&scenario);
        ua.handle(Input::Start);
        while ua.poll_effect().is_some() {}
        ua.handle(Input::Received {
            from: Peer::Customer(0),
            msg: Msg::Bid {
                round: 7,
                cutdown: Fraction::clamped(0.4),
            },
        });
        assert!(
            ua.poll_effect().is_none(),
            "bid for a future round must be dropped"
        );
        assert_eq!(ua.current_round(), 1);
    }

    #[test]
    fn timer_concludes_a_round_with_missing_bids() {
        let scenario = ScenarioBuilder::random(4, 0.35, 1).build();
        let mut ua = UtilityEngine::new(&scenario);
        ua.handle(Input::Start);
        while ua.poll_effect().is_some() {}
        // Only customer 0 answers; the deadline closes the round anyway.
        ua.handle(Input::Received {
            from: Peer::Customer(0),
            msg: Msg::Bid {
                round: 1,
                cutdown: Fraction::clamped(0.2),
            },
        });
        ua.handle(Input::TimerFired { token: 1 });
        let mut saw_round = None;
        while let Some(e) = ua.poll_effect() {
            if let Effect::RoundComplete(r) = e {
                saw_round = Some(r);
            }
        }
        let r = saw_round.expect("round concluded on deadline");
        assert_eq!(r.round, 1);
        assert_eq!(r.bids[0], Fraction::clamped(0.2));
        // Missing responders keep their previous (zero) bid.
        assert!(r.bids[1..].iter().all(|&b| b == Fraction::ZERO));
        // A late timer for the same round is a no-op.
        ua.handle(Input::TimerFired { token: 1 });
        let leftover: Vec<Effect> = std::iter::from_fn(|| ua.poll_effect()).collect();
        assert!(
            leftover
                .iter()
                .all(|e| !matches!(e, Effect::RoundComplete(_))),
            "duplicate deadline must not re-conclude: {leftover:?}"
        );
    }

    #[test]
    fn rfb_round_with_no_responses_is_not_stand_still() {
        // Every reply of a round lost on the network: the deadline fires
        // with an empty inbox. That must open the next round, not
        // terminate as Converged(NoMovement).
        let scenario = ScenarioBuilder::random(5, 0.35, 2)
            .method(AnnouncementMethod::RequestForBids)
            .build();
        let mut ua = UtilityEngine::new(&scenario);
        ua.handle(Input::Start);
        while ua.poll_effect().is_some() {}
        ua.handle(Input::TimerFired { token: 1 });
        assert!(
            !ua.is_settled(),
            "an all-lost round must not settle the negotiation"
        );
        assert_eq!(ua.current_round(), 2, "the next round opens instead");
        let mut requested = 0;
        while let Some(e) = ua.poll_effect() {
            if let Effect::Send {
                msg: Msg::RequestBids { round: 2 },
                ..
            } = e
            {
                requested += 1;
            }
        }
        assert_eq!(requested, 5, "round 2 re-requests bids from everyone");
        // A partial round — one stand-still reply, four lost — is not
        // unanimity either: the lost replies may have been concessions.
        ua.handle(Input::Received {
            from: Peer::Customer(0),
            msg: Msg::NeedBid {
                round: 2,
                y_min: KilowattHours(1.0),
                cutdown: Fraction::ZERO,
            },
        });
        ua.handle(Input::TimerFired { token: 2 });
        assert!(
            !ua.is_settled(),
            "a partially-heard stand-still round must not settle as NoMovement"
        );
        // Whereas a round where everyone replied with their old bid IS
        // unanimous stand-still (here: nobody has conceded past zero
        // because nobody was asked anything they would accept — use a
        // fresh engine whose customers all reply with cutdown zero).
        let mut ua2 = UtilityEngine::new(&scenario);
        ua2.handle(Input::Start);
        while ua2.poll_effect().is_some() {}
        for i in 0..5 {
            ua2.handle(Input::Received {
                from: Peer::Customer(i),
                msg: Msg::NeedBid {
                    round: 1,
                    y_min: KilowattHours(1.0),
                    cutdown: Fraction::ZERO,
                },
            });
        }
        assert!(
            ua2.is_settled(),
            "unanimous stand-still with replies settles"
        );
        assert_eq!(
            ua2.status(),
            Some(NegotiationStatus::Converged(TerminationReason::NoMovement))
        );
    }

    #[test]
    fn offer_engine_settles_in_one_round_without_awards() {
        let scenario = ScenarioBuilder::paper_figure_6()
            .method(AnnouncementMethod::Offer)
            .build();
        let mut ua = UtilityEngine::new(&scenario);
        let mut assembler = ReportAssembler::for_engine(&ua);
        ua.handle(Input::Start);
        let mut offers = Vec::new();
        while let Some(e) = ua.poll_effect() {
            if let Some(Effect::Send {
                to: Peer::Customer(i),
                msg: Msg::Offer { .. },
            }) = assembler.observe(e)
            {
                offers.push(i);
            }
        }
        assert_eq!(offers.len(), 20);
        for i in 0..20 {
            ua.handle(Input::Received {
                from: Peer::Customer(i),
                msg: Msg::OfferReply { accept: false },
            });
        }
        while let Some(e) = ua.poll_effect() {
            let _ = assembler.observe(e);
        }
        let report = assembler.finish();
        assert_eq!(report.rounds().len(), 1);
        assert_eq!(
            report.total_messages(),
            40,
            "no award confirmations for the offer method"
        );
        assert!(report.converged());
    }
}
