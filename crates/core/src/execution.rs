//! Execution modes: *how* a campaign's negotiations actually run.
//!
//! The paper's §3.2 promise is that the same negotiation runs unchanged
//! whether the agents share a process or talk over an unreliable
//! network. [`ExecutionMode`] makes that a per-campaign (and per-fleet)
//! switch:
//!
//! * [`ExecutionMode::Sync`] — the in-process
//!   [`NegotiationScratch`](crate::sync_driver::NegotiationScratch)
//!   pump; fastest, timers never fire.
//! * [`ExecutionMode::Distributed`] — every peak's negotiation runs as
//!   a seeded [`massim`] simulation over a [`NetworkModel`]: one
//!   Utility Agent process, one Customer Agent process per customer,
//!   per-round response deadlines realised as runtime timers. On a
//!   *clean* (perfect) network the resulting reports are byte-identical
//!   to the sync path — the byte-identity suites pin this — while a
//!   *faulty* network degrades them in measurable ways that the
//!   [`resilience`](crate::resilience) layer quantifies.
//!
//! Each peak draws its own deterministic RNG seed from the mode's base
//! seed and the peak's (day, index) position via [`peak_seed`], so
//! results are independent of worker scheduling: a fleet, a parallel
//! campaign and a sequential campaign all see the same per-peak seeds.
//!
//! [`NetworkTraffic`] is the side channel for what the network *did*
//! (wire counts, drops, duplicates, deadline-forced rounds). It rides
//! next to the untouched report types instead of inside them, so report
//! equality, golden snapshots and the archive codec are unaffected by
//! the execution mode.

use crate::distributed::DistributedOutcome;
use massim::clock::SimDuration;
use massim::network::NetworkModel;
use std::fmt;
use std::ops::{Add, AddAssign};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default per-round response deadline for distributed negotiations, in
/// ticks: comfortably above a round trip on every stock network model
/// (max latency tens of ticks, reorder hold-backs included), so clean
/// and lightly-faulty runs never conclude a round early by accident.
pub const DEFAULT_DEADLINE_TICKS: u64 = 300;

/// How a campaign runs each peak's negotiation.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ExecutionMode {
    /// In-process synchronous pump — no simulated network, no timers.
    #[default]
    Sync,
    /// Each negotiation is a seeded discrete-event simulation over
    /// `network`, with the UA's per-round response deadline realised as
    /// a runtime timer.
    Distributed {
        /// The network between the UA and its customers.
        network: NetworkModel,
        /// Per-round response deadline; must exceed a network round
        /// trip or every round concludes empty.
        deadline: SimDuration,
        /// Base RNG seed; each peak derives its own via [`peak_seed`].
        seed: u64,
    },
}

impl ExecutionMode {
    /// The synchronous in-process mode (the default).
    pub fn sync() -> ExecutionMode {
        ExecutionMode::Sync
    }

    /// Distributed execution over a *perfect* network: real message
    /// passing, zero faults — reports byte-identical to [`sync`](ExecutionMode::sync).
    pub fn distributed_clean() -> ExecutionMode {
        ExecutionMode::distributed_faulty(NetworkModel::perfect())
    }

    /// Distributed execution over the given (typically faulty) network,
    /// with the default deadline and a zero base seed. Chain
    /// [`with_seed`](ExecutionMode::with_seed) /
    /// [`with_deadline`](ExecutionMode::with_deadline) to adjust.
    pub fn distributed_faulty(network: NetworkModel) -> ExecutionMode {
        ExecutionMode::Distributed {
            network,
            deadline: SimDuration::from_ticks(DEFAULT_DEADLINE_TICKS),
            seed: 0,
        }
    }

    /// Sets the base RNG seed (no effect on [`ExecutionMode::Sync`],
    /// which draws no randomness).
    pub fn with_seed(mut self, base: u64) -> ExecutionMode {
        if let ExecutionMode::Distributed { seed, .. } = &mut self {
            *seed = base;
        }
        self
    }

    /// Sets the per-round response deadline (no effect on
    /// [`ExecutionMode::Sync`], which has no timers).
    pub fn with_deadline(mut self, ticks: u64) -> ExecutionMode {
        if let ExecutionMode::Distributed { deadline, .. } = &mut self {
            *deadline = SimDuration::from_ticks(ticks);
        }
        self
    }

    /// True for either distributed variant.
    pub fn is_distributed(&self) -> bool {
        matches!(self, ExecutionMode::Distributed { .. })
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionMode::Sync => write!(f, "sync"),
            ExecutionMode::Distributed { network, .. } => {
                if *network == NetworkModel::perfect() {
                    write!(f, "distributed-clean")
                } else {
                    write!(f, "distributed-faulty")
                }
            }
        }
    }
}

/// The deterministic per-peak seed: a splitmix64-style mix of the
/// mode's base seed with the peak's `(day, index)` position in its
/// campaign. Depends only on *where* the peak is, never on which worker
/// negotiates it or in what order, so parallel, sequential and
/// fleet-scheduled runs of the same plan are identical.
pub fn peak_seed(base: u64, day: u64, peak: u64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    mix(base ^ mix(day.wrapping_mul(0x0165_667b_19e3_779f) ^ mix(peak)))
}

/// What the network did across some set of distributed negotiations —
/// the side channel next to the (unchanged) negotiation reports.
///
/// All-zero for [`ExecutionMode::Sync`] seasons, where no simulated
/// network exists. Sums are order-independent, so the figures are
/// deterministic under any worker scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkTraffic {
    /// Negotiations that ran distributed.
    pub negotiations: u64,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages actually delivered (duplicates delivered twice).
    pub messages_delivered: u64,
    /// Messages the network dropped (loss and outages).
    pub messages_dropped: u64,
    /// Messages the network duplicated.
    pub messages_duplicated: u64,
    /// Deadline timers that fired.
    pub timers_fired: u64,
    /// Rounds the UA concluded on its deadline instead of a full
    /// response set — zero on a clean network.
    pub deadline_forced_rounds: u64,
}

impl NetworkTraffic {
    /// The all-zero traffic record.
    pub const ZERO: NetworkTraffic = NetworkTraffic {
        negotiations: 0,
        messages_sent: 0,
        messages_delivered: 0,
        messages_dropped: 0,
        messages_duplicated: 0,
        timers_fired: 0,
        deadline_forced_rounds: 0,
    };

    /// Folds one distributed negotiation's outcome in.
    pub fn record(&mut self, outcome: &DistributedOutcome) {
        self.negotiations += 1;
        self.messages_sent += outcome.metrics.messages_sent;
        self.messages_delivered += outcome.metrics.messages_delivered;
        self.messages_dropped += outcome.metrics.messages_dropped;
        self.messages_duplicated += outcome.metrics.messages_duplicated;
        self.timers_fired += outcome.metrics.timers_fired;
        self.deadline_forced_rounds += outcome.deadline_forced_rounds;
    }
}

impl AddAssign for NetworkTraffic {
    fn add_assign(&mut self, rhs: NetworkTraffic) {
        self.negotiations += rhs.negotiations;
        self.messages_sent += rhs.messages_sent;
        self.messages_delivered += rhs.messages_delivered;
        self.messages_dropped += rhs.messages_dropped;
        self.messages_duplicated += rhs.messages_duplicated;
        self.timers_fired += rhs.timers_fired;
        self.deadline_forced_rounds += rhs.deadline_forced_rounds;
    }
}

impl Add for NetworkTraffic {
    type Output = NetworkTraffic;
    fn add(mut self, rhs: NetworkTraffic) -> NetworkTraffic {
        self += rhs;
        self
    }
}

impl fmt::Display for NetworkTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} negotiations, {} sent / {} delivered ({} dropped, {} duplicated), \
             {} timers, {} deadline-forced rounds",
            self.negotiations,
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.messages_duplicated,
            self.timers_fired,
            self.deadline_forced_rounds,
        )
    }
}

/// Shared accumulation cell for [`NetworkTraffic`]: plain atomic
/// counters so concurrent workers negotiating one day's peaks can fold
/// their outcomes in through a shared reference. Relaxed ordering is
/// enough — the day's fan-out joins before anyone reads, and sums are
/// order-independent.
#[derive(Debug, Default)]
pub(crate) struct TrafficCell {
    negotiations: AtomicU64,
    messages_sent: AtomicU64,
    messages_delivered: AtomicU64,
    messages_dropped: AtomicU64,
    messages_duplicated: AtomicU64,
    timers_fired: AtomicU64,
    deadline_forced_rounds: AtomicU64,
}

impl TrafficCell {
    /// Folds one distributed negotiation's outcome in.
    pub(crate) fn record(&self, outcome: &DistributedOutcome) {
        let add = |cell: &AtomicU64, v: u64| {
            cell.fetch_add(v, Ordering::Relaxed);
        };
        add(&self.negotiations, 1);
        add(&self.messages_sent, outcome.metrics.messages_sent);
        add(&self.messages_delivered, outcome.metrics.messages_delivered);
        add(&self.messages_dropped, outcome.metrics.messages_dropped);
        add(
            &self.messages_duplicated,
            outcome.metrics.messages_duplicated,
        );
        add(&self.timers_fired, outcome.metrics.timers_fired);
        add(&self.deadline_forced_rounds, outcome.deadline_forced_rounds);
    }

    /// The accumulated traffic.
    pub(crate) fn snapshot(&self) -> NetworkTraffic {
        let get = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        NetworkTraffic {
            negotiations: get(&self.negotiations),
            messages_sent: get(&self.messages_sent),
            messages_delivered: get(&self.messages_delivered),
            messages_dropped: get(&self.messages_dropped),
            messages_duplicated: get(&self.messages_duplicated),
            timers_fired: get(&self.timers_fired),
            deadline_forced_rounds: get(&self.deadline_forced_rounds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sync() {
        assert_eq!(ExecutionMode::default(), ExecutionMode::Sync);
        assert!(!ExecutionMode::Sync.is_distributed());
        assert!(ExecutionMode::distributed_clean().is_distributed());
    }

    #[test]
    fn builders_compose() {
        let mode = ExecutionMode::distributed_faulty(
            NetworkModel::uniform(1, 10).with_drop_probability(0.1),
        )
        .with_seed(42)
        .with_deadline(500);
        let ExecutionMode::Distributed { deadline, seed, .. } = mode else {
            panic!("distributed mode expected");
        };
        assert_eq!(seed, 42);
        assert_eq!(deadline, SimDuration::from_ticks(500));
        // Seed/deadline setters are inert on Sync.
        assert_eq!(
            ExecutionMode::sync().with_seed(9).with_deadline(9),
            ExecutionMode::Sync
        );
    }

    #[test]
    fn display_names_the_mode() {
        assert_eq!(ExecutionMode::sync().to_string(), "sync");
        assert_eq!(
            ExecutionMode::distributed_clean().to_string(),
            "distributed-clean"
        );
        assert_eq!(
            ExecutionMode::distributed_faulty(
                NetworkModel::uniform(1, 5).with_drop_probability(0.2)
            )
            .to_string(),
            "distributed-faulty"
        );
    }

    #[test]
    fn peak_seeds_are_position_determined_and_spread() {
        assert_eq!(peak_seed(7, 3, 1), peak_seed(7, 3, 1));
        // Any coordinate change moves the seed.
        let base = peak_seed(7, 3, 1);
        assert_ne!(base, peak_seed(8, 3, 1));
        assert_ne!(base, peak_seed(7, 4, 1));
        assert_ne!(base, peak_seed(7, 3, 2));
        // No collisions across a season-sized grid of positions.
        let mut seen = std::collections::BTreeSet::new();
        for day in 0..100u64 {
            for peak in 0..24u64 {
                assert!(seen.insert(peak_seed(1234, day, peak)));
            }
        }
    }

    #[test]
    fn traffic_sums() {
        let a = NetworkTraffic {
            negotiations: 1,
            messages_sent: 10,
            messages_delivered: 9,
            messages_dropped: 1,
            messages_duplicated: 0,
            timers_fired: 2,
            deadline_forced_rounds: 1,
        };
        let total = a + a;
        assert_eq!(total.negotiations, 2);
        assert_eq!(total.messages_sent, 20);
        assert_eq!(NetworkTraffic::ZERO + a, a);
        assert!(a.to_string().contains("10 sent / 9 delivered"));
    }
}
