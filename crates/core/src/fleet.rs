//! Fleet execution: many campaigns, one shared worker pool.
//!
//! A season-long study is not one campaign but many — one per grid
//! cell, feeder or household cohort — and while the *days* inside a
//! campaign are sequential (closed-loop feedback makes day *d* depend
//! on day *d − 1*), the campaigns themselves are embarrassingly
//! parallel. Running them back to back wastes cores whenever one
//! campaign's day carries fewer peaks than the machine has threads;
//! running each on its own pool oversubscribes the machine N-fold.
//!
//! [`FleetRunner`] does neither: it drives every campaign through the
//! [`CampaignProgress`] stepping API and schedules *individual peak
//! negotiations* from all campaigns onto **one** shared
//! [`WorkerPool`]. While campaign A is between days (its feedback
//! bookkeeping is sequential), the workers drain campaign B's peaks —
//! cores never idle as long as any cell anywhere has negotiable work.
//! The echo of the paper's DESIRE lineage is deliberate: many
//! independent agent societies, one execution substrate.
//!
//! Scheduling is nondeterministic; results never are. Every
//! negotiation is a pure function of its (cell, day, peak) coordinate,
//! and each cell's feedback is applied in strict day order from the
//! stored results, so [`FleetRunner::run`] is **byte-identical** to
//! [`FleetRunner::run_sequential`] for any thread count and any cell
//! mix (pinned by proptests in `tests/fleet_properties.rs`).
//!
//! # Example
//!
//! ```
//! use loadbal_core::campaign::{CampaignBuilder, ClosedLoop, FixedPredictor};
//! use loadbal_core::fleet::FleetRunner;
//! use powergrid::calendar::Horizon;
//! use powergrid::population::PopulationBuilder;
//! use powergrid::prediction::MovingAverage;
//! use powergrid::weather::{Season, WeatherModel};
//!
//! // Two grid cells over one shared population model.
//! let north = PopulationBuilder::new().households(40).build(1);
//! let south = PopulationBuilder::new().households(30).build(2);
//! let horizon = Horizon::new(5, 0, Season::Winter);
//! let weather = WeatherModel::winter();
//! let build = |homes| {
//!     CampaignBuilder::new(homes, &weather, &horizon)
//!         .warmup_days(2)
//!         .predictor(FixedPredictor(MovingAverage::new(2)))
//!         .feedback(ClosedLoop)
//!         .build()
//! };
//! let fleet = FleetRunner::new()
//!     .cell("north", build(&north))
//!     .cell("south", build(&south));
//! let report = fleet.run(); // one shared pool across both campaigns
//! assert_eq!(report.len(), 2);
//! assert_eq!(report, fleet.run_sequential()); // byte-identical
//! ```

use crate::campaign::{
    CampaignEconomics, CampaignProgress, CampaignReport, CampaignRunner, DayPlan,
};
use crate::execution::{ExecutionMode, NetworkTraffic};
use crate::session::{NegotiationReport, ReportTier};
use crate::sweep::WorkerPool;
use crate::sync_driver::NegotiationScratch;
use powergrid::slab::{PopulationRef, PopulationSlab};
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Many campaigns over a shared grid, executed on one worker pool.
///
/// Build with [`FleetRunner::new`] and [`FleetRunner::cell`]; run with
/// [`FleetRunner::run`] (shared pool, interleaved) or
/// [`FleetRunner::run_sequential`] (the reference order). Both produce
/// the same [`FleetReport`], byte for byte.
#[derive(Debug, Default)]
pub struct FleetRunner<'a> {
    cells: Vec<(String, CampaignRunner<'a>)>,
    threads: Option<NonZeroUsize>,
    /// The persistent shared pool: spawned on the first [`FleetRunner::run`]
    /// and reused by every later run of this fleet — including runs
    /// after more cells were added.
    pool: OnceLock<WorkerPool>,
}

impl<'a> FleetRunner<'a> {
    /// An empty fleet.
    pub fn new() -> FleetRunner<'a> {
        FleetRunner {
            cells: Vec::new(),
            threads: None,
            pool: OnceLock::new(),
        }
    }

    /// Adds a grid cell: a label and its configured campaign (typically
    /// several [`CampaignBuilder`](crate::campaign::CampaignBuilder)s
    /// over one shared household/production grid).
    pub fn cell(mut self, label: impl Into<String>, runner: CampaignRunner<'a>) -> Self {
        self.cells.push((label.into(), runner));
        self
    }

    /// Shards one [`PopulationSlab`] across `cells` contiguous,
    /// zero-copy [`SlabView`](powergrid::slab::SlabView)s (via
    /// [`PopulationSlab::shards`]) and adds one campaign cell per shard,
    /// labelled `shard-<i>`. `configure` builds each shard's
    /// [`CampaignRunner`] from its population view — typically
    /// `CampaignBuilder::new_ref(shard, ...)` plus whatever policies the
    /// season needs. This is how a city-scale population (~10⁶
    /// households) becomes a fleet without duplicating a single byte of
    /// population data.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero (via [`PopulationSlab::shards`]).
    pub fn sharded_slab(
        mut self,
        slab: &'a PopulationSlab,
        cells: usize,
        mut configure: impl FnMut(PopulationRef<'a>, usize) -> CampaignRunner<'a>,
    ) -> Self {
        for (i, shard) in slab.shards(cells).into_iter().enumerate() {
            let runner = configure(PopulationRef::Slab(shard), i);
            self = self.cell(format!("shard-{i}"), runner);
        }
        self
    }

    /// Applies one [`ReportTier`] fleet-wide: every cell added so far
    /// (and each cell's own
    /// [`CampaignBuilder::report_tier`](crate::campaign::CampaignBuilder::report_tier)
    /// choice) is overridden. A season-scale fleet typically runs at
    /// [`ReportTier::Settlement`] and archives the result.
    pub fn report_tier(mut self, tier: ReportTier) -> Self {
        for (_, runner) in &mut self.cells {
            runner.set_report_tier(tier);
        }
        self
    }

    /// Applies one [`ExecutionMode`] fleet-wide: every cell added so
    /// far (and each cell's own
    /// [`CampaignBuilder::execution`](crate::campaign::CampaignBuilder::execution)
    /// choice) is overridden, so the whole fleet negotiates sync, over
    /// a clean simulated network, or over a faulty one. Per-peak seeds
    /// derive from each peak's (day, index) position, so identical
    /// cells still produce identical reports under any mode.
    pub fn execution(mut self, mode: ExecutionMode) -> Self {
        for (_, runner) in &mut self.cells {
            runner.set_execution_mode(mode.clone());
        }
        self
    }

    /// Caps the shared pool's worker count (default: machine
    /// parallelism). Per-campaign `threads(...)` settings are ignored
    /// under the fleet — the whole point is one pool. Replaces any pool
    /// already spawned by a previous run.
    pub fn threads(mut self, threads: NonZeroUsize) -> Self {
        self.threads = Some(threads);
        self.pool = OnceLock::new();
        self
    }

    /// The fleet's persistent shared [`WorkerPool`]: built (threads
    /// spawned, parked) on the first [`FleetRunner::run`] and reused by
    /// every subsequent run.
    pub fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::sized(self.threads))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cells were added.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The configured cells.
    pub fn cells(&self) -> &[(String, CampaignRunner<'a>)] {
        &self.cells
    }

    /// Runs every campaign to completion on one shared [`WorkerPool`].
    ///
    /// Workers hunt for negotiable peaks across *all* cells: a claimed
    /// peak is negotiated without holding any lock, a cell whose day
    /// just completed has its feedback applied and its next day
    /// materialised by whichever worker finished it, and a worker that
    /// finds every cell busy steals from the next one over. Cores only
    /// idle when fewer negotiations remain than workers exist.
    ///
    /// Byte-identical to [`FleetRunner::run_sequential`] for any thread
    /// count. A panicking negotiation resurfaces its original payload
    /// here, as with [`WorkerPool::run`].
    pub fn run(&self) -> FleetReport {
        self.run_instrumented().0
    }

    /// [`FleetRunner::run`] plus each cell's accumulated
    /// [`NetworkTraffic`] (cell order) — all-zero under
    /// [`ExecutionMode::Sync`]. The report is byte-identical to
    /// [`FleetRunner::run`]'s, and the traffic is deterministic for a
    /// given mode (order-independent sums over per-peak seeded
    /// simulations), for any thread count.
    pub fn run_instrumented(&self) -> (FleetReport, Vec<NetworkTraffic>) {
        let pool = self.pool();
        // The unit of parallelism is the peak negotiation, not the cell:
        // even a single campaign keeps several workers busy on a
        // multi-peak day, so the worker count is not capped by cells.
        let workers = pool.threads().get();
        if workers <= 1 || self.cells.is_empty() {
            return self.run_sequential_instrumented();
        }
        let cells: Vec<CellExec<'_>> = self
            .cells
            .iter()
            .map(|(_, runner)| CellExec::new(runner))
            .collect();
        let unfinished = AtomicUsize::new(cells.len());
        let abort = AtomicBool::new(false);
        let panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let cursor = AtomicUsize::new(0);
        // `WorkerPool::run_with` drives one scheduler loop per worker,
        // each threading its own NegotiationScratch through every peak
        // it claims; the pool's own panic capture is bypassed because
        // the loop never panics — cell work is caught below so no
        // worker dies with peaks outstanding (which would deadlock the
        // others).
        pool.run_with(workers, NegotiationScratch::new, |scratch, _| loop {
            if abort.load(Ordering::Relaxed) || unfinished.load(Ordering::Acquire) == 0 {
                break;
            }
            let start = cursor.fetch_add(1, Ordering::Relaxed) % cells.len();
            let mut claimed = false;
            for offset in 0..cells.len() {
                let cell = &cells[(start + offset) % cells.len()];
                match cell.try_step(&unfinished, scratch) {
                    Ok(stepped) => {
                        if stepped {
                            claimed = true;
                            break;
                        }
                    }
                    Err(payload) => {
                        panic
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .get_or_insert(payload);
                        abort.store(true, Ordering::Relaxed);
                        claimed = true; // skip the yield; exit on re-check
                        break;
                    }
                }
            }
            if !claimed {
                // Every remaining peak is already claimed by another
                // worker; yield until one completes (negotiations are
                // ms-scale, so this is a short wait, not a spin).
                std::thread::yield_now();
            }
        });
        if let Some(payload) = panic.into_inner().unwrap_or_else(|p| p.into_inner()) {
            resume_unwind(payload);
        }
        let (reports, traffic) = cells
            .into_iter()
            .zip(&self.cells)
            .map(|(cell, (label, _))| {
                let (report, traffic) = cell.into_parts();
                (
                    CellReport {
                        label: label.clone(),
                        report,
                    },
                    traffic,
                )
            })
            .unzip();
        (FleetReport::assemble(reports), traffic)
    }

    /// Runs every campaign back to back on the calling thread — the
    /// reference order for determinism checks.
    pub fn run_sequential(&self) -> FleetReport {
        self.run_sequential_instrumented().0
    }

    /// [`FleetRunner::run_instrumented`] in the sequential reference
    /// order.
    pub fn run_sequential_instrumented(&self) -> (FleetReport, Vec<NetworkTraffic>) {
        let (reports, traffic) = self
            .cells
            .iter()
            .map(|(label, runner)| {
                let (report, traffic) = runner.run_sequential_instrumented();
                (
                    CellReport {
                        label: label.clone(),
                        report,
                    },
                    traffic,
                )
            })
            .unzip();
        (FleetReport::assemble(reports), traffic)
    }
}

// ---------------------------------------------------------------------
// Scheduler internals
// ---------------------------------------------------------------------

/// A cell's in-flight day: the plan (Arc-shared so workers negotiate
/// its scenarios without holding the cell lock, and without cloning any
/// scenario — ownership is recovered intact once the day completes) and
/// the result slots the workers fill.
struct ActiveDay {
    plan: Arc<DayPlan>,
    results: Vec<Option<NegotiationReport>>,
    /// Next unclaimed scenario index.
    next: usize,
    /// Scenarios still in flight or unclaimed.
    remaining: usize,
}

/// One cell under the fleet scheduler.
struct CellExec<'r> {
    state: Mutex<CellState<'r>>,
}

struct CellState<'r> {
    runner: &'r CampaignRunner<'r>,
    /// Created lazily by the first worker to reach the cell, so
    /// per-cell startup work (warmup predictor selection — a full
    /// backtest under [`BacktestSelected`](crate::campaign::BacktestSelected))
    /// parallelises across cells instead of running serially before the
    /// pool starts.
    progress: Option<CampaignProgress<'r>>,
    active: Option<ActiveDay>,
    report: Option<(CampaignReport, NetworkTraffic)>,
}

enum Claim {
    /// A scenario to negotiate: (day-plan handle, scenario index).
    Negotiate(Arc<DayPlan>, usize),
    /// The cell advanced (started / day completed / campaign finished)
    /// — work was done, nothing to run outside the lock.
    Advanced,
    /// Nothing claimable here right now.
    Busy,
}

impl<'r> CellExec<'r> {
    fn new(runner: &'r CampaignRunner<'r>) -> CellExec<'r> {
        CellExec {
            state: Mutex::new(CellState {
                runner,
                progress: None,
                active: None,
                report: None,
            }),
        }
    }

    /// Tries to make progress on this cell. Returns `Ok(true)` if any
    /// work was done, `Ok(false)` if the cell is finished, mid-advance
    /// under another worker, or has all peaks claimed; `Err` carries a
    /// panic payload from cell work. The negotiation runs through the
    /// calling worker's own `scratch` (engine reuse, byte-identical).
    fn try_step(
        &self,
        unfinished: &AtomicUsize,
        scratch: &mut NegotiationScratch,
    ) -> Result<bool, Box<dyn std::any::Any + Send>> {
        let claim = {
            // A busy lock means another worker is advancing this cell —
            // steal elsewhere instead of queueing up behind it.
            let Ok(mut state) = self.state.try_lock() else {
                return Ok(false);
            };
            Self::claim(&mut state, unfinished)?
        };
        match claim {
            Claim::Busy => Ok(false),
            Claim::Advanced => Ok(true),
            Claim::Negotiate(plan, index) => {
                let result = catch_unwind(AssertUnwindSafe(|| plan.negotiate(index, scratch)));
                // Release this worker's plan handle *before* storing:
                // every store therefore happens with the storing
                // worker's handle already dropped, so the day-completing
                // store sees the cell's own handle as the last one and
                // can recover the plan intact.
                drop(plan);
                let report = result?;
                let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
                Self::store(&mut state, index, report)?;
                Ok(true)
            }
        }
    }

    /// Claims work under the cell lock: an unclaimed peak if one exists,
    /// otherwise starts the campaign or advances through (possibly
    /// several stable) days until the cell has peaks or finishes.
    fn claim(
        state: &mut CellState<'r>,
        unfinished: &AtomicUsize,
    ) -> Result<Claim, Box<dyn std::any::Any + Send>> {
        if state.report.is_some() {
            return Ok(Claim::Busy); // finished
        }
        if let Some(active) = &mut state.active {
            if active.next < active.plan.scenarios().len() {
                let index = active.next;
                active.next += 1;
                return Ok(Claim::Negotiate(Arc::clone(&active.plan), index));
            }
            return Ok(Claim::Busy); // all peaks claimed, day still in flight
        }
        // No active day: start or advance. `progress()` chooses the
        // predictor (a full backtest under `BacktestSelected`) and
        // `next_day` runs prediction, detection and scenario
        // materialisation — real work, done here by a fleet worker
        // rather than some coordinator thread.
        let runner = state.runner;
        catch_unwind(AssertUnwindSafe(|| loop {
            let progress = state.progress.get_or_insert_with(|| runner.progress());
            match progress.next_day() {
                Some(plan) if plan.is_stable() => {
                    progress.complete_day(plan, Vec::new());
                }
                Some(plan) => {
                    let count = plan.scenarios().len();
                    state.active = Some(ActiveDay {
                        plan: Arc::new(plan),
                        results: (0..count).map(|_| None).collect(),
                        next: 0,
                        remaining: count,
                    });
                    break;
                }
                None => {
                    let progress = state.progress.take().expect("just inserted");
                    let traffic = progress.traffic();
                    state.report = Some((progress.finish(), traffic));
                    unfinished.fetch_sub(1, Ordering::Release);
                    break;
                }
            }
        }))?;
        Ok(Claim::Advanced)
    }

    /// Stores a finished negotiation; the worker that completes the
    /// day's last peak applies the feedback and leaves the cell ready
    /// for its next advance.
    fn store(
        state: &mut CellState<'r>,
        index: usize,
        report: NegotiationReport,
    ) -> Result<(), Box<dyn std::any::Any + Send>> {
        let active = state.active.as_mut().expect("day in flight");
        debug_assert!(active.results[index].is_none(), "peak negotiated once");
        active.results[index] = Some(report);
        active.remaining -= 1;
        if active.remaining > 0 {
            return Ok(());
        }
        let active = state.active.take().expect("day in flight");
        let reports: Vec<NegotiationReport> = active
            .results
            .into_iter()
            .map(|r| r.expect("all peaks negotiated"))
            .collect();
        // All workers of this day dropped their handles before their
        // stores (serialised by the cell lock), so the cell's handle is
        // the last and the plan comes back without copying a scenario.
        let plan = Arc::try_unwrap(active.plan)
            .unwrap_or_else(|_| unreachable!("all plan handles dropped before the last store"));
        catch_unwind(AssertUnwindSafe(|| {
            state
                .progress
                .as_mut()
                .expect("campaign in flight")
                .complete_day(plan, reports);
        }))?;
        Ok(())
    }

    fn into_parts(self) -> (CampaignReport, NetworkTraffic) {
        self.state
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
            .report
            .expect("fleet ran every cell to completion")
    }
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

/// One finished cell of the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The cell's label.
    pub label: String,
    /// The campaign's full report.
    pub report: CampaignReport,
}

/// Aggregate result of a fleet run: per-cell campaign reports in cell
/// order plus cross-cell economics.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// One report per cell, in the order cells were added.
    pub cells: Vec<CellReport>,
    /// The cells' economics summed — fleet-wide rewards, shaved energy
    /// and net gain against each cell's own producer pricing.
    pub economics: CampaignEconomics,
}

impl FleetReport {
    fn assemble(cells: Vec<CellReport>) -> FleetReport {
        let economics = cells.iter().map(|c| c.report.economics).sum();
        FleetReport { cells, economics }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True for an empty fleet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell with the given label, if present.
    pub fn cell(&self, label: &str) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.label == label)
    }

    /// Peaks negotiated across all cells.
    pub fn negotiations(&self) -> usize {
        self.cells.iter().map(|c| c.report.negotiations()).sum()
    }

    /// Days evaluated across all cells.
    pub fn days_evaluated(&self) -> usize {
        self.cells.iter().map(|c| c.report.days_evaluated()).sum()
    }

    /// True if every negotiation in every cell converged.
    pub fn all_converged(&self) -> bool {
        self.cells.iter().all(|c| c.report.all_converged())
    }

    /// Total energy shaved across all cells.
    pub fn total_energy_shaved(&self) -> powergrid::units::KilowattHours {
        self.cells
            .iter()
            .map(|c| c.report.total_energy_shaved())
            .sum()
    }

    /// Total reward outlay across all cells.
    pub fn total_rewards(&self) -> powergrid::units::Money {
        self.cells.iter().map(|c| c.report.total_rewards()).sum()
    }

    /// Copies the whole fleet report down to `tier` (see
    /// [`CampaignReport::at_tier`]); the fleet economics are scalars and
    /// survive unchanged.
    pub fn at_tier(&self, tier: ReportTier) -> FleetReport {
        FleetReport {
            cells: self
                .cells
                .iter()
                .map(|c| CellReport {
                    label: c.label.clone(),
                    report: c.report.at_tier(tier),
                })
                .collect(),
            economics: self.economics,
        }
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} cells, {} days evaluated, {} peaks negotiated, \
             {:.1} kWh shaved, net gain {:.1}",
            self.len(),
            self.days_evaluated(),
            self.negotiations(),
            self.total_energy_shaved().value(),
            self.economics.net_gain.value()
        )?;
        for cell in &self.cells {
            writeln!(
                f,
                "  {:<12} {:>3} peaks | {:>8.1} kWh shaved | {:>8.1} rewards | net {:>8.1}",
                cell.label,
                cell.report.negotiations(),
                cell.report.total_energy_shaved().value(),
                cell.report.total_rewards().value(),
                cell.report.economics.net_gain.value()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignBuilder, ClosedLoop, FixedPredictor, MarginalCostStop};
    use powergrid::calendar::Horizon;
    use powergrid::household::Household;
    use powergrid::population::PopulationBuilder;
    use powergrid::prediction::MovingAverage;
    use powergrid::weather::{Season, WeatherModel};

    fn homes(n: usize, seed: u64) -> Vec<Household> {
        PopulationBuilder::new().households(n).build(seed)
    }

    fn runner<'a>(
        homes: &'a [Household],
        weather: &WeatherModel,
        closed: bool,
    ) -> CampaignRunner<'a> {
        let horizon = Horizon::new(5, 0, Season::Winter);
        let b = CampaignBuilder::new(homes, weather, &horizon)
            .warmup_days(2)
            .predictor(FixedPredictor(MovingAverage::new(2)));
        if closed {
            b.feedback(ClosedLoop).stop_rule(MarginalCostStop).build()
        } else {
            b.build()
        }
    }

    #[test]
    fn sharded_slab_fleet_matches_object_slice_fleet() {
        let weather = WeatherModel::winter();
        let horizon = Horizon::new(5, 0, Season::Winter);
        let builder = PopulationBuilder::new().households(23);
        let slab = builder.build_slab(9);
        let homes = builder.build(9);
        fn build<'a>(
            pop: PopulationRef<'a>,
            weather: &'a WeatherModel,
            horizon: &'a Horizon,
        ) -> CampaignRunner<'a> {
            CampaignBuilder::new_ref(pop, weather, horizon)
                .warmup_days(2)
                .predictor(FixedPredictor(MovingAverage::new(2)))
                .feedback(ClosedLoop)
                .build()
        }
        let slab_fleet =
            FleetRunner::new().sharded_slab(&slab, 3, |pop, _| build(pop, &weather, &horizon));
        // Same cells, built from contiguous object slices at the same
        // offsets — household ids and every derived byte must agree.
        let mut object_fleet = FleetRunner::new();
        let mut start = 0;
        for (i, shard) in slab.shards(3).into_iter().enumerate() {
            let end = start + shard.len();
            object_fleet = object_fleet.cell(
                format!("shard-{i}"),
                build(
                    PopulationRef::Objects(&homes[start..end]),
                    &weather,
                    &horizon,
                ),
            );
            start = end;
        }
        assert_eq!(start, homes.len());
        let report = slab_fleet.run();
        assert_eq!(report.len(), 3);
        assert_eq!(report.cells[0].label, "shard-0");
        assert_eq!(report.cells[2].label, "shard-2");
        assert_eq!(report, object_fleet.run());
        assert!(report.all_converged());
    }

    #[test]
    fn fleet_matches_sequential_and_per_cell_runs() {
        let weather = WeatherModel::winter();
        let north = homes(40, 11);
        let south = homes(25, 3);
        let west = homes(30, 7);
        let fleet = FleetRunner::new()
            .cell("north", runner(&north, &weather, false))
            .cell("south", runner(&south, &weather, true))
            .cell("west", runner(&west, &weather, false))
            .threads(NonZeroUsize::new(4).expect("4 > 0"));
        let report = fleet.run();
        assert_eq!(report, fleet.run_sequential());
        assert_eq!(report.len(), 3);
        // Each cell is exactly what a standalone campaign run produces.
        for (cell, (label, campaign)) in report.cells.iter().zip(fleet.cells()) {
            assert_eq!(&cell.label, label);
            assert_eq!(cell.report, campaign.run_sequential());
        }
        assert!(report.negotiations() > 0);
        assert!(report.all_converged());
        assert_eq!(report.cell("south").expect("present").label, "south");
        assert!(report.cell("east").is_none());
    }

    #[test]
    fn economics_aggregate_across_cells() {
        let weather = WeatherModel::winter();
        let a = homes(40, 11);
        let b = homes(35, 5);
        let fleet = FleetRunner::new()
            .cell("a", runner(&a, &weather, false))
            .cell("b", runner(&b, &weather, true))
            .threads(NonZeroUsize::new(2).expect("2 > 0"));
        let report = fleet.run();
        let rewards: f64 = report
            .cells
            .iter()
            .map(|c| c.report.economics.rewards_paid.value())
            .sum();
        assert!((report.economics.rewards_paid.value() - rewards).abs() < 1e-9);
        let stops: usize = report
            .cells
            .iter()
            .map(|c| c.report.economics.economic_stops)
            .sum();
        assert_eq!(report.economics.economic_stops, stops);
        assert_eq!(
            report.total_rewards(),
            report.cells.iter().map(|c| c.report.total_rewards()).sum()
        );
        let text = report.to_string();
        assert!(text.contains("fleet: 2 cells"));
        assert!(text.contains("a "), "per-cell lines present");
    }

    #[test]
    fn single_cell_fleet_equals_the_campaign() {
        let weather = WeatherModel::winter();
        let pop = homes(40, 11);
        let fleet = FleetRunner::new().cell("solo", runner(&pop, &weather, false));
        let report = fleet.run();
        assert_eq!(report.cells[0].report, runner(&pop, &weather, false).run());
        assert_eq!(report, fleet.run_sequential());
    }

    #[test]
    fn empty_fleet_reports_nothing() {
        let fleet = FleetRunner::new();
        assert!(fleet.is_empty());
        let report = fleet.run();
        assert!(report.is_empty());
        assert_eq!(report.negotiations(), 0);
        assert_eq!(report.economics.economic_stops, 0);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let weather = WeatherModel::winter();
        let pop = homes(25, 2);
        let fleet = FleetRunner::new()
            .cell("tiny", runner(&pop, &weather, false))
            .threads(NonZeroUsize::new(16).expect("16 > 0"));
        assert_eq!(fleet.run(), fleet.run_sequential());
    }

    #[test]
    fn identical_cells_produce_identical_reports() {
        // Two cells over the same population must settle identically —
        // the shared pool's interleaving leaks nothing between cells.
        let weather = WeatherModel::winter();
        let pop = homes(30, 1);
        let fleet = FleetRunner::new()
            .cell("first", runner(&pop, &weather, false))
            .cell("second", runner(&pop, &weather, false))
            .threads(NonZeroUsize::new(3).expect("3 > 0"));
        let report = fleet.run();
        assert_eq!(report.cells[0].report, report.cells[1].report);
        assert_eq!(report, fleet.run_sequential());
    }
}
