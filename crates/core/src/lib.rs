//! `loadbal-core` — negotiating agents for load balancing of electricity
//! use, after Brazier, Cornelissen, Gustavsson, Jonker, Lindeberg, Polak
//! and Treur, *Agents Negotiating for Load Balancing of Electricity Use*,
//! ICDCS 1998.
//!
//! One **Utility Agent** negotiates with many **Customer Agents** to shave
//! a predicted demand peak. Three announcement methods are implemented
//! (Section 3.2 of the paper):
//!
//! * [`methods::offer`] — one-round take-it-or-leave-it offer;
//! * [`methods::request_bids`] — iterated request for bids;
//! * [`methods::reward_table`] — the paper's prototype strategy:
//!   announced reward tables under the monotonic concession protocol,
//!   with the Section-6 update rule
//!   `new_reward = reward + β · overuse · (1 − reward/max_reward) · reward`.
//!
//! The protocol itself lives in **one place**: the sans-io [`engine`]
//! ([`engine::UtilityEngine`] / [`engine::CustomerEngine`]), a pure
//! state machine fed with [`engine::Input`]s and drained of
//! [`engine::Effect`]s. Three thin drivers execute it:
//!
//! 1. **Synchronous** ([`sync_driver::SyncDriver`], behind
//!    [`session::Scenario::run`]) — an in-process message pump, used by
//!    the experiment harness and the parallel [`sweep`] runner;
//! 2. **Distributed** ([`distributed`]) — Utility and Customer Agents as
//!    [`massim`] actors exchanging [`message::Msg`] over a lossy network;
//! 3. **DESIRE-hosted** ([`desire_host`]) — the same engines executed
//!    inside the [`desire`] compositional framework, mirroring the
//!    paper's Figures 2–5 process hierarchies.
//!
//! Because every mode drives the same engine, their outcomes agree by
//! construction (`tests/cross_mode.rs` checks this property on random
//! scenarios).
//!
//! # Quickstart
//!
//! ```
//! use loadbal_core::prelude::*;
//!
//! // The calibrated Figure 6/7 scenario: capacity 100, predicted use 135.
//! let scenario = ScenarioBuilder::paper_figure_6().build();
//! let report = scenario.run(); // SyncDriver over the sans-io engine
//! assert!(report.converged());
//! assert!(report.final_overuse() < report.initial_overuse());
//! ```
//!
//! Driving the engine by hand (what every driver does internally):
//!
//! ```
//! use loadbal_core::prelude::*;
//!
//! let scenario = ScenarioBuilder::paper_figure_6().build();
//! let mut utility = UtilityEngine::new(&scenario);
//! let mut customers: Vec<CustomerEngine> = (0..scenario.customers.len())
//!     .map(|i| CustomerEngine::for_customer(&scenario, i))
//!     .collect();
//!
//! utility.handle(Input::Start);
//! let mut settled = false;
//! while let Some(effect) = utility.poll_effect() {
//!     match effect {
//!         Effect::Send { to: Peer::Customer(i), msg } => {
//!             customers[i].handle(Input::Received { from: Peer::Utility, msg });
//!             while let Some(Effect::Send { msg, .. }) = customers[i].poll_effect() {
//!                 utility.handle(Input::Received { from: Peer::Customer(i), msg });
//!             }
//!         }
//!         Effect::Settled { status, .. } => settled = status.is_converged(),
//!         _ => {} // timers are unnecessary when every reply arrives
//!     }
//! }
//! assert!(settled);
//! ```
//!
//! Fanning a scenario grid across cores:
//!
//! ```
//! use loadbal_core::prelude::*;
//!
//! let sweep = ScenarioSweep::new()
//!     .seeded_grid("β-sweep", 20, 0.35, 0..4, |b| b);
//! let outcomes = sweep.run(); // parallel, byte-identical to sequential
//! assert!(outcomes.iter().all(|o| o.report.converged()));
//! ```
//!
//! # The `powergrid` → `Scenario` pipeline
//!
//! Scenarios need not be synthetic: the [`campaign`] module wires the
//! physical model into the negotiation core as a day-by-day *feedback*
//! cycle, driven by a [`campaign::CampaignRunner`] whose behaviour is
//! fixed by three pluggable policies on its
//! [`campaign::CampaignBuilder`] —
//!
//! 1. **Simulate** — a [`powergrid::population::PopulationBuilder`]
//!    population under a [`powergrid::weather::WeatherModel`] over a
//!    [`powergrid::calendar::Horizon`] yields per-slot demand for every
//!    day ([`powergrid::demand::simulate_horizon`]). The population
//!    arrives through either backend of
//!    [`powergrid::slab::PopulationRef`]: per-object
//!    [`powergrid::household::Household`] trees, or the
//!    struct-of-arrays [`powergrid::slab::PopulationSlab`]
//!    (`PopulationBuilder::build_slab`) whose batched kernels make
//!    city-scale populations practical on one box — byte-identical
//!    results either way, so every campaign layer
//!    ([`campaign::CampaignBuilder::new_ref`],
//!    [`session::ScenarioBuilder::from_peak_ref`],
//!    [`powergrid::demand::simulate_horizon_ref`]) is
//!    backend-agnostic;
//! 2. **Select** — a [`campaign::PredictorPolicy`] fixes the campaign's
//!    [`powergrid::prediction::LoadPredictor`]: a given model
//!    ([`campaign::FixedPredictor`]) or the warmup-backtest winner
//!    ([`campaign::BacktestSelected`], via
//!    [`powergrid::prediction::select_best`]);
//! 3. **Predict** — the chosen predictor forecasts each post-warmup day
//!    from its (possibly feedback-adjusted) history and the weather
//!    forecast (§5.1.2 *determine predicted balance*);
//! 4. **Detect** — [`powergrid::peak::PeakDetector::detect_all`] finds
//!    every interval whose predicted overuse warrants the effort of
//!    negotiating (§5.1.2 *evaluate prediction*);
//! 5. **Materialise** — each peak becomes a [`session::Scenario`] via
//!    [`session::ScenarioBuilder::from_peak`]: per-customer predicted
//!    use is the household's demand over the peak interval, and its
//!    private preferences are *physically grounded* — the cut-down
//!    ceiling is `saving_potential / interval usage`
//!    ([`powergrid::household::Household::max_cutdown`]), the
//!    reluctance scale falls with that flexibility; no random betas;
//! 6. **Negotiate** — the day's peaks fan across cores with
//!    [`sweep::ScenarioSweep`] (byte-identical to sequential
//!    execution), each under the campaign's
//!    [`campaign::StopPolicy`]: unconditionally to the protocol's own
//!    end, or stopping reward-table raises once the next table costs
//!    more than the expensive production still avoidable
//!    ([`campaign::MarginalCostStop`], priced by the
//!    [`producer_agent::ProducerAgent`]). *How* each peak negotiates is
//!    the campaign's [`execution::ExecutionMode`]
//!    ([`campaign::CampaignBuilder::execution`] /
//!    [`fleet::FleetRunner::execution`]): the in-process sync pump, or a
//!    seeded [`massim`] simulation per peak over a
//!    [`massim::network::NetworkModel`] — byte-identical to sync when
//!    the network is clean, measurably degraded when it is faulty, with
//!    wire activity accumulated as [`execution::NetworkTraffic`] and
//!    clean-vs-faulty seasons compared per fault class by
//!    [`resilience::ResilienceReport`];
//! 7. **Feed back** — the campaign's [`campaign::FeedbackPolicy`]
//!    decides what enters prediction history: the simulated actuals
//!    untouched ([`campaign::OpenLoop`]) or with the day's negotiated
//!    cut-downs applied ([`campaign::ClosedLoop`]), so the next day's
//!    forecast reflects the deals. Days therefore run sequentially,
//!    and the [`campaign::CampaignReport`] records per-day predictor
//!    choice, feedback deltas and stop-rule accounting
//!    ([`campaign::CampaignEconomics`]);
//! 8. **Adapt** — the [`adaptive`] subsystem closes the paper's three
//!    self-tuning loops at the sequential day boundary: every
//!    settlement is evaluated into an
//!    [`utility_agent::own_process_control::OwnProcessControl`] whose
//!    experience shapes the next day's β and allowed-overuse band
//!    ([`adaptive::AdaptiveTuning`], a [`adaptive::TuningPolicy`] —
//!    §7's "dynamically varying the value of beta on the basis of
//!    experience"); residual overuse left by an economic stop is
//!    re-detected on the post-negotiation profile and renegotiated the
//!    *same* day on a fresh reward ladder
//!    ([`adaptive::RenegotiateResidual`]); and the predictor choice is
//!    re-run on a sliding window of feedback-adjusted history as the
//!    season drifts ([`adaptive::RollingWindow`]). Because all three
//!    loops live between [`campaign::CampaignProgress::complete_day`]
//!    and the next plan — never inside the parallel peak fan-out —
//!    adaptive campaigns keep every byte-identity guarantee;
//! 9. **Fleet** — a whole service area is many campaigns (one per grid
//!    cell or household cohort), embarrassingly parallel across cells
//!    even though days within a cell are sequential. The
//!    [`fleet::FleetRunner`] drives every cell through the
//!    [`campaign::CampaignProgress`] stepping API and interleaves all
//!    cells' peak negotiations on **one** shared
//!    [`sweep::WorkerPool`], aggregating a [`fleet::FleetReport`]
//!    (per-cell reports + cross-cell economics) that is byte-identical
//!    for any thread count. One city-scale slab shards across cells
//!    zero-copy by offset range ([`fleet::FleetRunner::sharded_slab`],
//!    E20: a ~10⁶-household settlement-tier season);
//! 10. **Report** — how much of all that a season *retains* is a policy,
//!     not a constant: a [`session::ReportTier`] chosen per campaign
//!     ([`campaign::CampaignBuilder::report_tier`] /
//!     `FleetRunner::report_tier`) and enforced at the source in the
//!     report assembler. [`session::ReportTier::Aggregate`] keeps digest
//!     scalars only, [`session::ReportTier::Settlement`] adds per-customer
//!     settlements and economics, [`session::ReportTier::FullTrace`] keeps
//!     every round, table and bid. Lower tiers never *store* the dropped
//!     detail (E17 pins the retained-memory ratio), yet every tier
//!     reports identical digest scalars and economics, and streaming at a
//!     tier equals downgrading a full-trace report via
//!     [`session::NegotiationReport::at_tier`] after the fact. Season
//!     reports persist to compact versioned binary archives — seekable
//!     per cell and per day without decoding the season — via the
//!     `loadbal-archive` crate and its `season-inspect` CLI.
//!
//! Both hot loops under this pipeline are allocation-lean and
//! spawn-free. The [`sweep::WorkerPool`] is **persistent**: worker
//! threads spawn once at first use, park between batches, respawn after
//! a panic, and are shared by the sweep, every campaign day and the
//! fleet — no per-day thread spawn (E16). Each pool worker threads a
//! reusable [`sync_driver::NegotiationScratch`] through the peaks it
//! claims ([`session::Scenario::run_in`]), so utility/customer engines
//! are reset in place instead of rebuilt per negotiation, rounds move
//! their bid vectors into the report instead of cloning them, and each
//! round's reward table is snapshotted exactly once (shared `Arc` in
//! [`message::Msg::Announce`] and [`session::RoundRecord`]). The demand
//! hot path underneath —
//! [`powergrid::household::Household::demand_profile_with`] /
//! [`powergrid::device::Device::load_profile_into`] — writes into
//! reusable [`powergrid::household::DemandScratch`] buffers, so
//! scenario derivation allocates nothing per device per household per
//! day (E15).
//!
//! The full pipeline: grid → prediction → peaks → scenarios → campaign
//! → fleet → **tiered report / archive**.
//!
//! # Determinism & safety invariants
//!
//! Every byte-identity guarantee above (parallel == sequential,
//! distributed-clean == sync, adaptive runs identical across thread
//! counts) rests on source-level discipline that the type system does
//! not enforce. The workspace therefore carries its own static
//! analysis pass, `loadbal-lint` (`crates/lint`), which walks every
//! first-party source file and enforces:
//!
//! * **Determinism** — no `HashMap`/`HashSet` (iteration order is
//!   seeded per process), no `Instant::now`/`SystemTime` wall clocks,
//!   no `std::env` reads and no OS-entropy or thread-identity APIs in
//!   non-test code of this crate, `powergrid`, `massim`,
//!   `loadbal-archive` and `desire`. Ordered collections, the
//!   scenario's seeded RNG and caller-supplied configuration are the
//!   sanctioned alternatives.
//! * **Unsafe confinement** — `unsafe` appears only inside
//!   [`sweep`]'s `mod pool` (the lifetime-erased batch hand-off of
//!   the persistent `WorkerPool`), every block or impl directly
//!   preceded by a `// SAFETY:` comment; every other crate root
//!   carries `#![forbid(unsafe_code)]` (this crate: `deny`, see the
//!   header below).
//! * **Panic discipline** — the archive decode paths return typed
//!   errors (`loadbal_archive::ArchiveError`) instead of
//!   `unwrap`/`expect`/indexing, so a corrupt season file can never
//!   take down a fleet run.
//!
//! The pass runs three ways and must stay clean in all of them: the
//! `loadbal-lint --workspace` binary, the CI `lint-invariants` job,
//! and the tier-1 test `tests/lint_conformance.rs` under plain
//! `cargo test -q`. Violations that are genuinely sanctioned carry an
//! inline `// lint: allow(<rule>) reason="…"` waiver; a waiver
//! without a reason is itself a finding.
//!
//! ```
//! use loadbal_core::prelude::*;
//! use powergrid::calendar::Horizon;
//! use powergrid::population::PopulationBuilder;
//! use powergrid::prediction::MovingAverage;
//! use powergrid::weather::{Season, WeatherModel};
//!
//! let homes = PopulationBuilder::new().households(50).build(42);
//! let runner = CampaignBuilder::new(
//!     &homes,
//!     &WeatherModel::winter(),
//!     &Horizon::new(6, 0, Season::Winter),
//! )
//! .predictor(FixedPredictor(MovingAverage::new(3)))
//! .feedback(ClosedLoop)
//! .build();
//! let report = runner.run();
//! assert!(report.all_converged());
//! assert!(report.total_energy_shaved().value() > 0.0);
//! assert!(report.total_feedback().value() > 0.0); // closed loop fed back
//! ```

// `deny`, not `forbid`: the persistent `WorkerPool` (sweep.rs) needs one
// tightly-scoped `allow(unsafe_code)` for its lifetime-erased batch
// hand-off — the same erasure every scoped-thread/pool crate performs —
// with the safety protocol documented at the single site. Everything
// else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod beta;
pub mod campaign;
pub mod category;
pub mod concession;
pub mod desire_host;
pub mod distributed;
pub mod engine;
pub mod execution;
pub mod fleet;
pub mod market;
pub mod message;
pub mod methods;
pub mod outcome;
pub mod preferences;
pub mod producer_agent;
pub mod resilience;
pub mod resource_consumer;
pub mod reward;
pub mod session;
pub mod strategy;
pub mod sweep;
pub mod sync_driver;

pub mod customer_agent;
pub mod utility_agent;

/// The most frequently used items.
pub mod prelude {
    pub use crate::adaptive::{
        AdaptiveTuning, RenegotiateResidual, RenegotiationRule, RollingWindow, StaticTuning,
        TuningPolicy,
    };
    pub use crate::beta::BetaPolicy;
    pub use crate::campaign::{
        BacktestSelected, CampaignBuilder, CampaignEconomics, CampaignReport, CampaignRunner,
        ClosedLoop, DayOutcome, FeedbackPolicy, FixedPredictor, IntervalOutcome, MarginalCostStop,
        OpenLoop, PredictorPolicy, StopPolicy, Unconditional,
    };
    pub use crate::concession::{NegotiationStatus, TerminationReason};
    pub use crate::engine::{CustomerEngine, Effect, Input, Peer, UtilityEngine};
    pub use crate::execution::{ExecutionMode, NetworkTraffic};
    pub use crate::fleet::{CellReport, FleetReport, FleetRunner};
    pub use crate::message::Msg;
    pub use crate::methods::AnnouncementMethod;
    pub use crate::outcome::SettlementSummary;
    pub use crate::preferences::CustomerPreferences;
    pub use crate::resilience::{CellResilience, FaultClass, FaultOutcome, ResilienceReport};
    pub use crate::reward::{RewardFormula, RewardTable};
    pub use crate::session::{
        CustomerProfile, NegotiationReport, ReportTier, RoundDigest, RoundRecord, Scenario,
        ScenarioBuilder,
    };
    pub use crate::strategy::select_method;
    pub use crate::sweep::{ScenarioSweep, SweepOutcome, WorkerPool};
    pub use crate::sync_driver::{NegotiationScratch, SyncDriver};
    pub use crate::utility_agent::UtilityAgentConfig;
}
