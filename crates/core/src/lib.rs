//! `loadbal-core` — negotiating agents for load balancing of electricity
//! use, after Brazier, Cornelissen, Gustavsson, Jonker, Lindeberg, Polak
//! and Treur, *Agents Negotiating for Load Balancing of Electricity Use*,
//! ICDCS 1998.
//!
//! One **Utility Agent** negotiates with many **Customer Agents** to shave
//! a predicted demand peak. Three announcement methods are implemented
//! (Section 3.2 of the paper):
//!
//! * [`methods::offer`] — one-round take-it-or-leave-it offer;
//! * [`methods::request_bids`] — iterated request for bids;
//! * [`methods::reward_table`] — the paper's prototype strategy:
//!   announced reward tables under the monotonic concession protocol,
//!   with the Section-6 update rule
//!   `new_reward = reward + β · overuse · (1 − reward/max_reward) · reward`.
//!
//! The negotiation can run in three execution modes that share the same
//! decision logic and produce the same outcomes:
//!
//! 1. **Synchronous** ([`session`]) — direct round-based execution, used
//!    by the experiment harness;
//! 2. **Distributed** ([`distributed`]) — Utility and Customer Agents as
//!    [`massim`] actors exchanging [`message::Msg`] over a lossy network;
//! 3. **DESIRE-hosted** ([`desire_host`]) — the Utility Agent's decision
//!    step executed inside the [`desire`] compositional framework,
//!    mirroring the paper's Figures 2–5 process hierarchies.
//!
//! # Quickstart
//!
//! ```
//! use loadbal_core::prelude::*;
//!
//! // The calibrated Figure 6/7 scenario: capacity 100, predicted use 135.
//! let scenario = ScenarioBuilder::paper_figure_6().build();
//! let report = scenario.run();
//! assert!(report.converged());
//! assert!(report.final_overuse() < report.initial_overuse());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beta;
pub mod category;
pub mod concession;
pub mod desire_host;
pub mod distributed;
pub mod market;
pub mod message;
pub mod methods;
pub mod outcome;
pub mod preferences;
pub mod producer_agent;
pub mod resource_consumer;
pub mod reward;
pub mod session;
pub mod strategy;

pub mod customer_agent;
pub mod utility_agent;

/// The most frequently used items.
pub mod prelude {
    pub use crate::beta::BetaPolicy;
    pub use crate::concession::{NegotiationStatus, TerminationReason};
    pub use crate::message::Msg;
    pub use crate::methods::AnnouncementMethod;
    pub use crate::outcome::SettlementSummary;
    pub use crate::preferences::CustomerPreferences;
    pub use crate::reward::{RewardFormula, RewardTable};
    pub use crate::session::{
        CustomerProfile, NegotiationReport, RoundRecord, Scenario, ScenarioBuilder,
    };
    pub use crate::strategy::select_method;
    pub use crate::utility_agent::UtilityAgentConfig;
}
