//! A computational-market baseline (§7, ref. \[12\]).
//!
//! "The potential of other negotiation strategies, such as computational
//! markets (see, for example, \[12\]) are also currently being explored."
//! Reference \[12\] is Ygge & Akkermans, *Power Load Management as a
//! Computational Market* (ICMAS'96). This module implements that
//! baseline so the reward-table protocol can be compared against it
//! (experiment E10):
//!
//! * each Customer Agent turns its private cut-down/required-reward table
//!   into a *demand function*: at compensation price `p` per saved kWh it
//!   sheds the largest cut-down whose threshold is covered by
//!   `p · cutdown · predicted_use`;
//! * the Utility Agent is the auctioneer: it quotes prices, customers
//!   respond with their demand, and a bisection search finds the lowest
//!   clearing price at which predicted consumption fits the allowed
//!   capacity;
//! * all shedders are paid the uniform clearing price for their shed
//!   energy (uniform-price auction).

use crate::preferences::CustomerPreferences;
use crate::session::Scenario;
use powergrid::units::{Fraction, KilowattHours, Money, PricePerKwh};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A customer's best response to a quoted compensation price: the
/// largest tabled cut-down whose effort threshold is covered by the
/// payment `price · cutdown · predicted_use`.
pub fn demand_response(
    preferences: &CustomerPreferences,
    predicted_use: KilowattHours,
    price: PricePerKwh,
) -> Fraction {
    let mut best = Fraction::ZERO;
    for &(cutdown, required) in preferences.thresholds() {
        if cutdown > preferences.max_cutdown() {
            break;
        }
        let payment = Money(price.value() * cutdown.value() * predicted_use.value());
        if payment >= required && cutdown > best {
            best = cutdown;
        }
    }
    best
}

/// One price-quote iteration of the auction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuctionRound {
    /// Iteration number, 1-based.
    pub iteration: u32,
    /// The quoted compensation price.
    pub price: PricePerKwh,
    /// Total predicted consumption at that price.
    pub predicted_total: KilowattHours,
}

/// Result of the computational-market run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketReport {
    /// The bisection trace.
    pub iterations: Vec<AuctionRound>,
    /// The uniform clearing price (None when even the price cap cannot
    /// clear the market).
    pub clearing_price: Option<PricePerKwh>,
    /// Final cut-down per customer.
    pub cutdowns: Vec<Fraction>,
    /// Total predicted consumption at the clearing price.
    pub final_total: KilowattHours,
    /// Total compensation paid.
    pub payments: Money,
    /// Messages exchanged (price quotes + demand responses + awards).
    pub messages: u64,
    /// Capacity the auctioneer had to fit under.
    pub capacity_target: KilowattHours,
}

impl MarketReport {
    /// True if demand was brought within the capacity target.
    pub fn cleared(&self) -> bool {
        self.final_total <= self.capacity_target + KilowattHours(1e-9)
    }

    /// Final relative overuse versus `normal_use`.
    pub fn final_overuse_fraction(&self, normal_use: KilowattHours) -> f64 {
        crate::reward::overuse_fraction(self.final_total, normal_use)
    }
}

impl fmt::Display for MarketReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "market | {} iterations | price {} | total {} (target {}) | paid {} | msgs {}",
            self.iterations.len(),
            self.clearing_price
                .map(|p| format!("{:.3}", p.value()))
                .unwrap_or_else(|| "uncleared".into()),
            self.final_total,
            self.capacity_target,
            self.payments,
            self.messages
        )
    }
}

/// Auctioneer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionConfig {
    /// Upper bound on the compensation price.
    pub price_cap: PricePerKwh,
    /// Bisection iterations (each costs a full quote/response exchange).
    pub max_iterations: u32,
    /// Price resolution at which bisection stops.
    pub price_epsilon: f64,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig {
            price_cap: PricePerKwh(20.0),
            max_iterations: 30,
            price_epsilon: 1e-3,
        }
    }
}

/// Runs the computational market on a scenario: finds the lowest uniform
/// price bringing predicted consumption within
/// `normal_use · (1 + max_allowed_overuse)`.
pub fn run_market(scenario: &Scenario, config: AuctionConfig) -> MarketReport {
    let n = scenario.customers.len() as u64;
    let capacity_target = scenario.normal_use * (1.0 + scenario.config.max_allowed_overuse);

    let total_at = |price: PricePerKwh| -> (KilowattHours, Vec<Fraction>) {
        let mut cutdowns = Vec::with_capacity(scenario.customers.len());
        let mut total = KilowattHours::ZERO;
        for c in &scenario.customers {
            let cut = demand_response(&c.preferences, c.predicted_use, price);
            total += crate::reward::predicted_use_with_cutdown(c.predicted_use, c.allowed_use, cut);
            cutdowns.push(cut);
        }
        (total, cutdowns)
    };

    let mut iterations = Vec::new();
    let mut iteration = 0u32;
    let mut quote = |price: PricePerKwh, iterations: &mut Vec<AuctionRound>| {
        iteration += 1;
        let (total, cutdowns) = total_at(price);
        iterations.push(AuctionRound {
            iteration,
            price,
            predicted_total: total,
        });
        (total, cutdowns)
    };

    // Check the endpoints first: free (price 0) and the cap.
    let (total_free, cutdowns_free) = quote(PricePerKwh(0.0), &mut iterations);
    if total_free <= capacity_target {
        let messages = 2 * n * iterations.len() as u64;
        return MarketReport {
            iterations,
            clearing_price: Some(PricePerKwh(0.0)),
            cutdowns: cutdowns_free,
            final_total: total_free,
            payments: Money::ZERO,
            messages,
            capacity_target,
        };
    }
    let (total_cap, cutdowns_cap) = quote(config.price_cap, &mut iterations);
    if total_cap > capacity_target {
        // Even the cap cannot clear: settle at the cap (best effort).
        let payments = settle(scenario, &cutdowns_cap, config.price_cap);
        let messages = 2 * n * iterations.len() as u64 + n;
        return MarketReport {
            iterations,
            clearing_price: None,
            cutdowns: cutdowns_cap,
            final_total: total_cap,
            payments,
            messages,
            capacity_target,
        };
    }

    // Bisection: demand is non-increasing in price.
    let mut lo = 0.0f64;
    let mut hi = config.price_cap.value();
    let mut best = (config.price_cap, total_cap, cutdowns_cap);
    for _ in 0..config.max_iterations {
        if hi - lo <= config.price_epsilon {
            break;
        }
        let mid = 0.5 * (lo + hi);
        let (total, cutdowns) = quote(PricePerKwh(mid), &mut iterations);
        if total <= capacity_target {
            hi = mid;
            best = (PricePerKwh(mid), total, cutdowns);
        } else {
            lo = mid;
        }
    }
    let (price, final_total, cutdowns) = best;
    let payments = settle(scenario, &cutdowns, price);
    let messages = 2 * n * iterations.len() as u64 + n;
    MarketReport {
        iterations,
        clearing_price: Some(price),
        cutdowns,
        final_total,
        payments,
        messages,
        capacity_target,
    }
}

fn settle(scenario: &Scenario, cutdowns: &[Fraction], price: PricePerKwh) -> Money {
    scenario
        .customers
        .iter()
        .zip(cutdowns)
        .map(|(c, &cut)| Money(price.value() * cut.value() * c.predicted_use.value()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;

    fn fr(v: f64) -> Fraction {
        Fraction::clamped(v)
    }

    #[test]
    fn demand_response_is_monotone_in_price() {
        let prefs = CustomerPreferences::paper_figure_8();
        let predicted = KilowattHours(6.75);
        let mut prev = Fraction::ZERO;
        for p in [0.0, 1.0, 2.0, 5.0, 10.0, 20.0] {
            let cut = demand_response(&prefs, predicted, PricePerKwh(p));
            assert!(cut >= prev, "shedding shrank as price rose");
            prev = cut;
        }
        assert!(prev > Fraction::ZERO, "a high price must induce shedding");
    }

    #[test]
    fn demand_response_respects_ceiling() {
        let prefs = CustomerPreferences::from_base_scaled(0.1, fr(0.3));
        let cut = demand_response(&prefs, KilowattHours(10.0), PricePerKwh(100.0));
        assert_eq!(cut, fr(0.3));
    }

    #[test]
    fn market_clears_paper_scenario() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = run_market(&scenario, AuctionConfig::default());
        assert!(report.cleared(), "{report}");
        let price = report.clearing_price.expect("cleared market has a price");
        assert!(price.value() > 0.0);
        assert!(report.payments > Money::ZERO);
        assert!(report.final_overuse_fraction(scenario.normal_use) <= 0.15 + 1e-9);
    }

    #[test]
    fn zero_price_when_no_peak() {
        let scenario = ScenarioBuilder::paper_figure_6()
            .normal_use(KilowattHours(200.0))
            .build();
        let report = run_market(&scenario, AuctionConfig::default());
        assert_eq!(report.clearing_price, Some(PricePerKwh(0.0)));
        assert_eq!(report.payments, Money::ZERO);
        assert_eq!(report.iterations.len(), 1, "one probe suffices");
    }

    #[test]
    fn uncleared_market_reports_none() {
        // Impossible demands: reluctant customers, tiny price cap.
        let scenario = ScenarioBuilder::random(20, 0.5, 3).build();
        let config = AuctionConfig {
            price_cap: PricePerKwh(0.001),
            ..AuctionConfig::default()
        };
        let report = run_market(&scenario, config);
        assert!(report.clearing_price.is_none());
        assert!(!report.cleared());
    }

    #[test]
    fn clearing_price_is_minimal() {
        let scenario = ScenarioBuilder::random(50, 0.35, 7).build();
        let report = run_market(&scenario, AuctionConfig::default());
        let price = report.clearing_price.expect("clears");
        if price.value() > 0.01 {
            // Slightly below the clearing price the market must not clear.
            let below = PricePerKwh(price.value() - 0.01);
            let total: KilowattHours = scenario
                .customers
                .iter()
                .map(|c| {
                    crate::reward::predicted_use_with_cutdown(
                        c.predicted_use,
                        c.allowed_use,
                        demand_response(&c.preferences, c.predicted_use, below),
                    )
                })
                .sum();
            assert!(
                total > report.capacity_target - KilowattHours(1e-6),
                "a lower price should not clear"
            );
        }
    }

    #[test]
    fn market_vs_reward_tables_comparison_runs() {
        let scenario = ScenarioBuilder::random(100, 0.35, 11).build();
        let market = run_market(&scenario, AuctionConfig::default());
        let tables = scenario.run();
        // Both reduce the peak; the comparison itself is experiment E10.
        assert!(market.final_total <= scenario.initial_total());
        assert!(tables.final_overuse() <= tables.initial_overuse());
    }

    #[test]
    fn display_mentions_price() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = run_market(&scenario, AuctionConfig::default());
        assert!(report.to_string().contains("price"));
    }
}
