//! Protocol messages exchanged in the distributed execution mode.
//!
//! The vocabulary follows §3.2 of the paper: announcements flow from the
//! Utility Agent to all Customer Agents, bids flow back, and awards
//! confirm accepted bids. Peripheral traffic covers the Producer Agent
//! (availability/cost) and the Resource Consumer Agents (saving
//! potential).

use crate::reward::RewardTable;
use powergrid::time::Interval;
use powergrid::units::{Fraction, KilowattHours, Kilowatts, Money, PricePerKwh};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    // ----- announce-reward-tables method (§3.2.3) -----
    /// UA → CA: a reward table for `round`.
    ///
    /// The table is behind an [`Arc`]: one round's announcement goes to
    /// *every* customer, so the negotiation hot loop shares one
    /// snapshot per round instead of cloning the entry vector per
    /// recipient (serialization is transparent — real `serde`
    /// serializes through the `Arc`).
    Announce {
        /// Negotiation round, 1-based.
        round: u32,
        /// The announced table (shared per-round snapshot).
        table: Arc<RewardTable>,
    },
    /// CA → UA: the chosen cut-down for `round`.
    Bid {
        /// Negotiation round the bid answers.
        round: u32,
        /// The chosen cut-down ("the highest acceptable cut-down").
        cutdown: Fraction,
    },
    /// UA → CA: the bid is accepted; the reward will be paid if the
    /// cut-down is implemented.
    Award {
        /// Final negotiation round.
        round: u32,
        /// The cut-down being rewarded.
        cutdown: Fraction,
        /// The reward due.
        reward: Money,
    },

    // ----- offer method (§3.2.1) -----
    /// UA → CA: take-it-or-leave-it offer — "use at most `x_max` of your
    /// allowance at the lower price; excess at the higher price".
    Offer {
        /// The fraction of allowed use covered by the lower price.
        x_max: Fraction,
    },
    /// CA → UA: "Customer Agents may only answer 'yes' or 'no'".
    OfferReply {
        /// The yes/no answer.
        accept: bool,
    },

    // ----- request-for-bids method (§3.2.2) -----
    /// UA → CA: request for bids in `round`.
    RequestBids {
        /// Negotiation round, 1-based.
        round: u32,
    },
    /// CA → UA: "how much electricity it really needs": `y_min`, plus the
    /// cut-down it corresponds to.
    NeedBid {
        /// Negotiation round the bid answers.
        round: u32,
        /// The electricity the customer commits to needing at most.
        y_min: KilowattHours,
        /// The equivalent cut-down fraction of allowed use.
        cutdown: Fraction,
    },

    // ----- Producer Agent traffic (§5.1) -----
    /// UA → PA: what can you produce and at what cost?
    QueryAvailability,
    /// PA → UA: capacity and marginal costs.
    Availability {
        /// Normal (cheap) capacity.
        normal_capacity: Kilowatts,
        /// Cost within normal capacity.
        normal_cost: PricePerKwh,
        /// Cost beyond normal capacity.
        expensive_cost: PricePerKwh,
    },

    // ----- Resource Consumer Agent traffic (§5.2) -----
    /// CA → RCA: how much can be saved during `interval`?
    QuerySavings {
        /// The cut-down interval.
        interval: Interval,
    },
    /// RCA → CA: the device's saving potential.
    Savings {
        /// Energy that can be shed during the interval.
        potential: KilowattHours,
    },
}

impl Msg {
    /// Short tag for logs and metrics.
    pub fn tag(&self) -> &'static str {
        match self {
            Msg::Announce { .. } => "announce",
            Msg::Bid { .. } => "bid",
            Msg::Award { .. } => "award",
            Msg::Offer { .. } => "offer",
            Msg::OfferReply { .. } => "offer-reply",
            Msg::RequestBids { .. } => "request-bids",
            Msg::NeedBid { .. } => "need-bid",
            Msg::QueryAvailability => "query-availability",
            Msg::Availability { .. } => "availability",
            Msg::QuerySavings { .. } => "query-savings",
            Msg::Savings { .. } => "savings",
        }
    }

    /// The negotiation round the message belongs to, if any.
    pub fn round(&self) -> Option<u32> {
        match self {
            Msg::Announce { round, .. }
            | Msg::Bid { round, .. }
            | Msg::Award { round, .. }
            | Msg::RequestBids { round }
            | Msg::NeedBid { round, .. } => Some(*round),
            _ => None,
        }
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Msg::Announce { round, table } => write!(f, "announce[r{round}] {table}"),
            Msg::Bid { round, cutdown } => write!(f, "bid[r{round}] {cutdown}"),
            Msg::Award {
                round,
                cutdown,
                reward,
            } => {
                write!(f, "award[r{round}] {cutdown} for {reward}")
            }
            Msg::Offer { x_max } => write!(f, "offer x_max={x_max}"),
            Msg::OfferReply { accept } => {
                write!(f, "offer-reply {}", if *accept { "yes" } else { "no" })
            }
            Msg::RequestBids { round } => write!(f, "request-bids[r{round}]"),
            Msg::NeedBid {
                round,
                y_min,
                cutdown,
            } => {
                write!(f, "need-bid[r{round}] y_min={y_min} ({cutdown})")
            }
            Msg::QueryAvailability => f.write_str("query-availability"),
            Msg::Availability {
                normal_capacity, ..
            } => {
                write!(f, "availability {normal_capacity}")
            }
            Msg::QuerySavings { interval } => write!(f, "query-savings {interval}"),
            Msg::Savings { potential } => write!(f, "savings {potential}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::DEFAULT_LEVELS;

    fn fr(v: f64) -> Fraction {
        Fraction::clamped(v)
    }

    #[test]
    fn tags_are_distinct() {
        let msgs = [
            Msg::Announce {
                round: 1,
                table: Arc::new(RewardTable::quadratic(
                    Interval::new(0, 4),
                    &DEFAULT_LEVELS,
                    Money(17.0),
                    fr(0.4),
                )),
            },
            Msg::Bid {
                round: 1,
                cutdown: fr(0.2),
            },
            Msg::Award {
                round: 3,
                cutdown: fr(0.4),
                reward: Money(24.8),
            },
            Msg::Offer { x_max: fr(0.8) },
            Msg::OfferReply { accept: true },
            Msg::RequestBids { round: 2 },
            Msg::NeedBid {
                round: 2,
                y_min: KilowattHours(5.0),
                cutdown: fr(0.3),
            },
            Msg::QueryAvailability,
            Msg::Availability {
                normal_capacity: Kilowatts(100.0),
                normal_cost: PricePerKwh(0.3),
                expensive_cost: PricePerKwh(1.1),
            },
            Msg::QuerySavings {
                interval: Interval::new(0, 4),
            },
            Msg::Savings {
                potential: KilowattHours(2.0),
            },
        ];
        let tags: std::collections::HashSet<_> = msgs.iter().map(|m| m.tag()).collect();
        assert_eq!(tags.len(), msgs.len());
    }

    #[test]
    fn rounds_extracted() {
        assert_eq!(
            Msg::Bid {
                round: 3,
                cutdown: fr(0.1)
            }
            .round(),
            Some(3)
        );
        assert_eq!(Msg::QueryAvailability.round(), None);
    }

    #[test]
    fn display_is_informative() {
        let m = Msg::Award {
            round: 3,
            cutdown: fr(0.4),
            reward: Money(24.8),
        };
        let s = m.to_string();
        assert!(s.contains("r3"));
        assert!(s.contains("24.8"));
    }
}
