//! The three announcement methods of §3.2.
//!
//! | Method | Rounds | Customer influence | §3.2.4 verdict |
//! |---|---|---|---|
//! | [`offer`] | 1 | yes/no only | "very fast", coarse targeting |
//! | [`request_bids`] | many | maximal | "complex and time consuming" |
//! | [`reward_table`] | few | chooses from table | the prototype's strategy |

pub mod offer;
pub mod request_bids;
pub mod reward_table;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which announcement method a negotiation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnnouncementMethod {
    /// §3.2.1 — one-round take-it-or-leave-it offer.
    Offer,
    /// §3.2.2 — iterated request for bids.
    RequestForBids,
    /// §3.2.3 — announced reward tables (the prototype).
    RewardTables,
}

impl AnnouncementMethod {
    /// All three methods, in paper order.
    pub fn all() -> [AnnouncementMethod; 3] {
        [
            AnnouncementMethod::Offer,
            AnnouncementMethod::RequestForBids,
            AnnouncementMethod::RewardTables,
        ]
    }
}

impl fmt::Display for AnnouncementMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AnnouncementMethod::Offer => "offer",
            AnnouncementMethod::RequestForBids => "request-for-bids",
            AnnouncementMethod::RewardTables => "reward-tables",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_distinct_methods() {
        let all = AnnouncementMethod::all();
        assert_eq!(all.len(), 3);
        let names: std::collections::HashSet<String> = all.iter().map(|m| m.to_string()).collect();
        assert_eq!(names.len(), 3);
    }
}
