//! The offer method (§3.2.1): one-round take-it-or-leave-it.
//!
//! "The offer the Utility Agent proposes to its Customer Agents is that
//! if they only use x_max % of a given amount of electricity, they will
//! receive that electricity for a lower price. ... Customer Agents may
//! only answer 'yes' or 'no' to this offer."

use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, Scenario};
use crate::sync_driver::SyncDriver;

/// Runs the offer method on a scenario (a facade over
/// [`SyncDriver`] and the shared [`crate::engine::UtilityEngine`], which
/// holds the §3.2.1 accept/decline and billing-advantage logic).
pub fn run(scenario: &Scenario) -> NegotiationReport {
    SyncDriver::with_method(scenario, AnnouncementMethod::Offer).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;
    use powergrid::units::Fraction;

    #[test]
    fn single_round_always() {
        let report = ScenarioBuilder::paper_figure_6()
            .method(AnnouncementMethod::Offer)
            .build()
            .run();
        assert_eq!(report.rounds().len(), 1);
        assert!(report.converged());
        assert_eq!(report.total_messages(), 40);
    }

    #[test]
    fn acceptors_reduce_overuse() {
        let report = ScenarioBuilder::random(100, 0.35, 5)
            .method(AnnouncementMethod::Offer)
            .build()
            .run();
        assert!(
            report.final_overuse() <= report.initial_overuse(),
            "offer must not worsen the peak"
        );
        // Someone accepts in a heterogeneous population.
        assert!(report.final_bids().iter().any(|b| b.value() > 0.0));
    }

    #[test]
    fn all_customers_get_identical_terms() {
        // §3.2.1: "all customers are treated in the same way" — the offer
        // itself has no per-customer parameters; verify settlements only
        // differ because predicted uses and preferences differ.
        let report = ScenarioBuilder::paper_figure_6()
            .method(AnnouncementMethod::Offer)
            .build()
            .run();
        // The two k=1.0 customers are identical, so their settlements are.
        assert_eq!(report.settlements()[0], report.settlements()[1]);
    }

    #[test]
    fn stricter_offer_cuts_more_but_fewer_accept() {
        let lenient = ScenarioBuilder::random(200, 0.35, 9)
            .config(
                crate::utility_agent::UtilityAgentConfig::paper()
                    .with_offer_x_max(Fraction::clamped(0.9)),
            )
            .method(AnnouncementMethod::Offer)
            .build()
            .run();
        let strict = ScenarioBuilder::random(200, 0.35, 9)
            .config(
                crate::utility_agent::UtilityAgentConfig::paper()
                    .with_offer_x_max(Fraction::clamped(0.5)),
            )
            .method(AnnouncementMethod::Offer)
            .build()
            .run();
        let acceptors =
            |r: &NegotiationReport| r.final_bids().iter().filter(|b| b.value() > 0.0).count();
        assert!(
            acceptors(&strict) <= acceptors(&lenient),
            "a harsher cap cannot attract more acceptors"
        );
    }
}
