//! The offer method (§3.2.1): one-round take-it-or-leave-it.
//!
//! "The offer the Utility Agent proposes to its Customer Agents is that
//! if they only use x_max % of a given amount of electricity, they will
//! receive that electricity for a lower price. ... Customer Agents may
//! only answer 'yes' or 'no' to this offer."

use crate::concession::{NegotiationStatus, TerminationReason};
use crate::customer_agent::decide_offer;
use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, RoundRecord, Scenario, Settlement};
use powergrid::units::{Fraction, KilowattHours, Money};

/// Runs the offer method on a scenario.
pub fn run(scenario: &Scenario) -> NegotiationReport {
    let n = scenario.customers.len() as u64;
    let x_max = scenario.config.offer_x_max;
    let mut bids = Vec::with_capacity(scenario.customers.len());
    let mut settlements = Vec::with_capacity(scenario.customers.len());
    let mut predicted_total = KilowattHours::ZERO;

    for customer in &scenario.customers {
        let accept = decide_offer(
            &customer.preferences,
            customer.predicted_use,
            customer.allowed_use,
            x_max,
            &scenario.tariff,
        );
        if accept {
            let limit = x_max * customer.allowed_use;
            let new_use = customer.predicted_use.min(limit);
            // The implied cut-down, as a fraction of predicted use.
            let cutdown = if customer.predicted_use.value() > f64::EPSILON {
                Fraction::clamped(
                    (customer.predicted_use - new_use) / customer.predicted_use,
                )
            } else {
                Fraction::ZERO
            };
            // The "reward" is the billing advantage the utility grants.
            let reward = scenario.tariff.bill_normal(customer.predicted_use)
                - scenario.tariff.bill_with_limit(new_use, limit);
            predicted_total += new_use;
            bids.push(cutdown);
            settlements.push(Settlement { cutdown, reward: reward.max(Money::ZERO) });
        } else {
            predicted_total += customer.predicted_use;
            bids.push(Fraction::ZERO);
            settlements.push(Settlement { cutdown: Fraction::ZERO, reward: Money::ZERO });
        }
    }

    let rounds = vec![RoundRecord {
        round: 1,
        table: None,
        bids,
        predicted_total,
        // Offer out (N) + yes/no back (N).
        messages: 2 * n,
    }];

    NegotiationReport::new(
        AnnouncementMethod::Offer,
        scenario.normal_use,
        scenario.initial_total(),
        rounds,
        NegotiationStatus::Converged(TerminationReason::SingleRound),
        settlements,
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;

    #[test]
    fn single_round_always() {
        let report = ScenarioBuilder::paper_figure_6()
            .method(AnnouncementMethod::Offer)
            .build()
            .run();
        assert_eq!(report.rounds().len(), 1);
        assert!(report.converged());
        assert_eq!(report.total_messages(), 40);
    }

    #[test]
    fn acceptors_reduce_overuse() {
        let report = ScenarioBuilder::random(100, 0.35, 5)
            .method(AnnouncementMethod::Offer)
            .build()
            .run();
        assert!(
            report.final_overuse() <= report.initial_overuse(),
            "offer must not worsen the peak"
        );
        // Someone accepts in a heterogeneous population.
        assert!(report.final_bids().iter().any(|b| b.value() > 0.0));
    }

    #[test]
    fn all_customers_get_identical_terms() {
        // §3.2.1: "all customers are treated in the same way" — the offer
        // itself has no per-customer parameters; verify settlements only
        // differ because predicted uses and preferences differ.
        let report = ScenarioBuilder::paper_figure_6()
            .method(AnnouncementMethod::Offer)
            .build()
            .run();
        // The two k=1.0 customers are identical, so their settlements are.
        assert_eq!(report.settlements()[0], report.settlements()[1]);
    }

    #[test]
    fn stricter_offer_cuts_more_but_fewer_accept() {
        let lenient = ScenarioBuilder::random(200, 0.35, 9)
            .config(
                crate::utility_agent::UtilityAgentConfig::paper()
                    .with_offer_x_max(Fraction::clamped(0.9)),
            )
            .method(AnnouncementMethod::Offer)
            .build()
            .run();
        let strict = ScenarioBuilder::random(200, 0.35, 9)
            .config(
                crate::utility_agent::UtilityAgentConfig::paper()
                    .with_offer_x_max(Fraction::clamped(0.5)),
            )
            .method(AnnouncementMethod::Offer)
            .build()
            .run();
        let acceptors = |r: &NegotiationReport| {
            r.final_bids().iter().filter(|b| b.value() > 0.0).count()
        };
        assert!(
            acceptors(&strict) <= acceptors(&lenient),
            "a harsher cap cannot attract more acceptors"
        );
    }
}
