//! The request-for-bids method (§3.2.2): iterated, maximal customer
//! influence.
//!
//! "Each Customer Agent is obliged to respond by saying how much
//! electricity it really needs when a reward is promised: y_min. ...
//! they respond by doing either the same bid again ('stand still') or by
//! doing a (slightly) better bid ('one step forward')."

use crate::concession::{NegotiationStatus, TerminationReason};
use crate::customer_agent::rfb_step;
use crate::methods::AnnouncementMethod;
use crate::reward::{overuse_fraction, predicted_use_with_cutdown};
use crate::session::{NegotiationReport, RoundRecord, Scenario, Settlement};
use powergrid::units::{Fraction, KilowattHours, Money};

/// Runs the request-for-bids method on a scenario.
pub fn run(scenario: &Scenario) -> NegotiationReport {
    let n = scenario.customers.len() as u64;
    let mut commitments: Vec<Fraction> = vec![Fraction::ZERO; scenario.customers.len()];
    let mut rounds = Vec::new();
    let mut status = NegotiationStatus::MaxRoundsExceeded;

    for round in 1..=scenario.config.max_rounds {
        // Request (N) + responses (N).
        let mut moved = false;
        for (c, commitment) in scenario.customers.iter().zip(commitments.iter_mut()) {
            let next = rfb_step(
                &c.preferences,
                *commitment,
                c.predicted_use,
                c.allowed_use,
                &scenario.tariff,
            );
            if next > *commitment {
                moved = true;
            }
            *commitment = next;
        }
        let predicted_total: KilowattHours = scenario
            .customers
            .iter()
            .zip(&commitments)
            .map(|(c, &b)| predicted_use_with_cutdown(c.predicted_use, c.allowed_use, b))
            .sum();
        rounds.push(RoundRecord {
            round,
            table: None,
            bids: commitments.clone(),
            predicted_total,
            messages: 2 * n,
        });
        let overuse = overuse_fraction(predicted_total, scenario.normal_use);
        if overuse <= scenario.config.max_allowed_overuse {
            status = NegotiationStatus::Converged(TerminationReason::OveruseAcceptable);
            break;
        }
        if !moved {
            status = NegotiationStatus::Converged(TerminationReason::NoMovement);
            break;
        }
    }

    // Settlement: awarded bids pay the lower price for y_min, higher for
    // the excess; report the billing advantage as the reward analogue.
    let settlements: Vec<Settlement> = scenario
        .customers
        .iter()
        .zip(&commitments)
        .map(|(c, &cutdown)| {
            if cutdown == Fraction::ZERO {
                return Settlement { cutdown, reward: Money::ZERO };
            }
            let y_min = cutdown.complement() * c.allowed_use;
            let committed_use = c.predicted_use.min(y_min);
            let reward = scenario.tariff.bill_normal(c.predicted_use)
                - scenario.tariff.bill_with_limit(committed_use, y_min);
            Settlement { cutdown, reward: reward.max(Money::ZERO) }
        })
        .collect();

    NegotiationReport::new(
        AnnouncementMethod::RequestForBids,
        scenario.normal_use,
        scenario.initial_total(),
        rounds,
        status,
        settlements,
        n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concession::verify_bids;
    use crate::session::ScenarioBuilder;

    #[test]
    fn terminates_on_every_random_population() {
        for seed in 0..10 {
            let report = ScenarioBuilder::random(60, 0.35, seed)
                .method(AnnouncementMethod::RequestForBids)
                .build()
                .run();
            assert!(report.converged(), "seed {seed}: {report}");
        }
    }

    #[test]
    fn bids_step_forward_monotonically() {
        let report = ScenarioBuilder::random(40, 0.35, 3)
            .method(AnnouncementMethod::RequestForBids)
            .build()
            .run();
        let bid_rounds: Vec<Vec<Fraction>> =
            report.rounds().iter().map(|r| r.bids.clone()).collect();
        assert!(verify_bids(&bid_rounds).is_ok());
    }

    #[test]
    fn takes_more_rounds_than_reward_tables() {
        // §3.2.4: "this type of announcement may entail a more complex
        // and time consuming negotiation process".
        let scenario = ScenarioBuilder::random(100, 0.35, 7).build();
        let rfb = scenario.run_with(AnnouncementMethod::RequestForBids);
        let rt = scenario.run_with(AnnouncementMethod::RewardTables);
        assert!(
            rfb.rounds().len() >= rt.rounds().len(),
            "request-for-bids ({}) should not finish before reward tables ({})",
            rfb.rounds().len(),
            rt.rounds().len()
        );
    }

    #[test]
    fn no_movement_detected_with_rigid_population() {
        let mut b = ScenarioBuilder::new();
        for _ in 0..5 {
            b = b.customer(crate::session::CustomerProfile {
                predicted_use: KilowattHours(27.0),
                allowed_use: KilowattHours(27.0),
                preferences: crate::preferences::CustomerPreferences::from_base_scaled(
                    100.0,
                    Fraction::clamped(0.5),
                ),
            });
        }
        let report = b.method(AnnouncementMethod::RequestForBids).build().run();
        assert_eq!(
            report.status(),
            NegotiationStatus::Converged(TerminationReason::NoMovement)
        );
    }

    #[test]
    fn settlements_reflect_commitments() {
        let report = ScenarioBuilder::random(50, 0.3, 5)
            .method(AnnouncementMethod::RequestForBids)
            .build()
            .run();
        for (s, &final_bid) in report
            .settlements()
            .iter()
            .zip(&report.rounds().last().unwrap().bids)
        {
            assert_eq!(s.cutdown, final_bid);
            if s.cutdown > Fraction::ZERO {
                assert!(s.reward >= Money::ZERO);
            }
        }
    }
}
