//! The request-for-bids method (§3.2.2): iterated, maximal customer
//! influence.
//!
//! "Each Customer Agent is obliged to respond by saying how much
//! electricity it really needs when a reward is promised: y_min. ...
//! they respond by doing either the same bid again ('stand still') or by
//! doing a (slightly) better bid ('one step forward')."

use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, Scenario};
use crate::sync_driver::SyncDriver;

/// Runs the request-for-bids method on a scenario (a facade over
/// [`SyncDriver`] and the shared [`crate::engine::UtilityEngine`], which
/// holds the §3.2.2 stand-still/step-forward and settlement logic).
pub fn run(scenario: &Scenario) -> NegotiationReport {
    SyncDriver::with_method(scenario, AnnouncementMethod::RequestForBids).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concession::{verify_bids, NegotiationStatus, TerminationReason};
    use crate::session::ScenarioBuilder;
    use powergrid::units::{Fraction, KilowattHours, Money};

    #[test]
    fn terminates_on_every_random_population() {
        for seed in 0..10 {
            let report = ScenarioBuilder::random(60, 0.35, seed)
                .method(AnnouncementMethod::RequestForBids)
                .build()
                .run();
            assert!(report.converged(), "seed {seed}: {report}");
        }
    }

    #[test]
    fn bids_step_forward_monotonically() {
        let report = ScenarioBuilder::random(40, 0.35, 3)
            .method(AnnouncementMethod::RequestForBids)
            .build()
            .run();
        let bid_rounds: Vec<Vec<Fraction>> =
            report.rounds().iter().map(|r| r.bids.clone()).collect();
        assert!(verify_bids(&bid_rounds).is_ok());
    }

    #[test]
    fn iterated_bidding_is_slower_than_the_one_shot_offer() {
        // §3.2.4: "this type of announcement may entail a more complex
        // and time consuming negotiation process". Whether it beats the
        // reward tables on *rounds* depends on the population; what holds
        // structurally is that the iterated method needs multiple rounds
        // (one tabled level per step) where the offer needs exactly one.
        for seed in 0..10 {
            let scenario = ScenarioBuilder::random(100, 0.35, seed).build();
            let rfb = scenario.run_with(AnnouncementMethod::RequestForBids);
            let offer = scenario.run_with(AnnouncementMethod::Offer);
            assert!(
                rfb.rounds().len() > offer.rounds().len(),
                "seed {seed}: request-for-bids ({}) should iterate past the \
                 single-round offer",
                rfb.rounds().len()
            );
            assert!(rfb.total_messages() > offer.total_messages(), "seed {seed}");
        }
    }

    #[test]
    fn no_movement_detected_with_rigid_population() {
        let mut b = ScenarioBuilder::new();
        for _ in 0..5 {
            b = b.customer(crate::session::CustomerProfile {
                predicted_use: KilowattHours(27.0),
                allowed_use: KilowattHours(27.0),
                preferences: crate::preferences::CustomerPreferences::from_base_scaled(
                    100.0,
                    Fraction::clamped(0.5),
                ),
            });
        }
        let report = b.method(AnnouncementMethod::RequestForBids).build().run();
        assert_eq!(
            report.status(),
            NegotiationStatus::Converged(TerminationReason::NoMovement)
        );
    }

    #[test]
    fn settlements_reflect_commitments() {
        let report = ScenarioBuilder::random(50, 0.3, 5)
            .method(AnnouncementMethod::RequestForBids)
            .build()
            .run();
        for (s, &final_bid) in report
            .settlements()
            .iter()
            .zip(&report.rounds().last().unwrap().bids)
        {
            assert_eq!(s.cutdown, final_bid);
            if s.cutdown > Fraction::ZERO {
                assert!(s.reward >= Money::ZERO);
            }
        }
    }
}
