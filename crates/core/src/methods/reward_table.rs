//! The announce-reward-tables method (§3.2.3) — the paper's prototype.
//!
//! Each round: the UA announces a reward table to every CA (identical for
//! all, per Swedish law); every CA replies with its highest acceptable
//! cut-down (never retreating); the UA predicts the new balance with the
//! §6 formulae and either accepts or announces a dominating table.

use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, Scenario};
use crate::sync_driver::SyncDriver;

/// Runs the reward-table negotiation on a scenario (a facade over
/// [`SyncDriver`]; the announce/collect/evaluate round logic lives in
/// the shared [`crate::engine::UtilityEngine`], which drives the same
/// [`crate::utility_agent::RewardTableNegotiator`] in every execution
/// mode).
pub fn run(scenario: &Scenario) -> NegotiationReport {
    SyncDriver::with_method(scenario, AnnouncementMethod::RewardTables).run()
}

#[cfg(test)]
mod tests {
    use crate::beta::BetaPolicy;
    use crate::concession::{
        verify_announcements, verify_bids, NegotiationStatus, TerminationReason,
    };
    use crate::session::ScenarioBuilder;
    use powergrid::units::{Fraction, KilowattHours};

    #[test]
    fn announcements_and_bids_are_monotone() {
        let report = ScenarioBuilder::paper_figure_6().build().run();
        let tables: Vec<_> = report
            .rounds()
            .iter()
            .filter_map(|r| r.table.as_deref().cloned())
            .collect();
        assert!(verify_announcements(&tables).is_ok());
        let bid_rounds: Vec<Vec<Fraction>> =
            report.rounds().iter().map(|r| r.bids.clone()).collect();
        assert!(verify_bids(&bid_rounds).is_ok());
    }

    #[test]
    fn always_converges_on_random_populations() {
        for seed in 0..20 {
            let report = ScenarioBuilder::random(50, 0.35, seed).build().run();
            assert!(report.converged(), "seed {seed} did not converge: {report}");
        }
    }

    #[test]
    fn overuse_never_increases_across_rounds() {
        let report = ScenarioBuilder::random(80, 0.4, 11).build().run();
        let mut prev = f64::INFINITY;
        for r in report.rounds() {
            let ou = r.overuse_fraction(report.normal_use());
            assert!(ou <= prev + 1e-12, "overuse increased: {ou} after {prev}");
            prev = ou;
        }
    }

    #[test]
    fn saturation_with_impossible_population() {
        // Customers so reluctant no reward below max can move them.
        let mut b = ScenarioBuilder::new();
        for _ in 0..10 {
            b = b.customer(crate::session::CustomerProfile {
                predicted_use: KilowattHours(13.5),
                allowed_use: KilowattHours(13.5),
                preferences: crate::preferences::CustomerPreferences::from_base_scaled(
                    50.0,
                    Fraction::clamped(0.5),
                ),
            });
        }
        let report = b.build().run();
        assert_eq!(
            report.status(),
            NegotiationStatus::Converged(TerminationReason::RewardSaturated)
        );
        // Overuse unchanged: nobody moved.
        assert!((report.final_overuse_fraction() - 0.35).abs() < 1e-9);
        assert_eq!(report.total_rewards(), powergrid::units::Money::ZERO);
    }

    #[test]
    fn higher_beta_converges_in_fewer_rounds() {
        let slow = ScenarioBuilder::random(50, 0.35, 3)
            .config(
                crate::utility_agent::UtilityAgentConfig::paper()
                    .with_beta_policy(BetaPolicy::constant(0.5)),
            )
            .build()
            .run();
        let fast = ScenarioBuilder::random(50, 0.35, 3)
            .config(
                crate::utility_agent::UtilityAgentConfig::paper()
                    .with_beta_policy(BetaPolicy::constant(4.0)),
            )
            .build()
            .run();
        assert!(
            fast.rounds().len() <= slow.rounds().len(),
            "β=4 ({}) should not need more rounds than β=0.5 ({})",
            fast.rounds().len(),
            slow.rounds().len()
        );
    }

    #[test]
    fn message_count_is_two_n_per_round_plus_awards() {
        let report = ScenarioBuilder::paper_figure_6().build().run();
        let n = 20u64;
        let expected = report.rounds().len() as u64 * 2 * n + n;
        assert_eq!(report.total_messages(), expected);
    }

    #[test]
    fn settlements_pay_final_table_rewards() {
        let report = ScenarioBuilder::paper_figure_6().build().run();
        let last = report.rounds().last().unwrap();
        let table = last.table.as_ref().unwrap();
        for (s, &bid) in report.settlements().iter().zip(&last.bids) {
            assert_eq!(s.cutdown, bid);
            assert_eq!(s.reward, table.reward_for(bid));
        }
    }
}
