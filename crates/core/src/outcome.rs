//! Settlement accounting: who gained what from a negotiation.
//!
//! "The bidding process ... can be seen as a process in which both agents
//! need to succeed to make a good deal" (§3.1). This module quantifies
//! that: the utility trades rewards for avoided expensive production;
//! customers trade comfort for rewards.

use crate::customer_agent::settlement_gain;
use crate::producer_agent::ProducerAgent;
use crate::session::{NegotiationReport, Scenario};
use powergrid::units::{KilowattHours, Money};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Monetary summary of one settled negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SettlementSummary {
    /// Rewards (or billing advantages) the utility committed to.
    pub rewards_paid: Money,
    /// Peak energy removed by the accepted cut-downs.
    pub energy_saved: KilowattHours,
    /// Production cost avoided by not serving the removed energy at the
    /// expensive tier.
    pub production_cost_avoided: Money,
    /// The utility's net gain: avoided cost − rewards paid.
    pub utility_net_gain: Money,
    /// Sum of customer surpluses (reward − effort threshold).
    pub customer_surplus: Money,
    /// Number of customers with a non-zero cut-down.
    pub participants: usize,
}

impl SettlementSummary {
    /// Computes the summary for a report against its scenario and a
    /// producer agent.
    ///
    /// `peak_hours` is the wall-clock length of the cut-down interval
    /// (energy→power conversion for the production-cost comparison).
    ///
    /// # Panics
    ///
    /// Panics if `peak_hours` is not positive or the report's customer
    /// count differs from the scenario's.
    pub fn compute(
        scenario: &Scenario,
        report: &NegotiationReport,
        producer: &ProducerAgent,
        peak_hours: f64,
    ) -> SettlementSummary {
        assert!(peak_hours > 0.0, "peak length must be positive");
        assert_eq!(
            scenario.customers.len(),
            report.settlements().len(),
            "report does not match scenario"
        );
        let rewards_paid = report.total_rewards();
        let energy_saved = (report.initial_overuse() - report.final_overuse()).clamp_non_negative();
        // All saved energy comes out of the expensive tier while overuse
        // remains (demand above normal capacity by construction).
        let initial_cost =
            producer.cost_of_energy(scenario.normal_use + report.initial_overuse(), peak_hours);
        let final_cost =
            producer.cost_of_energy(scenario.normal_use + report.final_overuse(), peak_hours);
        let production_cost_avoided = (initial_cost - final_cost).clamp_non_negative();
        let customer_surplus = scenario
            .customers
            .iter()
            .zip(report.settlements())
            .map(|(c, s)| settlement_gain(&c.preferences, s.cutdown, s.reward))
            .sum();
        let participants = report
            .settlements()
            .iter()
            .filter(|s| s.cutdown.value() > 0.0)
            .count();
        SettlementSummary {
            rewards_paid,
            energy_saved,
            production_cost_avoided,
            utility_net_gain: production_cost_avoided - rewards_paid,
            customer_surplus,
            participants,
        }
    }

    /// True if the deal was mutually beneficial in aggregate.
    pub fn mutually_beneficial(&self) -> bool {
        self.utility_net_gain >= Money::ZERO && self.customer_surplus >= Money::ZERO
    }
}

impl fmt::Display for SettlementSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "saved {} | avoided {} | rewards {} | utility net {} | customer surplus {} | {} participants",
            self.energy_saved,
            self.production_cost_avoided,
            self.rewards_paid,
            self.utility_net_gain,
            self.customer_surplus,
            self.participants
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;
    use powergrid::production::ProductionModel;
    use powergrid::units::Kilowatts;

    fn producer() -> ProducerAgent {
        // Expensive tier far above normal: peak energy is costly, so
        // negotiated savings are worth real money.
        ProducerAgent::new(ProductionModel::with_costs(
            Kilowatts(50.0),
            Kilowatts(100.0),
            powergrid::units::PricePerKwh(0.3),
            powergrid::units::PricePerKwh(40.0),
        ))
    }

    #[test]
    fn paper_scenario_is_mutually_beneficial() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = scenario.run();
        let summary = SettlementSummary::compute(&scenario, &report, &producer(), 2.0);
        assert!(summary.energy_saved.value() > 0.0);
        assert!(summary.participants > 0);
        assert!(
            summary.customer_surplus >= Money::ZERO,
            "customers only bid when the reward covers their threshold"
        );
        assert!(summary.mutually_beneficial(), "{summary}");
    }

    #[test]
    fn no_deal_no_flows() {
        use crate::preferences::CustomerPreferences;
        use crate::session::CustomerProfile;
        use powergrid::units::Fraction;
        let mut b = ScenarioBuilder::new();
        for _ in 0..5 {
            b = b.customer(CustomerProfile {
                predicted_use: KilowattHours(27.0),
                allowed_use: KilowattHours(27.0),
                preferences: CustomerPreferences::from_base_scaled(100.0, Fraction::clamped(0.5)),
            });
        }
        let scenario = b.build();
        let report = scenario.run();
        let summary = SettlementSummary::compute(&scenario, &report, &producer(), 2.0);
        assert_eq!(summary.participants, 0);
        assert_eq!(summary.rewards_paid, Money::ZERO);
        assert_eq!(summary.energy_saved, KilowattHours::ZERO);
    }

    #[test]
    #[should_panic(expected = "peak length")]
    fn zero_peak_hours_panics() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = scenario.run();
        let _ = SettlementSummary::compute(&scenario, &report, &producer(), 0.0);
    }

    #[test]
    fn display_mentions_flows() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = scenario.run();
        let summary = SettlementSummary::compute(&scenario, &report, &producer(), 2.0);
        assert!(summary.to_string().contains("participants"));
    }
}
