//! Customer preferences: the cut-down/required-reward table.
//!
//! "Within the Customer Agent, knowledge of the customer's preferences is
//! represented in the form of a cut-down-reward table. The cut-down-reward
//! table specifies the percentage with which a Customer Agent is willing
//! to decrease (cut-down) its electricity usage, given a specific level of
//! financial compensation" (Section 6.2).

use crate::reward::RewardTable;
use powergrid::units::{Fraction, Money};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A customer's private required-reward thresholds per cut-down level.
///
/// # Example
///
/// ```
/// use loadbal_core::preferences::CustomerPreferences;
/// use powergrid::units::{Fraction, Money};
///
/// // The Figure 8/9 customer: requires ≥ 10 for 0.3 and ≥ 21 for 0.4.
/// let prefs = CustomerPreferences::paper_figure_8();
/// assert_eq!(prefs.required_for(Fraction::clamped(0.3)), Some(Money(10.0)));
/// assert_eq!(prefs.required_for(Fraction::clamped(0.4)), Some(Money(21.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomerPreferences {
    /// `(cutdown, minimum acceptable reward)`, sorted by cut-down.
    thresholds: Vec<(Fraction, Money)>,
    /// Physical/comfort ceiling on cut-down (from the Resource Consumer
    /// Agents: "the amount of electricity that can be saved in a given
    /// time interval").
    max_cutdown: Fraction,
}

impl CustomerPreferences {
    /// Creates preferences from `(cutdown, required reward)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds` is empty, has duplicate cut-downs, or the
    /// required reward decreases as the cut-down grows (a rational
    /// customer never demands less for giving up more).
    pub fn new(
        mut thresholds: Vec<(Fraction, Money)>,
        max_cutdown: Fraction,
    ) -> CustomerPreferences {
        assert!(
            !thresholds.is_empty(),
            "preferences need at least one threshold"
        );
        thresholds.sort_by_key(|e| e.0);
        for w in thresholds.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate cut-down {}", w[1].0);
            assert!(
                w[0].1 <= w[1].1,
                "required reward decreases from {} at {} to {} at {}",
                w[0].1,
                w[0].0,
                w[1].1,
                w[1].0
            );
        }
        CustomerPreferences {
            thresholds,
            max_cutdown,
        }
    }

    /// The highlighted customer of Figures 8–9: thresholds
    /// 0→0, 0.1→2, 0.2→4, 0.3→10, 0.4→21, 0.5→30.
    pub fn paper_figure_8() -> CustomerPreferences {
        CustomerPreferences::from_base_scaled(1.0, Fraction::clamped(0.5))
    }

    /// The Figure-8 threshold shape scaled by `k` (population
    /// heterogeneity: `k < 1` = more flexible, `k > 1` = more reluctant),
    /// with the given physical cut-down ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or non-finite.
    pub fn from_base_scaled(k: f64, max_cutdown: Fraction) -> CustomerPreferences {
        assert!(
            k >= 0.0 && k.is_finite(),
            "scale factor must be non-negative"
        );
        let base = [
            (0.0, 0.0),
            (0.1, 2.0),
            (0.2, 4.0),
            (0.3, 10.0),
            (0.4, 21.0),
            (0.5, 30.0),
        ];
        let thresholds = base
            .iter()
            .map(|&(c, r)| (Fraction::clamped(c), Money(r * k)))
            .collect();
        CustomerPreferences::new(thresholds, max_cutdown)
    }

    /// Generates a heterogeneous population of preferences, seeded.
    ///
    /// Scale factors are drawn uniformly from `[k_min, k_max]` and
    /// physical ceilings from the levels {0.3, 0.4, 0.5}.
    ///
    /// # Panics
    ///
    /// Panics if `k_min > k_max` or either is negative.
    pub fn population(n: usize, k_min: f64, k_max: f64, seed: u64) -> Vec<CustomerPreferences> {
        assert!(
            0.0 <= k_min && k_min <= k_max,
            "bad scale range [{k_min}, {k_max}]"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0c0f_fee0);
        (0..n)
            .map(|_| {
                let k = if (k_max - k_min).abs() < f64::EPSILON {
                    k_min
                } else {
                    rng.gen_range(k_min..=k_max)
                };
                let ceiling = [0.3, 0.4, 0.5][rng.gen_range(0..3usize)];
                CustomerPreferences::from_base_scaled(k, Fraction::clamped(ceiling))
            })
            .collect()
    }

    /// The thresholds, sorted by cut-down.
    pub fn thresholds(&self) -> &[(Fraction, Money)] {
        &self.thresholds
    }

    /// The physical/comfort ceiling on cut-downs.
    pub fn max_cutdown(&self) -> Fraction {
        self.max_cutdown
    }

    /// The required reward for an exact cut-down level (`None` if the
    /// level is not in the customer's table).
    pub fn required_for(&self, cutdown: Fraction) -> Option<Money> {
        self.thresholds
            .iter()
            .find(|&&(c, _)| c == cutdown)
            .map(|&(_, r)| r)
    }

    /// Whether `cutdown` at `offered` reward is acceptable: the level is
    /// known, within the physical ceiling, and the offer meets the
    /// threshold.
    pub fn accepts(&self, cutdown: Fraction, offered: Money) -> bool {
        if cutdown > self.max_cutdown {
            return false;
        }
        match self.required_for(cutdown) {
            Some(required) => offered >= required,
            None => false,
        }
    }

    /// The customer's response to an announced reward table: "the
    /// Customer Agent chooses the highest acceptable cut-down as its
    /// preferred cut-down" (Section 6.2), never retreating below
    /// `previous_bid` (monotonic concession, §3.1).
    pub fn respond(&self, table: &RewardTable, previous_bid: Fraction) -> Fraction {
        let mut best = previous_bid;
        for &(cutdown, offered) in table.entries() {
            if cutdown > best && self.accepts(cutdown, offered) {
                best = cutdown;
            }
        }
        best
    }

    /// Total "effort cost" the customer attaches to a cut-down — its own
    /// threshold, used in surplus accounting ([`crate::outcome`]).
    pub fn effort_cost(&self, cutdown: Fraction) -> Money {
        self.required_for(cutdown).unwrap_or(Money::ZERO)
    }

    /// The effort cost of an *arbitrary* cut-down fraction: the threshold
    /// of the smallest tabled level that covers it. Returns `None` when
    /// the fraction exceeds the physical ceiling or every tabled level —
    /// the customer simply cannot implement it.
    ///
    /// Used by the offer and request-for-bids methods, where the required
    /// cut-down is dictated by `x_max` rather than chosen from a table.
    pub fn effort_for_fraction(&self, cutdown: Fraction) -> Option<Money> {
        if cutdown > self.max_cutdown {
            return None;
        }
        self.thresholds
            .iter()
            .find(|&&(c, _)| c >= cutdown)
            .map(|&(_, r)| r)
    }

    /// The cut-down levels in the customer's table, ascending.
    pub fn levels(&self) -> impl Iterator<Item = Fraction> + '_ {
        self.thresholds.iter().map(|&(c, _)| c)
    }
}

impl fmt::Display for CustomerPreferences {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "max {} |", self.max_cutdown)?;
        for (c, r) in &self.thresholds {
            write!(f, " {c}⇒{:.1}", r.value())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::{RewardTable, DEFAULT_LEVELS};
    use powergrid::time::Interval;

    fn fr(v: f64) -> Fraction {
        Fraction::clamped(v)
    }

    fn round1_table() -> RewardTable {
        RewardTable::quadratic(Interval::new(72, 80), &DEFAULT_LEVELS, Money(17.0), fr(0.4))
    }

    #[test]
    fn figure_8_customer_thresholds() {
        let p = CustomerPreferences::paper_figure_8();
        assert_eq!(p.required_for(fr(0.3)), Some(Money(10.0)));
        assert_eq!(p.required_for(fr(0.4)), Some(Money(21.0)));
        assert_eq!(p.required_for(fr(0.15)), None);
    }

    #[test]
    fn figure_9_round_1_choice_is_0_2() {
        // Round 1 (Figure 9): table pinned at 17 for 0.4; the highlighted
        // customer accepts at most 0.2.
        let p = CustomerPreferences::paper_figure_8();
        let bid = p.respond(&round1_table(), Fraction::ZERO);
        assert_eq!(bid, fr(0.2));
    }

    #[test]
    fn figure_8_round_3_choice_is_0_4() {
        // Round 3 (Figure 8): reward(0.4) has grown to 24.8 ≥ 21, but
        // reward(0.5) has saturated below the 30 threshold (the logistic
        // factor caps it at max_reward = 30 only asymptotically).
        let p = CustomerPreferences::paper_figure_8();
        let table = RewardTable::new(
            Interval::new(72, 80),
            vec![
                (fr(0.0), Money(0.0)),
                (fr(0.1), Money(2.1)),
                (fr(0.2), Money(9.1)),
                (fr(0.3), Money(17.4)),
                (fr(0.4), Money(24.8)),
                (fr(0.5), Money(29.2)),
            ],
        );
        let bid = p.respond(&table, fr(0.2));
        assert_eq!(bid, fr(0.4));
    }

    #[test]
    fn respond_never_retreats() {
        let p = CustomerPreferences::paper_figure_8();
        // Previous bid 0.4; a table paying less than needed cannot pull
        // the bid back down.
        let stingy =
            RewardTable::quadratic(Interval::new(72, 80), &DEFAULT_LEVELS, Money(1.0), fr(0.4));
        assert_eq!(p.respond(&stingy, fr(0.4)), fr(0.4));
    }

    #[test]
    fn physical_ceiling_caps_bids() {
        let p = CustomerPreferences::from_base_scaled(0.1, fr(0.3));
        let generous =
            RewardTable::quadratic(Interval::new(72, 80), &DEFAULT_LEVELS, Money(30.0), fr(0.4));
        let bid = p.respond(&generous, Fraction::ZERO);
        assert_eq!(bid, fr(0.3), "cannot exceed physical ceiling");
    }

    #[test]
    fn accepts_logic() {
        let p = CustomerPreferences::paper_figure_8();
        assert!(p.accepts(fr(0.3), Money(10.0)));
        assert!(!p.accepts(fr(0.3), Money(9.9)));
        assert!(!p.accepts(fr(0.15), Money(100.0)), "unknown level");
        let capped = CustomerPreferences::from_base_scaled(1.0, fr(0.3));
        assert!(!capped.accepts(fr(0.4), Money(100.0)), "above ceiling");
    }

    #[test]
    fn scaled_preferences() {
        let cheap = CustomerPreferences::from_base_scaled(0.5, fr(0.5));
        assert_eq!(cheap.required_for(fr(0.4)), Some(Money(10.5)));
        // Round-1 table pays 26.56 for 0.5 ≥ the scaled threshold 15, so
        // the flexible customer concedes the maximum straight away.
        let bid = cheap.respond(&round1_table(), Fraction::ZERO);
        assert_eq!(bid, fr(0.5), "flexible customer concedes fully in round 1");
        // With a 0.4 physical ceiling the same customer bids 0.4.
        let capped = CustomerPreferences::from_base_scaled(0.5, fr(0.4));
        assert_eq!(capped.respond(&round1_table(), Fraction::ZERO), fr(0.4));
    }

    #[test]
    fn population_is_deterministic_and_heterogeneous() {
        let a = CustomerPreferences::population(50, 0.7, 1.5, 9);
        let b = CustomerPreferences::population(50, 0.7, 1.5, 9);
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<String> = a.iter().map(|p| p.to_string()).collect();
        assert!(distinct.len() > 10, "population should be heterogeneous");
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn empty_thresholds_panic() {
        let _ = CustomerPreferences::new(vec![], fr(0.5));
    }

    #[test]
    #[should_panic(expected = "required reward decreases")]
    fn decreasing_thresholds_panic() {
        let _ =
            CustomerPreferences::new(vec![(fr(0.1), Money(5.0)), (fr(0.2), Money(1.0))], fr(0.5));
    }

    #[test]
    fn effort_cost_defaults_to_zero() {
        let p = CustomerPreferences::paper_figure_8();
        assert_eq!(p.effort_cost(fr(0.3)), Money(10.0));
        assert_eq!(p.effort_cost(fr(0.17)), Money::ZERO);
    }

    #[test]
    fn display_shows_thresholds() {
        let p = CustomerPreferences::paper_figure_8();
        assert!(p.to_string().contains("0.40⇒21.0"));
    }
}
