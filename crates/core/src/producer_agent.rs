//! The Producer Agent (PA): reports production availability and cost.
//!
//! "Interaction with the Producer Agent is essential to acquire
//! information about the availability of electricity and the cost
//! involved" (§5.1.4). UA ↔ PA *negotiation* is out of the paper's scope;
//! the PA here is an information source backed by the two-tier production
//! model.

use crate::message::Msg;
use powergrid::production::ProductionModel;
use powergrid::units::{KilowattHours, Kilowatts, Money, PricePerKwh};

/// Availability report from the producer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Availability {
    /// Cheap capacity.
    pub normal_capacity: Kilowatts,
    /// Total installed capacity.
    pub total_capacity: Kilowatts,
    /// Cost within normal capacity.
    pub normal_cost: PricePerKwh,
    /// Cost beyond normal capacity.
    pub expensive_cost: PricePerKwh,
}

/// An agent wrapping a production model.
#[derive(Debug, Clone, PartialEq)]
pub struct ProducerAgent {
    production: ProductionModel,
}

impl ProducerAgent {
    /// Creates a producer agent.
    pub fn new(production: ProductionModel) -> ProducerAgent {
        ProducerAgent { production }
    }

    /// The underlying production model.
    pub fn production(&self) -> &ProductionModel {
        &self.production
    }

    /// The availability report (the answer to `QueryAvailability`).
    pub fn availability(&self) -> Availability {
        Availability {
            normal_capacity: self.production.normal_capacity(),
            total_capacity: self.production.total_capacity(),
            normal_cost: self.production.normal_cost(),
            expensive_cost: self.production.expensive_cost(),
        }
    }

    /// The availability report as a protocol message.
    pub fn availability_msg(&self) -> Msg {
        let a = self.availability();
        Msg::Availability {
            normal_capacity: a.normal_capacity,
            normal_cost: a.normal_cost,
            expensive_cost: a.expensive_cost,
        }
    }

    /// Marginal production cost saved per kWh of peak energy avoided —
    /// what a unit of negotiated cut-down is worth to the utility.
    pub fn peak_saving_value(&self) -> PricePerKwh {
        PricePerKwh(
            self.production.expensive_cost().value() - self.production.normal_cost().value(),
        )
    }

    /// Production cost of serving `energy` over `hours`.
    pub fn cost_of_energy(&self, energy: KilowattHours, hours: f64) -> Money {
        self.production.cost_of_energy(energy, hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent() -> ProducerAgent {
        ProducerAgent::new(ProductionModel::two_tier(
            Kilowatts(100.0),
            Kilowatts(150.0),
        ))
    }

    #[test]
    fn availability_reflects_model() {
        let a = agent().availability();
        assert_eq!(a.normal_capacity, Kilowatts(100.0));
        assert_eq!(a.total_capacity, Kilowatts(150.0));
        assert!(a.expensive_cost > a.normal_cost);
    }

    #[test]
    fn availability_msg_roundtrip() {
        match agent().availability_msg() {
            Msg::Availability {
                normal_capacity,
                normal_cost,
                expensive_cost,
            } => {
                assert_eq!(normal_capacity, Kilowatts(100.0));
                assert!(expensive_cost > normal_cost);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn peak_saving_value_is_cost_spread() {
        let a = agent();
        let spread = a.peak_saving_value();
        assert!(
            (spread.value()
                - (a.production().expensive_cost().value() - a.production().normal_cost().value()))
            .abs()
                < 1e-12
        );
        assert!(spread.value() > 0.0);
    }

    #[test]
    fn cost_delegation() {
        let a = agent();
        assert_eq!(
            a.cost_of_energy(KilowattHours(10.0), 1.0),
            a.production().cost_of_energy(KilowattHours(10.0), 1.0)
        );
    }

    #[test]
    fn cost_of_energy_splits_tiers_by_duration() {
        // 100 kW of normal capacity over 2 h serves 200 kWh cheaply; the
        // 50 kWh beyond that is expensive. Units: kW × h → kWh, kWh ×
        // price/kWh → money.
        let a = agent();
        let cost = a.cost_of_energy(KilowattHours(250.0), 2.0);
        let expected = 200.0 * a.availability().normal_cost.value()
            + 50.0 * a.availability().expensive_cost.value();
        assert!((cost.value() - expected).abs() < 1e-9);
        // Halving the window halves the cheap band: 100 kWh cheap,
        // 150 kWh expensive.
        let shorter = a.cost_of_energy(KilowattHours(250.0), 1.0);
        let expected_short = 100.0 * a.availability().normal_cost.value()
            + 150.0 * a.availability().expensive_cost.value();
        assert!((shorter.value() - expected_short).abs() < 1e-9);
        assert!(shorter > cost, "less cheap capacity ⇒ higher cost");
    }

    #[test]
    fn cost_of_energy_is_monotone_and_non_negative() {
        let a = agent();
        assert_eq!(a.cost_of_energy(KilowattHours(0.0), 1.0), Money::ZERO);
        assert_eq!(a.cost_of_energy(KilowattHours(-10.0), 1.0), Money::ZERO);
        let mut prev = Money::ZERO;
        for kwh in [10.0, 50.0, 100.0, 150.0, 500.0] {
            let cost = a.cost_of_energy(KilowattHours(kwh), 1.0);
            assert!(cost >= prev, "cost must grow with energy served");
            prev = cost;
        }
    }

    #[test]
    fn peak_saving_value_prices_a_kwh_of_cutdown() {
        // One kWh shaved out of the expensive band saves the expensive
        // rate but forgoes serving it at the normal rate elsewhere: the
        // spread. That must equal the marginal cost drop of serving one
        // kWh less above capacity minus the normal rate.
        let a = agent();
        let cap = KilowattHours(100.0); // normal capacity over 1 h
        let marginal = a.cost_of_energy(cap + KilowattHours(1.0), 1.0) - a.cost_of_energy(cap, 1.0);
        let spread = a.peak_saving_value();
        assert!(
            (marginal.value() - a.availability().expensive_cost.value()).abs() < 1e-9,
            "above capacity, the marginal kWh costs the expensive rate"
        );
        assert!(
            (spread.value() - (marginal.value() - a.availability().normal_cost.value())).abs()
                < 1e-9
        );
        assert!(spread.value() > 0.0, "expensive ≥ normal ⇒ spread ≥ 0");
    }

    #[test]
    fn peak_saving_value_is_zero_for_flat_pricing() {
        use powergrid::units::PricePerKwh;
        let flat = ProducerAgent::new(ProductionModel::with_costs(
            Kilowatts(100.0),
            Kilowatts(150.0),
            PricePerKwh(0.5),
            PricePerKwh(0.5),
        ));
        assert_eq!(flat.peak_saving_value(), PricePerKwh(0.0));
    }
}
