//! Clean-vs-faulty season benchmarking: how much does an unreliable
//! network actually cost?
//!
//! The paper argues (§4) that the load-balancing society *degrades
//! gracefully* under communication failure: a lost bid costs a round,
//! not a settlement. This module turns that claim into numbers. A
//! [`ResilienceReport`] runs the **same fleet plan** twice — once under
//! [`ExecutionMode::distributed_clean`] (real message passing, perfect
//! network) and once per [`FaultClass`] over that class's stock faulty
//! [`NetworkModel`] — and diffs the outcomes peak by peak:
//!
//! * **settlement drift** — mean/max `|Δ cut-down|` across matched
//!   settlements (needs [`ReportTier::Settlement`] or above; zero
//!   figures otherwise);
//! * **reward delta** — faulty minus clean reward outlay, the money the
//!   faults cost (or saved, when deadline-forced rounds under-settle);
//! * **extra rounds / messages** — the protocol-level price of
//!   retransmission-free recovery;
//! * **deadline-forced rounds, drops, duplicates** — straight off the
//!   faulty run's [`NetworkTraffic`].
//!
//! Peaks are matched by their campaign label (`day<i>/<interval>`):
//! under closed-loop feedback a faulty early day can shift which later
//! peaks even exist, so unmatched peaks are *counted*, never silently
//! dropped.
//!
//! Everything here is deterministic: both runs derive per-peak RNG
//! seeds from the same base via [`peak_seed`](crate::execution::peak_seed),
//! so a resilience report is exactly reproducible for a given seed —
//! the fault-matrix suite in `tests/fault_injection.rs` pins this.
//!
//! [`ReportTier::Settlement`]: crate::session::ReportTier::Settlement

use crate::campaign::CampaignReport;
use crate::execution::{ExecutionMode, NetworkTraffic};
use crate::fleet::FleetReport;
use crate::session::NegotiationReport;
use massim::network::NetworkModel;
use powergrid::units::Money;
use std::collections::BTreeMap;
use std::fmt;

/// One class of communication failure, with a stock [`NetworkModel`]
/// exhibiting it (latency is always present — a fault on a zero-latency
/// network is invisible to timers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Messages vanish (15 % loss).
    Drop,
    /// Messages arrive twice (20 % duplication).
    Duplicate,
    /// Messages overtake each other (25 % held back up to 20 ticks).
    Reorder,
    /// A network partition: everything in flight during the outage
    /// window is lost.
    Outage,
}

impl FaultClass {
    /// Every fault class, in benchmark order.
    pub fn all() -> [FaultClass; 4] {
        [
            FaultClass::Drop,
            FaultClass::Duplicate,
            FaultClass::Reorder,
            FaultClass::Outage,
        ]
    }

    /// A stable lowercase name (benchmark JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Drop => "drop",
            FaultClass::Duplicate => "duplicate",
            FaultClass::Reorder => "reorder",
            FaultClass::Outage => "outage",
        }
    }

    /// The stock faulty network for this class: uniform 1–10-tick
    /// latency plus exactly one kind of fault, so observed degradation
    /// is attributable.
    pub fn network(self) -> NetworkModel {
        let base = NetworkModel::uniform(1, 10);
        match self {
            FaultClass::Drop => base.with_drop_probability(0.15),
            FaultClass::Duplicate => base.with_duplicate_probability(0.2),
            FaultClass::Reorder => base.with_reordering(0.25, 20),
            // Mid-negotiation: with 1–10-tick latency the early rounds'
            // traffic falls in [15, 45), so every negotiation crosses
            // the partition (later windows would miss short sessions,
            // which settle within ~60 ticks).
            FaultClass::Outage => base.with_outage(15, 45),
        }
    }

    /// The [`ExecutionMode`] that benchmarks this class: distributed
    /// over [`FaultClass::network`] with the given base seed.
    pub fn mode(self, seed: u64) -> ExecutionMode {
        ExecutionMode::distributed_faulty(self.network()).with_seed(seed)
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How one fleet cell fared under a fault class, against its clean run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResilience {
    /// The cell's label.
    pub label: String,
    /// Peaks present in both runs (matched by campaign label).
    pub matched_peaks: usize,
    /// Peaks present in only one run — closed-loop divergence.
    pub unmatched_peaks: usize,
    /// Mean `|Δ cut-down|` across matched settlements (`0` when the
    /// tier keeps no settlements).
    pub mean_drift: f64,
    /// Largest single `|Δ cut-down|` (`0` without settlements).
    pub max_drift: f64,
    /// Faulty minus clean reward outlay over matched peaks.
    pub reward_delta: Money,
    /// Faulty minus clean negotiation rounds over matched peaks.
    pub extra_rounds: i64,
    /// Faulty minus clean protocol messages over matched peaks (engine
    /// messages, not wire traffic — duplicates don't inflate this).
    pub extra_messages: i64,
    /// The faulty run's wire activity for this cell.
    pub traffic: NetworkTraffic,
}

impl CellResilience {
    /// Diffs one cell's faulty campaign against its clean twin.
    fn compare(
        label: &str,
        clean: &CampaignReport,
        faulty: &CampaignReport,
        traffic: NetworkTraffic,
    ) -> CellResilience {
        let clean_by_label: BTreeMap<&str, &NegotiationReport> = clean
            .outcomes
            .iter()
            .map(|o| (o.label.as_str(), &o.report))
            .collect();
        let mut matched = 0usize;
        let mut drift_sum = 0.0f64;
        let mut drift_count = 0usize;
        let mut max_drift = 0.0f64;
        let mut reward_delta = Money::ZERO;
        let mut extra_rounds = 0i64;
        let mut extra_messages = 0i64;
        for outcome in &faulty.outcomes {
            let Some(clean_report) = clean_by_label.get(outcome.label.as_str()) else {
                continue;
            };
            matched += 1;
            let faulty_report = &outcome.report;
            for (c, f) in clean_report
                .settlements()
                .iter()
                .zip(faulty_report.settlements())
            {
                let drift = (f.cutdown.value() - c.cutdown.value()).abs();
                drift_sum += drift;
                drift_count += 1;
                max_drift = max_drift.max(drift);
            }
            reward_delta += faulty_report.total_rewards() - clean_report.total_rewards();
            extra_rounds +=
                i64::from(faulty_report.digest().rounds) - i64::from(clean_report.digest().rounds);
            extra_messages +=
                faulty_report.total_messages() as i64 - clean_report.total_messages() as i64;
        }
        // Peaks only one side has: total distinct labels minus those in
        // both, counted from each side's surplus over the matched set.
        let unmatched = (clean.outcomes.len() - matched) + (faulty.outcomes.len() - matched);
        CellResilience {
            label: label.to_string(),
            matched_peaks: matched,
            unmatched_peaks: unmatched,
            mean_drift: if drift_count == 0 {
                0.0
            } else {
                drift_sum / drift_count as f64
            },
            max_drift,
            reward_delta,
            extra_rounds,
            extra_messages,
            traffic,
        }
    }
}

/// A whole fleet's degradation under one [`FaultClass`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// The injected fault class.
    pub class: FaultClass,
    /// Per-cell diffs, in fleet cell order.
    pub cells: Vec<CellResilience>,
}

impl FaultOutcome {
    /// Diffs a faulty fleet run against the clean baseline, cell by
    /// cell (cells matched by label; `traffic` is the faulty run's
    /// per-cell wire activity, in cell order).
    pub fn compare(
        class: FaultClass,
        clean: &FleetReport,
        faulty: &FleetReport,
        traffic: &[NetworkTraffic],
    ) -> FaultOutcome {
        let cells = faulty
            .cells
            .iter()
            .zip(
                traffic
                    .iter()
                    .copied()
                    .chain(std::iter::repeat(NetworkTraffic::ZERO)),
            )
            .map(|(cell, cell_traffic)| {
                let clean_campaign = clean
                    .cell(&cell.label)
                    .map(|c| &c.report)
                    .unwrap_or(&cell.report);
                CellResilience::compare(&cell.label, clean_campaign, &cell.report, cell_traffic)
            })
            .collect();
        FaultOutcome { class, cells }
    }

    /// Peaks matched across all cells.
    pub fn matched_peaks(&self) -> usize {
        self.cells.iter().map(|c| c.matched_peaks).sum()
    }

    /// Peaks present in only one run, across all cells.
    pub fn unmatched_peaks(&self) -> usize {
        self.cells.iter().map(|c| c.unmatched_peaks).sum()
    }

    /// Mean settlement drift across cells, weighted by matched peaks.
    pub fn mean_drift(&self) -> f64 {
        let peaks: usize = self.cells.iter().map(|c| c.matched_peaks).sum();
        if peaks == 0 {
            return 0.0;
        }
        self.cells
            .iter()
            .map(|c| c.mean_drift * c.matched_peaks as f64)
            .sum::<f64>()
            / peaks as f64
    }

    /// Largest settlement drift anywhere in the fleet.
    pub fn max_drift(&self) -> f64 {
        self.cells.iter().map(|c| c.max_drift).fold(0.0, f64::max)
    }

    /// Fleet-wide reward delta (faulty minus clean).
    pub fn reward_delta(&self) -> Money {
        self.cells.iter().map(|c| c.reward_delta).sum()
    }

    /// Fleet-wide extra rounds.
    pub fn extra_rounds(&self) -> i64 {
        self.cells.iter().map(|c| c.extra_rounds).sum()
    }

    /// Fleet-wide extra protocol messages.
    pub fn extra_messages(&self) -> i64 {
        self.cells.iter().map(|c| c.extra_messages).sum()
    }

    /// Fleet-wide wire activity of the faulty run.
    pub fn traffic(&self) -> NetworkTraffic {
        self.cells
            .iter()
            .fold(NetworkTraffic::ZERO, |sum, c| sum + c.traffic)
    }
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} drift mean {:.4} max {:.4} | Δrewards {:>8.2} | \
             +{} rounds +{} msgs | {} deadline-forced, {} dropped, {} duplicated",
            self.class,
            self.mean_drift(),
            self.max_drift(),
            self.reward_delta().value(),
            self.extra_rounds(),
            self.extra_messages(),
            self.traffic().deadline_forced_rounds,
            self.traffic().messages_dropped,
            self.traffic().messages_duplicated,
        )
    }
}

/// Clean-vs-faulty benchmark over one fleet plan: the clean baseline's
/// traffic plus one [`FaultOutcome`] per injected class.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    clean_traffic: NetworkTraffic,
    outcomes: Vec<FaultOutcome>,
}

impl ResilienceReport {
    /// Runs the benchmark: `run` executes the fleet plan under the
    /// [`ExecutionMode`] it is handed (build the fleet inside the
    /// closure — e.g. `FleetRunner::new()...execution(mode)` followed by
    /// [`run_instrumented`](crate::fleet::FleetRunner::run_instrumented))
    /// and returns the report plus per-cell traffic. Called once with
    /// the clean mode, then once per class in `classes`, every mode
    /// carrying the same `base_seed` so clean and faulty runs share
    /// per-peak seeds and the whole report is reproducible.
    pub fn measure<F>(base_seed: u64, classes: &[FaultClass], mut run: F) -> ResilienceReport
    where
        F: FnMut(ExecutionMode) -> (FleetReport, Vec<NetworkTraffic>),
    {
        let (clean, clean_traffic) = run(ExecutionMode::distributed_clean().with_seed(base_seed));
        ResilienceReport::against_baseline(&clean, &clean_traffic, base_seed, classes, run)
    }

    /// [`ResilienceReport::measure`] with the clean baseline already
    /// run — for callers (the E18 experiment) that need the clean
    /// [`FleetReport`] itself, e.g. to assert it byte-identical to a
    /// sync run. `run` is called once per class; every mode must carry
    /// the same `base_seed` the clean run used.
    pub fn against_baseline<F>(
        clean: &FleetReport,
        clean_traffic: &[NetworkTraffic],
        base_seed: u64,
        classes: &[FaultClass],
        mut run: F,
    ) -> ResilienceReport
    where
        F: FnMut(ExecutionMode) -> (FleetReport, Vec<NetworkTraffic>),
    {
        let clean_traffic = clean_traffic
            .iter()
            .fold(NetworkTraffic::ZERO, |sum, &t| sum + t);
        let outcomes = classes
            .iter()
            .map(|&class| {
                let (faulty, traffic) = run(class.mode(base_seed));
                FaultOutcome::compare(class, clean, &faulty, &traffic)
            })
            .collect();
        ResilienceReport {
            clean_traffic,
            outcomes,
        }
    }

    /// The clean baseline's fleet-wide wire activity.
    pub fn clean_traffic(&self) -> NetworkTraffic {
        self.clean_traffic
    }

    /// One outcome per injected fault class, in `classes` order.
    pub fn outcomes(&self) -> &[FaultOutcome] {
        &self.outcomes
    }

    /// The outcome for `class`, if it was injected.
    pub fn outcome(&self, class: FaultClass) -> Option<&FaultOutcome> {
        self.outcomes.iter().find(|o| o.class == class)
    }
}

impl fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "resilience vs clean ({})", self.clean_traffic)?;
        for outcome in &self.outcomes {
            writeln!(f, "  {outcome}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignBuilder, CampaignRunner, ClosedLoop, FixedPredictor};
    use crate::fleet::FleetRunner;
    use crate::session::ReportTier;
    use powergrid::calendar::Horizon;
    use powergrid::household::Household;
    use powergrid::population::PopulationBuilder;
    use powergrid::prediction::MovingAverage;
    use powergrid::weather::{Season, WeatherModel};

    fn runner<'a>(
        homes: &'a [Household],
        weather: &'a WeatherModel,
        horizon: &'a Horizon,
    ) -> CampaignRunner<'a> {
        CampaignBuilder::new(homes, weather, horizon)
            .warmup_days(2)
            .predictor(FixedPredictor(MovingAverage::new(2)))
            .feedback(ClosedLoop)
            .build()
    }

    fn measure_at(tier: ReportTier) -> ResilienceReport {
        let weather = WeatherModel::winter();
        let horizon = Horizon::new(4, 0, Season::Winter);
        let homes = PopulationBuilder::new().households(12).build(5);
        ResilienceReport::measure(7, &[FaultClass::Drop, FaultClass::Duplicate], |mode| {
            FleetRunner::new()
                .cell("solo", runner(&homes, &weather, &horizon))
                .report_tier(tier)
                .execution(mode)
                .run_sequential_instrumented()
        })
    }

    #[test]
    fn class_presets_inject_exactly_one_fault() {
        for class in FaultClass::all() {
            let net = class.network();
            assert!(class.mode(3).is_distributed());
            assert_ne!(net, NetworkModel::perfect(), "{class} must be faulty");
        }
        assert_eq!(FaultClass::Drop.network().drop_probability(), 0.15);
        assert_eq!(FaultClass::Drop.network().duplicate_probability(), 0.0);
        assert_eq!(FaultClass::Duplicate.network().drop_probability(), 0.0);
        assert_eq!(FaultClass::Reorder.network().reordering().1, 20);
        assert_eq!(FaultClass::Outage.name(), "outage");
    }

    #[test]
    fn measures_degradation_against_a_clean_baseline() {
        let report = measure_at(ReportTier::Settlement);
        assert_eq!(report.outcomes().len(), 2);
        // The clean baseline talked but lost nothing.
        let clean = report.clean_traffic();
        assert!(clean.negotiations > 0);
        assert!(clean.messages_sent > 0);
        assert_eq!(clean.messages_dropped, 0);
        assert_eq!(clean.deadline_forced_rounds, 0);
        // The drop run lost messages and those losses forced rounds.
        let drop = report.outcome(FaultClass::Drop).expect("drop injected");
        assert!(drop.traffic().messages_dropped > 0);
        assert!(drop.matched_peaks() > 0);
        assert!(drop.mean_drift() >= 0.0);
        // Duplication is absorbed: duplicates on the wire, but engines
        // are idempotent so rounds and settlements barely move.
        let dup = report.outcome(FaultClass::Duplicate).expect("dup injected");
        assert!(dup.traffic().messages_duplicated > 0);
        assert_eq!(dup.traffic().messages_dropped, 0);
        assert!(report.outcome(FaultClass::Outage).is_none());
        assert!(report.to_string().contains("drop"));
    }

    #[test]
    fn reports_are_reproducible_for_a_seed() {
        let a = measure_at(ReportTier::Settlement);
        let b = measure_at(ReportTier::Settlement);
        assert_eq!(a, b);
    }

    #[test]
    fn settlement_tier_matches_full_trace_figures() {
        // Drift needs settlements; everything else comes off the digest.
        // Both survive down to Settlement tier, so the resilience
        // figures must not depend on carrying full traces.
        let full = measure_at(ReportTier::FullTrace);
        let settlement = measure_at(ReportTier::Settlement);
        assert_eq!(full, settlement);
    }

    #[test]
    fn aggregate_tier_still_reports_costs_without_drift() {
        let report = measure_at(ReportTier::Aggregate);
        let drop = report.outcome(FaultClass::Drop).expect("drop injected");
        // No settlements at Aggregate → drift is defined as zero...
        assert_eq!(drop.mean_drift(), 0.0);
        assert_eq!(drop.max_drift(), 0.0);
        // ...but digest-level costs and wire counters still measure.
        assert!(drop.traffic().messages_dropped > 0);
        let full = measure_at(ReportTier::FullTrace);
        let full_drop = full.outcome(FaultClass::Drop).expect("drop injected");
        assert_eq!(drop.extra_rounds(), full_drop.extra_rounds());
        assert_eq!(drop.extra_messages(), full_drop.extra_messages());
        assert_eq!(drop.reward_delta(), full_drop.reward_delta());
        assert_eq!(drop.traffic(), full_drop.traffic());
    }
}
