//! Resource Consumer Agents (RCAs): one per household device.
//!
//! The paper leaves CA ↔ RCA negotiation out of scope (§2) but the agents
//! exist and feed real inputs into the main negotiation: each RCA knows
//! its device's load profile and reports "the amount of electricity that
//! can be saved in a given time interval" (§3.2.3).

use powergrid::device::Device;
use powergrid::series::Series;
use powergrid::time::{Interval, TimeAxis};
use powergrid::units::KilowattHours;

/// An agent wrapping one device and its day-ahead load profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceConsumerAgent {
    device: Device,
    load: Series,
}

impl ResourceConsumerAgent {
    /// Creates an RCA for a device on a day with the given mean outdoor
    /// temperature and usage intensity.
    pub fn new(device: Device, axis: &TimeAxis, mean_temp: f64, intensity: f64) -> Self {
        let load = device.load_profile(axis, mean_temp, intensity);
        ResourceConsumerAgent { device, load }
    }

    /// The wrapped device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The device's expected load profile (kWh per slot).
    pub fn load(&self) -> &Series {
        &self.load
    }

    /// Energy the device is expected to use during `interval`.
    pub fn interval_usage(&self, interval: Interval) -> KilowattHours {
        self.load.energy_over(interval)
    }

    /// Energy the device can shed during `interval` — its answer to the
    /// CA's `QuerySavings`.
    pub fn saving_potential(&self, interval: Interval) -> KilowattHours {
        self.device.saving_potential(&self.load, interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powergrid::device::DeviceKind;
    use powergrid::units::{Fraction, Kilowatts};

    #[test]
    fn rca_reports_usage_and_potential() {
        let axis = TimeAxis::hourly();
        let rca =
            ResourceConsumerAgent::new(Device::typical(DeviceKind::WaterHeater), &axis, -4.0, 1.0);
        let evening = Interval::new(17, 22);
        let usage = rca.interval_usage(evening);
        let potential = rca.saving_potential(evening);
        assert!(usage.value() > 0.0);
        assert!(potential.value() > 0.0);
        assert!(potential <= usage);
    }

    #[test]
    fn rigid_device_has_no_potential() {
        let axis = TimeAxis::hourly();
        let rigid = Device::new(DeviceKind::Entertainment, Kilowatts(0.3), Fraction::ZERO);
        let rca = ResourceConsumerAgent::new(rigid, &axis, 10.0, 1.0);
        assert_eq!(
            rca.saving_potential(Interval::new(18, 22)),
            KilowattHours::ZERO
        );
    }

    #[test]
    fn accessors() {
        let axis = TimeAxis::hourly();
        let rca =
            ResourceConsumerAgent::new(Device::typical(DeviceKind::Lighting), &axis, 0.0, 1.0);
        assert_eq!(rca.device().kind(), DeviceKind::Lighting);
        assert_eq!(rca.load().len(), 24);
    }
}
