//! Reward tables and the Section-6 reward-update formula.
//!
//! "A reward table consists of possible cut-down values, a reward value
//! assigned to each cut-down value, together with a time interval."
//! (Section 3.2.3). The update rule, §6:
//!
//! ```text
//! new_reward = reward + beta · overuse · (1 − reward/max_reward) · reward
//! ```
//!
//! The reward "increases more when the predicted overuse is higher ... and
//! never exceeds the maximal reward, due to the logistic factor".

use powergrid::time::Interval;
use powergrid::units::{Fraction, KilowattHours, Money};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The §6 update rule with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardFormula {
    /// β — "determines how steeply the reward values increase".
    pub beta: f64,
    /// The maximum reward the Utility Agent can offer ("determined in
    /// advance").
    pub max_reward: Money,
    /// Convergence threshold: negotiation ends when the table moves by at
    /// most this much between rounds ("less than or equal to 1" in the
    /// prototype).
    pub epsilon: Money,
}

impl RewardFormula {
    /// The prototype's parameters calibrated to Figures 6–7: β = 2,
    /// max_reward = 30, ε = 1.
    pub fn paper() -> RewardFormula {
        RewardFormula {
            beta: 2.0,
            max_reward: Money(30.0),
            epsilon: Money(1.0),
        }
    }

    /// Creates a formula.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is negative, `max_reward` is not positive, or
    /// `epsilon` is negative.
    pub fn new(beta: f64, max_reward: Money, epsilon: Money) -> RewardFormula {
        assert!(
            beta >= 0.0 && beta.is_finite(),
            "beta must be a non-negative number"
        );
        assert!(max_reward.value() > 0.0, "max_reward must be positive");
        assert!(epsilon.value() >= 0.0, "epsilon must be non-negative");
        RewardFormula {
            beta,
            max_reward,
            epsilon,
        }
    }

    /// Applies the update rule to one reward value, with `beta` possibly
    /// overridden by a [`crate::beta::BetaPolicy`].
    ///
    /// `overuse` is the *relative* predicted overuse
    /// (`predicted_overuse / normal_use`), clamped at 0 from below — a
    /// negative overuse (peak already gone) never lowers rewards, in line
    /// with the monotonic concession protocol.
    pub fn next_reward(&self, reward: Money, overuse: f64, beta: f64) -> Money {
        let overuse = overuse.max(0.0);
        let r = reward.value();
        let logistic = 1.0 - r / self.max_reward.value();
        let next = r + beta * overuse * logistic * r;
        // Floating error could nudge past max_reward; the paper's claim
        // "never exceeds the maximal reward" is kept exact.
        Money(next.min(self.max_reward.value()))
    }
}

impl Default for RewardFormula {
    fn default() -> Self {
        RewardFormula::paper()
    }
}

/// The §6 predicted-use-with-cut-down formula for one customer:
/// `min(predicted_use, (1 − cutdown) · allowed_use)`.
pub fn predicted_use_with_cutdown(
    predicted_use: KilowattHours,
    allowed_use: KilowattHours,
    cutdown: Fraction,
) -> KilowattHours {
    let capped = cutdown.complement() * allowed_use;
    predicted_use.min(capped)
}

/// The §6 overuse fraction: `(total_predicted − normal_use) / normal_use`.
///
/// Returns 0 when `normal_use` is zero.
pub fn overuse_fraction(total_predicted: KilowattHours, normal_use: KilowattHours) -> f64 {
    if normal_use.value() <= f64::EPSILON {
        return 0.0;
    }
    (total_predicted - normal_use) / normal_use
}

/// A reward table: cut-down levels with their rewards, over an interval.
///
/// Entries are kept sorted by cut-down; rewards are non-decreasing in the
/// cut-down (a bigger saving never pays less).
///
/// # Example
///
/// ```
/// use loadbal_core::reward::RewardTable;
/// use powergrid::time::Interval;
/// use powergrid::units::{Fraction, Money};
///
/// let table = RewardTable::quadratic(Interval::new(72, 80), &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], Money(17.0), Fraction::clamped(0.4));
/// assert_eq!(table.reward_for(Fraction::clamped(0.4)), Money(17.0));
/// assert!(table.reward_for(Fraction::clamped(0.3)) < Money(10.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardTable {
    interval: Interval,
    entries: Vec<(Fraction, Money)>,
}

impl RewardTable {
    /// Creates a table from `(cutdown, reward)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, contains duplicate cut-downs, or has
    /// rewards that decrease as cut-downs increase.
    pub fn new(interval: Interval, mut entries: Vec<(Fraction, Money)>) -> RewardTable {
        assert!(
            !entries.is_empty(),
            "a reward table needs at least one entry"
        );
        entries.sort_by_key(|e| e.0);
        for window in entries.windows(2) {
            assert!(
                window[0].0 < window[1].0,
                "duplicate cut-down {} in reward table",
                window[1].0
            );
            assert!(
                window[0].1 <= window[1].1,
                "reward for cut-down {} ({}) lower than for smaller cut-down {} ({})",
                window[1].0,
                window[1].1,
                window[0].0,
                window[0].1
            );
        }
        RewardTable { interval, entries }
    }

    /// A table whose reward grows *quadratically* in the cut-down, pinned
    /// to `reward_at` at cut-down `pin`: `reward(c) = reward_at · (c/pin)²`.
    ///
    /// This is the Figure 6 calibration: with `reward_at = 17` and
    /// `pin = 0.4`, reward(0.3) ≈ 9.56 < 10 and reward(0.2) ≈ 4.25,
    /// reproducing the highlighted customer's round-1 choice of 0.2.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is zero or `levels` is empty.
    pub fn quadratic(
        interval: Interval,
        levels: &[f64],
        reward_at: Money,
        pin: Fraction,
    ) -> RewardTable {
        assert!(pin.value() > 0.0, "pin cut-down must be positive");
        let entries = levels
            .iter()
            .map(|&c| {
                let f = Fraction::clamped(c);
                let ratio = f.value() / pin.value();
                (f, Money(reward_at.value() * ratio * ratio))
            })
            .collect();
        RewardTable::new(interval, entries)
    }

    /// A table with rewards *linear* in the cut-down, pinned like
    /// [`RewardTable::quadratic`].
    ///
    /// # Panics
    ///
    /// Panics if `pin` is zero or `levels` is empty.
    pub fn linear(
        interval: Interval,
        levels: &[f64],
        reward_at: Money,
        pin: Fraction,
    ) -> RewardTable {
        assert!(pin.value() > 0.0, "pin cut-down must be positive");
        let entries = levels
            .iter()
            .map(|&c| {
                let f = Fraction::clamped(c);
                (f, Money(reward_at.value() * f.value() / pin.value()))
            })
            .collect();
        RewardTable::new(interval, entries)
    }

    /// The interval during which cut-downs apply.
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// The `(cutdown, reward)` entries, sorted by cut-down.
    pub fn entries(&self) -> &[(Fraction, Money)] {
        &self.entries
    }

    /// The cut-down levels.
    pub fn levels(&self) -> impl Iterator<Item = Fraction> + '_ {
        self.entries.iter().map(|&(c, _)| c)
    }

    /// The reward for an exact cut-down level (zero if the level is not
    /// in the table — customers choose *from* the table, §3.2.3).
    pub fn reward_for(&self, cutdown: Fraction) -> Money {
        self.entries
            .iter()
            .find(|&&(c, _)| c == cutdown)
            .map(|&(_, r)| r)
            .unwrap_or(Money::ZERO)
    }

    /// The largest reward in the table.
    pub fn max_entry(&self) -> Money {
        self.entries
            .iter()
            .map(|&(_, r)| r)
            .fold(Money::ZERO, Money::max)
    }

    /// Applies the §6 update rule to every entry, producing the next
    /// round's table.
    pub fn updated(&self, formula: &RewardFormula, overuse: f64, beta: f64) -> RewardTable {
        let entries = self
            .entries
            .iter()
            .map(|&(c, r)| (c, formula.next_reward(r, overuse, beta)))
            .collect();
        RewardTable {
            interval: self.interval,
            entries,
        }
    }

    /// True if every reward in `self` is at least the reward in
    /// `previous` for the same cut-down — the monotonic concession
    /// requirement on announcements.
    pub fn dominates(&self, previous: &RewardTable) -> bool {
        if self.entries.len() != previous.entries.len() {
            return false;
        }
        self.entries
            .iter()
            .zip(&previous.entries)
            .all(|(&(c1, r1), &(c2, r2))| c1 == c2 && r1 >= r2)
    }

    /// The largest absolute reward change versus `previous` (∞ if the
    /// levels differ) — compared against ε for termination.
    pub fn max_delta(&self, previous: &RewardTable) -> Money {
        if self.entries.len() != previous.entries.len() {
            return Money(f64::INFINITY);
        }
        let mut delta: f64 = 0.0;
        for (&(c1, r1), &(c2, r2)) in self.entries.iter().zip(&previous.entries) {
            if c1 != c2 {
                return Money(f64::INFINITY);
            }
            delta = delta.max((r1 - r2).abs().value());
        }
        Money(delta)
    }
}

impl fmt::Display for RewardTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interval {} |", self.interval)?;
        for (c, r) in &self.entries {
            write!(f, " {c}→{:.1}", r.value())?;
        }
        Ok(())
    }
}

/// The default cut-down levels used by the prototype: 0, 0.1, ..., 0.5.
pub const DEFAULT_LEVELS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

#[cfg(test)]
mod tests {
    use super::*;

    fn interval() -> Interval {
        Interval::new(72, 80)
    }

    fn fr(v: f64) -> Fraction {
        Fraction::clamped(v)
    }

    #[test]
    fn formula_basic_step() {
        let f = RewardFormula::paper();
        // §6 with reward 17, overuse 0.35, beta 2:
        // 17 + 2·0.35·(1 − 17/30)·17 = 17 + 5.157 ≈ 22.16
        let next = f.next_reward(Money(17.0), 0.35, 2.0);
        assert!((next.value() - 22.156_666).abs() < 1e-3, "got {next}");
    }

    #[test]
    fn formula_never_exceeds_max() {
        let f = RewardFormula::paper();
        let mut r = Money(17.0);
        for _ in 0..100 {
            r = f.next_reward(r, 1.0, 8.0);
            assert!(r <= f.max_reward, "reward {r} exceeded max");
        }
        assert!((r.value() - 30.0).abs() < 1e-6, "saturates at max");
    }

    #[test]
    fn formula_grows_with_overuse() {
        let f = RewardFormula::paper();
        let small = f.next_reward(Money(10.0), 0.1, 2.0);
        let large = f.next_reward(Money(10.0), 0.4, 2.0);
        assert!(large > small);
    }

    #[test]
    fn negative_overuse_does_not_lower_reward() {
        let f = RewardFormula::paper();
        let r = f.next_reward(Money(10.0), -0.5, 2.0);
        assert_eq!(r, Money(10.0));
    }

    #[test]
    fn zero_reward_is_fixed_point() {
        let f = RewardFormula::paper();
        assert_eq!(f.next_reward(Money::ZERO, 0.5, 2.0), Money::ZERO);
    }

    #[test]
    #[should_panic(expected = "max_reward must be positive")]
    fn bad_formula_panics() {
        let _ = RewardFormula::new(1.0, Money(0.0), Money(1.0));
    }

    #[test]
    fn predicted_use_with_cutdown_formula() {
        // (1 − cutdown)·allowed ≥ predicted → predicted unchanged.
        let a = predicted_use_with_cutdown(KilowattHours(5.0), KilowattHours(10.0), fr(0.3));
        assert_eq!(a, KilowattHours(5.0));
        // Otherwise capped at (1 − cutdown)·allowed.
        let b = predicted_use_with_cutdown(KilowattHours(10.0), KilowattHours(10.0), fr(0.3));
        assert_eq!(b, KilowattHours(7.0));
    }

    #[test]
    fn overuse_fraction_formula() {
        assert!(
            (overuse_fraction(KilowattHours(135.0), KilowattHours(100.0)) - 0.35).abs() < 1e-12
        );
        assert_eq!(
            overuse_fraction(KilowattHours(50.0), KilowattHours::ZERO),
            0.0
        );
        assert!(overuse_fraction(KilowattHours(90.0), KilowattHours(100.0)) < 0.0);
    }

    #[test]
    fn quadratic_table_matches_figure_6() {
        let t = RewardTable::quadratic(interval(), &DEFAULT_LEVELS, Money(17.0), fr(0.4));
        assert_eq!(t.reward_for(fr(0.4)), Money(17.0));
        assert!((t.reward_for(fr(0.3)).value() - 9.5625).abs() < 1e-9);
        assert!((t.reward_for(fr(0.2)).value() - 4.25).abs() < 1e-9);
        assert_eq!(t.reward_for(fr(0.0)), Money::ZERO);
    }

    #[test]
    fn linear_table() {
        let t = RewardTable::linear(interval(), &DEFAULT_LEVELS, Money(17.0), fr(0.4));
        assert!((t.reward_for(fr(0.2)).value() - 8.5).abs() < 1e-9);
    }

    #[test]
    fn reward_for_unknown_level_is_zero() {
        let t = RewardTable::quadratic(interval(), &DEFAULT_LEVELS, Money(17.0), fr(0.4));
        assert_eq!(t.reward_for(fr(0.15)), Money::ZERO);
    }

    #[test]
    fn updated_table_dominates_and_converges() {
        let formula = RewardFormula::paper();
        let t0 = RewardTable::quadratic(interval(), &DEFAULT_LEVELS, Money(17.0), fr(0.4));
        let t1 = t0.updated(&formula, 0.35, formula.beta);
        assert!(t1.dominates(&t0));
        assert!(!t0.dominates(&t1) || t1 == t0);
        assert!(t1.max_delta(&t0) > formula.epsilon);

        // Saturate: delta eventually drops below epsilon.
        let mut t = t1;
        let mut converged = false;
        for _ in 0..200 {
            let next = t.updated(&formula, 0.35, formula.beta);
            if next.max_delta(&t) <= formula.epsilon {
                converged = true;
                break;
            }
            t = next;
        }
        assert!(converged, "update rule must converge by saturation");
    }

    #[test]
    fn dominates_rejects_mismatched_levels() {
        let a = RewardTable::quadratic(interval(), &[0.0, 0.2], Money(10.0), fr(0.4));
        let b = RewardTable::quadratic(interval(), &[0.0, 0.3], Money(10.0), fr(0.4));
        assert!(!a.dominates(&b));
        assert_eq!(a.max_delta(&b), Money(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_table_panics() {
        let _ = RewardTable::new(interval(), vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate cut-down")]
    fn duplicate_levels_panic() {
        let _ = RewardTable::new(
            interval(),
            vec![(fr(0.2), Money(1.0)), (fr(0.2), Money(2.0))],
        );
    }

    #[test]
    #[should_panic(expected = "lower than for smaller")]
    fn decreasing_rewards_panic() {
        let _ = RewardTable::new(
            interval(),
            vec![(fr(0.1), Money(5.0)), (fr(0.2), Money(2.0))],
        );
    }

    #[test]
    fn display_shows_entries() {
        let t = RewardTable::quadratic(interval(), &[0.0, 0.4], Money(17.0), fr(0.4));
        let s = t.to_string();
        assert!(s.contains("0.40→17.0"), "{s}");
    }

    #[test]
    fn max_entry() {
        let t = RewardTable::quadratic(interval(), &DEFAULT_LEVELS, Money(17.0), fr(0.4));
        assert!((t.max_entry().value() - 17.0 * (0.5f64 / 0.4).powi(2)).abs() < 1e-9);
    }
}
