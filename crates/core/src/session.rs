//! Synchronous negotiation sessions: scenarios, round records and
//! reports.
//!
//! A [`Scenario`] fixes everything a negotiation needs — the normal-use
//! capacity, the customer population, the Utility Agent configuration,
//! the tariff — and [`Scenario::run`] executes the configured
//! announcement method round by round, producing a [`NegotiationReport`]
//! with the full per-round history (exactly the quantities the paper's
//! GUI screenshots in Figures 6–9 display).

use crate::concession::NegotiationStatus;
use crate::methods::AnnouncementMethod;
use crate::preferences::CustomerPreferences;
use crate::reward::{overuse_fraction, RewardTable};
use crate::utility_agent::UtilityAgentConfig;
use powergrid::tariff::Tariff;
use powergrid::time::Interval;
use powergrid::units::{Fraction, KilowattHours, Money};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One customer in a scenario: the physical quantities and private
/// preferences its Customer Agent negotiates with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomerProfile {
    /// Predicted consumption during the peak interval, absent any deal.
    pub predicted_use: KilowattHours,
    /// Contracted allowance for the interval (`allowed_use(c)` in §6).
    pub allowed_use: KilowattHours,
    /// The private cut-down/required-reward table.
    pub preferences: CustomerPreferences,
}

/// A complete negotiation scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Normal production capacity over the interval (`normal_use` in §6).
    pub normal_use: KilowattHours,
    /// The cut-down interval announced in reward tables.
    pub interval: Interval,
    /// The customer population.
    pub customers: Vec<CustomerProfile>,
    /// Utility Agent configuration.
    pub config: UtilityAgentConfig,
    /// The announcement method to use.
    pub method: AnnouncementMethod,
    /// The three-level tariff (offer and request-for-bids settlement).
    pub tariff: Tariff,
}

impl Scenario {
    /// Total predicted consumption before any negotiation.
    pub fn initial_total(&self) -> KilowattHours {
        self.customers.iter().map(|c| c.predicted_use).sum()
    }

    /// Initial relative overuse.
    pub fn initial_overuse_fraction(&self) -> f64 {
        overuse_fraction(self.initial_total(), self.normal_use)
    }

    /// Runs the configured announcement method (a facade over
    /// [`SyncDriver`](crate::sync_driver::SyncDriver) and the shared
    /// sans-io [`engine`](crate::engine)).
    pub fn run(&self) -> NegotiationReport {
        self.run_with(self.method)
    }

    /// Runs a specific announcement method on this scenario through the
    /// synchronous driver.
    pub fn run_with(&self, method: AnnouncementMethod) -> NegotiationReport {
        crate::sync_driver::SyncDriver::with_method(self, method).run()
    }

    /// Runs `method` on this scenario through a reusable
    /// [`NegotiationScratch`](crate::sync_driver::NegotiationScratch) —
    /// byte-identical to [`Scenario::run_with`], but the engines (and
    /// their buffers) are recycled from the scratch instead of
    /// allocated per negotiation. This is the campaign/fleet hot path:
    /// one scratch per worker, thousands of peaks.
    pub fn run_in(
        &self,
        method: AnnouncementMethod,
        scratch: &mut crate::sync_driver::NegotiationScratch,
    ) -> NegotiationReport {
        scratch.run(self, method)
    }

    /// [`Scenario::run_in`] at a chosen [`ReportTier`]: identical
    /// negotiation, but the report only *retains* what the tier keeps
    /// (the [`RoundDigest`] scalars always survive). `FullTrace` is
    /// byte-identical to [`Scenario::run_in`].
    pub fn run_in_at(
        &self,
        method: AnnouncementMethod,
        tier: ReportTier,
        scratch: &mut crate::sync_driver::NegotiationScratch,
    ) -> NegotiationReport {
        scratch.run_at(self, method, tier)
    }
}

/// How much of a negotiation a report *retains*.
///
/// The tier never changes what is negotiated — every scalar accessor
/// ([`NegotiationReport::final_total`],
/// [`NegotiationReport::total_rewards`], …) answers identically at every
/// tier, because the [`ReportAssembler`](crate::engine::ReportAssembler)
/// folds each observation into the [`RoundDigest`] as it streams past.
/// What differs is the storage kept behind the accessors:
///
/// * [`ReportTier::Aggregate`] — per-negotiation scalars only (the
///   digest); no round records, no settlements, no scenario.
/// * [`ReportTier::Settlement`] — the digest plus the final per-customer
///   [`Settlement`]s; no round records, no scenario.
/// * [`ReportTier::FullTrace`] — everything, byte-identical to the
///   pre-tier behaviour: every [`RoundRecord`] (tables, bids) and, in a
///   campaign, the materialised [`Scenario`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum ReportTier {
    /// Per-day/per-peak scalars only.
    Aggregate,
    /// Final settlements and economics, no round records.
    Settlement,
    /// Today's behaviour: the complete per-round history.
    #[default]
    FullTrace,
}

impl ReportTier {
    /// All tiers, cheapest first.
    pub fn all() -> [ReportTier; 3] {
        [
            ReportTier::Aggregate,
            ReportTier::Settlement,
            ReportTier::FullTrace,
        ]
    }

    /// True if reports at this tier keep per-round records.
    pub fn keeps_rounds(self) -> bool {
        self == ReportTier::FullTrace
    }

    /// True if reports at this tier keep per-customer settlements.
    pub fn keeps_settlements(self) -> bool {
        self >= ReportTier::Settlement
    }

    /// The stable kebab-case name (archive headers, BENCH records, CLI).
    pub fn name(self) -> &'static str {
        match self {
            ReportTier::Aggregate => "aggregate",
            ReportTier::Settlement => "settlement",
            ReportTier::FullTrace => "full-trace",
        }
    }

    /// Parses [`ReportTier::name`] back (CLI flags, archive tooling).
    pub fn from_name(name: &str) -> Option<ReportTier> {
        ReportTier::all().into_iter().find(|t| t.name() == name)
    }
}

impl fmt::Display for ReportTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-negotiation scalars that survive every [`ReportTier`] — the
/// streaming fold of the round records and settlements a lower tier
/// drops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundDigest {
    /// Rounds the negotiation ran.
    pub rounds: u32,
    /// Messages exchanged across all rounds (excluding awards).
    pub messages: u64,
    /// Σ predicted use after the final round (the initial total if no
    /// round completed).
    pub final_total: KilowattHours,
    /// Total reward outlay across settlements.
    pub total_rewards: Money,
    /// Customers settled with.
    pub customers: u32,
}

impl RoundDigest {
    /// The digest of a negotiation that has not completed any round:
    /// `final_total` starts at the initial prediction.
    pub fn starting_at(initial_total: KilowattHours) -> RoundDigest {
        RoundDigest {
            rounds: 0,
            messages: 0,
            final_total: initial_total,
            total_rewards: Money::ZERO,
            customers: 0,
        }
    }

    /// Folds one completed round into the digest.
    pub fn observe_round(&mut self, record: &RoundRecord) {
        self.rounds += 1;
        self.messages += record.messages;
        self.final_total = record.predicted_total;
    }

    /// Folds the final settlements into the digest.
    pub fn observe_settlements(&mut self, settlements: &[Settlement]) {
        self.total_rewards = settlements.iter().map(|s| s.reward).sum();
        self.customers = settlements.len() as u32;
    }
}

/// Everything that happened in one negotiation round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round number, 1-based.
    pub round: u32,
    /// The announced reward table (reward-table method only). Shared
    /// with the round's announcement messages through an [`Arc`]: the
    /// engine snapshots each round's table exactly once (serialization
    /// and `Debug`/`PartialEq` are transparent).
    pub table: Option<Arc<RewardTable>>,
    /// Accepted cut-down per customer after this round.
    pub bids: Vec<Fraction>,
    /// Σ `predicted_use_with_cutdown` over customers (§6).
    pub predicted_total: KilowattHours,
    /// Messages exchanged this round.
    pub messages: u64,
}

impl RoundRecord {
    /// Relative overuse implied by this round's prediction.
    pub fn overuse_fraction(&self, normal_use: KilowattHours) -> f64 {
        overuse_fraction(self.predicted_total, normal_use)
    }
}

/// One customer's final settlement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Settlement {
    /// The implemented cut-down.
    pub cutdown: Fraction,
    /// The reward paid (reward-table method) or billing advantage
    /// granted (offer / request-for-bids).
    pub reward: Money,
}

/// The complete result of one negotiation.
///
/// What the report *stores* depends on its [`ReportTier`]; what it can
/// *answer* does not — every scalar accessor reads the [`RoundDigest`]
/// that survives all tiers, so campaign feedback and economics work
/// identically whether the rounds were kept or streamed away.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NegotiationReport {
    method: AnnouncementMethod,
    normal_use: KilowattHours,
    initial_total: KilowattHours,
    tier: ReportTier,
    digest: RoundDigest,
    rounds: Vec<RoundRecord>,
    status: NegotiationStatus,
    settlements: Vec<Settlement>,
    extra_messages: u64,
}

impl NegotiationReport {
    /// Assembles a full-trace report (used by the method
    /// implementations); the digest is derived from the stored rounds
    /// and settlements.
    pub(crate) fn new(
        method: AnnouncementMethod,
        normal_use: KilowattHours,
        initial_total: KilowattHours,
        rounds: Vec<RoundRecord>,
        status: NegotiationStatus,
        settlements: Vec<Settlement>,
        extra_messages: u64,
    ) -> NegotiationReport {
        let mut digest = RoundDigest::starting_at(initial_total);
        for r in &rounds {
            digest.observe_round(r);
        }
        digest.observe_settlements(&settlements);
        NegotiationReport {
            method,
            normal_use,
            initial_total,
            tier: ReportTier::FullTrace,
            digest,
            rounds,
            status,
            settlements,
            extra_messages,
        }
    }

    /// Reassembles a report from its stored parts — the
    /// `loadbal-archive` decoder's entry point. The caller vouches for
    /// consistency (a tier below `FullTrace` carries empty `rounds`; the
    /// digest matches whatever was folded at assembly time); nothing is
    /// recomputed and nothing panics.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        method: AnnouncementMethod,
        normal_use: KilowattHours,
        initial_total: KilowattHours,
        tier: ReportTier,
        digest: RoundDigest,
        rounds: Vec<RoundRecord>,
        status: NegotiationStatus,
        settlements: Vec<Settlement>,
        extra_messages: u64,
    ) -> NegotiationReport {
        NegotiationReport {
            method,
            normal_use,
            initial_total,
            tier,
            digest,
            rounds,
            status,
            settlements,
            extra_messages,
        }
    }

    /// Copies this report down to `tier`, dropping whatever the lower
    /// tier does not keep (a tier at or above the report's own is a
    /// plain clone). Streaming a negotiation at `tier` and downgrading a
    /// `FullTrace` report with `at_tier` produce equal reports — the
    /// archive writer and the tier-equivalence tests rely on it.
    pub fn at_tier(&self, tier: ReportTier) -> NegotiationReport {
        let tier = tier.min(self.tier);
        NegotiationReport {
            method: self.method,
            normal_use: self.normal_use,
            initial_total: self.initial_total,
            tier,
            digest: self.digest,
            rounds: if tier.keeps_rounds() {
                self.rounds.clone()
            } else {
                Vec::new()
            },
            status: self.status,
            settlements: if tier.keeps_settlements() {
                self.settlements.clone()
            } else {
                Vec::new()
            },
            extra_messages: self.extra_messages,
        }
    }

    /// The tier this report was assembled at — what it stores, not what
    /// it can answer.
    pub fn tier(&self) -> ReportTier {
        self.tier
    }

    /// The tier-independent scalar fold of the negotiation.
    pub fn digest(&self) -> RoundDigest {
        self.digest
    }

    /// Messages beyond the per-round counts (awards/confirmations).
    pub fn extra_messages(&self) -> u64 {
        self.extra_messages
    }

    /// The announcement method used.
    pub fn method(&self) -> AnnouncementMethod {
        self.method
    }

    /// The per-round history — empty below [`ReportTier::FullTrace`]
    /// (the count survives in [`NegotiationReport::digest`]).
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// Protocol outcome.
    pub fn status(&self) -> NegotiationStatus {
        self.status
    }

    /// True if the protocol terminated by its own rules.
    pub fn converged(&self) -> bool {
        self.status.is_converged()
    }

    /// Per-customer settlements — empty below
    /// [`ReportTier::Settlement`] (the total survives in
    /// [`NegotiationReport::digest`]).
    pub fn settlements(&self) -> &[Settlement] {
        &self.settlements
    }

    /// The normal-use capacity.
    pub fn normal_use(&self) -> KilowattHours {
        self.normal_use
    }

    /// Total predicted consumption before negotiation.
    pub fn initial_total(&self) -> KilowattHours {
        self.initial_total
    }

    /// Total predicted consumption after the final round.
    pub fn final_total(&self) -> KilowattHours {
        self.digest.final_total
    }

    /// Energy the negotiation took out of the peak interval: the drop in
    /// total predicted consumption from the initial prediction to the
    /// final round (unlike [`NegotiationReport::final_overuse`], not
    /// clamped at the capacity line, so cut-downs below capacity count).
    pub fn energy_shaved(&self) -> KilowattHours {
        (self.initial_total - self.final_total()).clamp_non_negative()
    }

    /// The negotiated aggregate cut as a fraction of the demand that
    /// entered negotiation, in `[0, 1]` — what a closed-loop campaign
    /// applies to the interval's actual consumption (zero for an empty
    /// population).
    pub fn shaved_fraction(&self) -> f64 {
        if self.initial_total.value() <= f64::EPSILON {
            return 0.0;
        }
        (self.energy_shaved() / self.initial_total).clamp(0.0, 1.0)
    }

    /// Predicted overuse before negotiation, in energy.
    pub fn initial_overuse(&self) -> KilowattHours {
        (self.initial_total - self.normal_use).clamp_non_negative()
    }

    /// Predicted overuse after the final round, in energy.
    pub fn final_overuse(&self) -> KilowattHours {
        (self.digest.final_total - self.normal_use).clamp_non_negative()
    }

    /// Initial relative overuse.
    pub fn initial_overuse_fraction(&self) -> f64 {
        overuse_fraction(self.initial_total, self.normal_use)
    }

    /// Final relative overuse.
    pub fn final_overuse_fraction(&self) -> f64 {
        overuse_fraction(self.digest.final_total, self.normal_use)
    }

    /// Total reward outlay across settlements.
    pub fn total_rewards(&self) -> Money {
        self.digest.total_rewards
    }

    /// Total messages exchanged (rounds plus awards/confirmations).
    pub fn total_messages(&self) -> u64 {
        self.digest.messages + self.extra_messages
    }

    /// Final accepted cut-down per customer.
    pub fn final_bids(&self) -> Vec<Fraction> {
        self.settlements.iter().map(|s| s.cutdown).collect()
    }
}

impl fmt::Display for NegotiationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} | {} rounds | overuse {:.1} → {:.1} | rewards {:.1} | msgs {} | {}",
            self.method,
            self.digest.rounds,
            self.initial_overuse().value(),
            self.final_overuse().value(),
            self.total_rewards().value(),
            self.total_messages(),
            self.status
        )
    }
}

/// Builds scenarios: the calibrated paper trace, seeded random
/// populations, or populations derived from `powergrid` households.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    normal_use: KilowattHours,
    interval: Interval,
    customers: Vec<CustomerProfile>,
    config: UtilityAgentConfig,
    method: AnnouncementMethod,
    tariff: Tariff,
}

impl ScenarioBuilder {
    /// An empty builder with paper defaults (no customers yet).
    pub fn new() -> ScenarioBuilder {
        ScenarioBuilder {
            normal_use: KilowattHours(100.0),
            interval: Interval::new(72, 80),
            customers: Vec::new(),
            config: UtilityAgentConfig::paper(),
            method: AnnouncementMethod::RewardTables,
            tariff: Tariff::default_scheme(),
        }
    }

    /// The calibrated Figure 6–9 scenario: normal capacity 100, predicted
    /// use 135 (20 customers × 6.75), a population whose thresholds make
    /// the negotiation follow the published trace — overuse 35 → ≈13 in
    /// three rounds, reward(0.4): 17 → ≈24.8 — and whose two most
    /// flexible members are the highlighted Figure 8/9 customer (bids
    /// 0.2, then 0.4, then 0.4).
    pub fn paper_figure_6() -> ScenarioBuilder {
        // Scale factors of the required-reward tables; ceilings chosen so
        // physical limits never distort the trace. Calibrated against §6
        // (see DESIGN.md §5): k = 1.0 customers are the Figure 8/9 ones.
        const POPULATION: [(f64, f64, usize); 5] = [
            // (k, ceiling, count)
            (1.0, 0.5, 2),
            (1.6, 0.4, 4),
            (1.7, 0.4, 2),
            (2.2, 0.3, 3),
            (3.0, 0.3, 9),
        ];
        let mut customers = Vec::new();
        for &(k, ceiling, count) in &POPULATION {
            for _ in 0..count {
                customers.push(CustomerProfile {
                    predicted_use: KilowattHours(6.75),
                    allowed_use: KilowattHours(6.75),
                    preferences: CustomerPreferences::from_base_scaled(
                        k,
                        Fraction::clamped(ceiling),
                    ),
                });
            }
        }
        let mut b = ScenarioBuilder::new();
        b.customers = customers;
        b
    }

    /// A seeded random population of `n` customers with total predicted
    /// use set to `(1 + overuse)` times the normal capacity of 100 per
    /// customer-20 equivalent (scaled with `n`).
    pub fn random(n: usize, overuse: f64, seed: u64) -> ScenarioBuilder {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce0_a110);
        let prefs = CustomerPreferences::population(n, 0.8, 3.0, seed);
        let mut customers = Vec::with_capacity(n);
        let mut total = 0.0;
        for p in prefs {
            let predicted = rng.gen_range(4.0..9.0);
            let allowed = predicted * rng.gen_range(0.95..1.10);
            total += predicted;
            customers.push(CustomerProfile {
                predicted_use: KilowattHours(predicted),
                allowed_use: KilowattHours(allowed),
                preferences: p,
            });
        }
        let mut b = ScenarioBuilder::new();
        b.normal_use = KilowattHours(total / (1.0 + overuse.max(0.0)));
        b.customers = customers;
        b
    }

    /// Derives a population from `powergrid` households: predicted use is
    /// each household's demand over the peak interval; the physical
    /// ceiling comes from its devices' flexibility; preference scale
    /// factors are seeded per household.
    pub fn from_households(
        households: &[powergrid::household::Household],
        axis: &powergrid::time::TimeAxis,
        mean_temp: f64,
        interval: Interval,
        capacity_margin: f64,
        seed: u64,
    ) -> ScenarioBuilder {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0040_b5e5);
        let mut customers = Vec::with_capacity(households.len());
        let mut total = KilowattHours::ZERO;
        for h in households {
            let (predicted, potential) = h.interval_flexibility(axis, mean_temp, seed, interval);
            let day_share = interval.hours(*axis) / 24.0;
            let allowed = h.allowed_use() * day_share;
            let ceiling = if predicted.value() <= f64::EPSILON {
                Fraction::ZERO
            } else {
                Fraction::clamped(potential / predicted)
            };
            let k = rng.gen_range(0.8..2.5);
            total += predicted;
            customers.push(CustomerProfile {
                predicted_use: predicted,
                allowed_use: allowed.max(predicted),
                preferences: CustomerPreferences::from_base_scaled(k, ceiling),
            });
        }
        let mut b = ScenarioBuilder::new();
        b.interval = interval;
        b.normal_use = total * capacity_margin;
        b.customers = customers;
        b
    }

    /// Derives a scenario for one *detected* peak: per-customer predicted
    /// use is each household's demand over the peak interval, the
    /// normal-use capacity is the grid capacity the peak was detected
    /// against, and the private preferences are physically grounded —
    /// the cut-down ceiling is the household's `saving_potential` over
    /// its interval usage (`max_cutdown`), and its reluctance scale `k`
    /// falls with that flexibility (a household whose load is mostly
    /// shiftable is cheap to convince; one with only rigid load demands
    /// more per cut-down level). No random betas: the same population,
    /// weather and peak always produce byte-identical scenarios.
    ///
    /// `demand_scale` is the day-type intensity factor the aggregate
    /// curve the peak was detected on carried
    /// ([`powergrid::calendar::DayType::intensity_factor`]: 1.0 on
    /// weekdays, 1.08 on weekends) — without it, weekend scenarios would
    /// understate the demand that caused the peak.
    pub fn from_peak(
        households: &[powergrid::household::Household],
        axis: &powergrid::time::TimeAxis,
        mean_temp: f64,
        peak: &powergrid::peak::Peak,
        seed: u64,
        demand_scale: f64,
    ) -> ScenarioBuilder {
        let mut scratch = powergrid::household::DemandScratch::new(axis);
        ScenarioBuilder::from_peak_with(
            households,
            axis,
            mean_temp,
            peak,
            seed,
            demand_scale,
            &mut scratch,
        )
    }

    /// [`ScenarioBuilder::from_peak`] against a reusable
    /// [`DemandScratch`](powergrid::household::DemandScratch) —
    /// byte-identical, but a campaign day loop (or fleet worker) reuses
    /// one scratch across every household of every peak of every day
    /// instead of allocating per call. This is the scenario-derivation
    /// hot path: one device profile per household per peak.
    #[allow(clippy::too_many_arguments)]
    pub fn from_peak_with(
        households: &[powergrid::household::Household],
        axis: &powergrid::time::TimeAxis,
        mean_temp: f64,
        peak: &powergrid::peak::Peak,
        seed: u64,
        demand_scale: f64,
        scratch: &mut powergrid::household::DemandScratch,
    ) -> ScenarioBuilder {
        ScenarioBuilder::from_peak_ref(
            powergrid::slab::PopulationRef::Objects(households),
            axis,
            mean_temp,
            peak,
            seed,
            demand_scale,
            scratch,
        )
    }

    /// [`ScenarioBuilder::from_peak_with`] over either population
    /// backend ([`PopulationRef`](powergrid::slab::PopulationRef)) —
    /// the slab arm derives the same customers through the batched
    /// [`interval_flexibility_slab`](powergrid::slab::interval_flexibility_slab)
    /// kernel, byte-identical to the per-object arm.
    #[allow(clippy::too_many_arguments)]
    pub fn from_peak_ref(
        population: powergrid::slab::PopulationRef<'_>,
        axis: &powergrid::time::TimeAxis,
        mean_temp: f64,
        peak: &powergrid::peak::Peak,
        seed: u64,
        demand_scale: f64,
        scratch: &mut powergrid::household::DemandScratch,
    ) -> ScenarioBuilder {
        assert!(
            demand_scale > 0.0 && demand_scale.is_finite(),
            "demand scale must be positive, got {demand_scale}"
        );
        let interval = peak.interval;
        let day_share = interval.hours(*axis) / 24.0;
        let mut customers = Vec::with_capacity(population.len());
        population.interval_flexibility_for_each(
            axis,
            mean_temp,
            seed,
            interval,
            scratch,
            |i, usage, potential| {
                let (usage, potential) = (usage * demand_scale, potential * demand_scale);
                let flexibility = if usage.value() > f64::EPSILON {
                    (potential / usage).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let ceiling = Fraction::clamped(flexibility);
                // k ∈ [0.6, 2.8]: fully flexible households sit near the
                // cheap end of the Figure-8 threshold family, rigid ones at
                // the reluctant end.
                let k = (2.8 - 2.2 * flexibility).clamp(0.6, 2.8);
                // The prorated allowance carries the same day-type scale as
                // demand, or the `.max(usage)` floor would silently erase
                // weekend households' consumption headroom.
                let allowed = population.allowed_use(i) * day_share * demand_scale;
                customers.push(CustomerProfile {
                    predicted_use: usage,
                    allowed_use: allowed.max(usage),
                    preferences: CustomerPreferences::from_base_scaled(k, ceiling),
                });
            },
        );
        let mut b = ScenarioBuilder::new();
        b.interval = interval;
        b.normal_use = peak.normal_use;
        b.customers = customers;
        b
    }

    /// Overrides the UA configuration.
    pub fn config(mut self, config: UtilityAgentConfig) -> ScenarioBuilder {
        self.config = config;
        self
    }

    /// Overrides the announcement method.
    pub fn method(mut self, method: AnnouncementMethod) -> ScenarioBuilder {
        self.method = method;
        self
    }

    /// Overrides the tariff.
    pub fn tariff(mut self, tariff: Tariff) -> ScenarioBuilder {
        self.tariff = tariff;
        self
    }

    /// Overrides the normal-use capacity.
    pub fn normal_use(mut self, normal_use: KilowattHours) -> ScenarioBuilder {
        self.normal_use = normal_use;
        self
    }

    /// Adds a customer.
    pub fn customer(mut self, profile: CustomerProfile) -> ScenarioBuilder {
        self.customers.push(profile);
        self
    }

    /// Finalises the scenario.
    ///
    /// # Panics
    ///
    /// Panics if no customers were added.
    pub fn build(self) -> Scenario {
        assert!(!self.customers.is_empty(), "a scenario needs customers");
        Scenario {
            normal_use: self.normal_use,
            interval: self.interval,
            customers: self.customers,
            config: self.config,
            method: self.method,
            tariff: self.tariff,
        }
    }
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concession::TerminationReason;

    #[test]
    fn figure_6_scenario_has_paper_numbers() {
        let s = ScenarioBuilder::paper_figure_6().build();
        assert_eq!(s.customers.len(), 20);
        assert!((s.initial_total().value() - 135.0).abs() < 1e-9);
        assert!((s.initial_overuse_fraction() - 0.35).abs() < 1e-9);
    }

    #[test]
    fn figure_6_trace_matches_paper() {
        let report = ScenarioBuilder::paper_figure_6().build().run();
        // Three rounds, as in Figures 6–7.
        assert_eq!(
            report.rounds().len(),
            3,
            "paper trace has 3 rounds: {report}"
        );
        assert_eq!(
            report.status(),
            NegotiationStatus::Converged(TerminationReason::OveruseAcceptable)
        );
        // Round 1: reward(0.4) = 17 (Figure 6).
        let r1 = report.rounds()[0].table.as_ref().unwrap();
        assert!((r1.reward_for(Fraction::clamped(0.4)).value() - 17.0).abs() < 1e-9);
        // Round 3: reward(0.4) ≈ 24.8 (Figure 7; we land at 24.65).
        let r3 = report.rounds()[2].table.as_ref().unwrap();
        let r3_04 = r3.reward_for(Fraction::clamped(0.4)).value();
        assert!(
            (23.5..=26.0).contains(&r3_04),
            "round-3 reward(0.4) = {r3_04}"
        );
        // Final overuse ≈ 13 (Figure 7; we land at 13.4).
        let final_overuse = report.final_overuse().value();
        assert!(
            (10.0..=16.0).contains(&final_overuse),
            "final overuse {final_overuse}"
        );
    }

    #[test]
    fn figure_8_customer_bids_match_paper() {
        let report = ScenarioBuilder::paper_figure_6().build().run();
        // Customers 0 and 1 are the k = 1.0 Figure 8/9 customers.
        let per_round: Vec<Fraction> = report.rounds().iter().map(|r| r.bids[0]).collect();
        assert_eq!(
            per_round,
            vec![
                Fraction::clamped(0.2),
                Fraction::clamped(0.4),
                Fraction::clamped(0.4)
            ],
            "Figure 8/9: bids 0.2 in round 1, 0.4 in rounds 2 and 3"
        );
    }

    #[test]
    fn random_scenarios_are_deterministic() {
        let a = ScenarioBuilder::random(30, 0.35, 7).build();
        let b = ScenarioBuilder::random(30, 0.35, 7).build();
        assert_eq!(a, b);
        assert!((a.initial_overuse_fraction() - 0.35).abs() < 1e-9);
    }

    #[test]
    fn builder_overrides() {
        let s = ScenarioBuilder::paper_figure_6()
            .method(AnnouncementMethod::Offer)
            .normal_use(KilowattHours(120.0))
            .build();
        assert_eq!(s.method, AnnouncementMethod::Offer);
        assert_eq!(s.normal_use, KilowattHours(120.0));
    }

    #[test]
    #[should_panic(expected = "needs customers")]
    fn empty_scenario_panics() {
        let _ = ScenarioBuilder::new().build();
    }

    #[test]
    fn from_households_builds_consistent_profiles() {
        use powergrid::population::PopulationBuilder;
        use powergrid::time::{TimeAxis, TimeOfDay};
        let axis = TimeAxis::quarter_hourly();
        let homes = PopulationBuilder::new().households(15).build(3);
        let interval = axis.between(TimeOfDay::hm(17, 0).unwrap(), TimeOfDay::hm(20, 0).unwrap());
        let s = ScenarioBuilder::from_households(&homes, &axis, -4.0, interval, 0.8, 3).build();
        assert_eq!(s.customers.len(), 15);
        assert!(s.initial_overuse_fraction() > 0.0);
        for c in &s.customers {
            assert!(c.allowed_use >= c.predicted_use);
        }
    }

    #[test]
    fn from_peak_is_deterministic_and_physically_grounded() {
        use powergrid::peak::Peak;
        use powergrid::population::PopulationBuilder;
        use powergrid::time::{TimeAxis, TimeOfDay};
        use powergrid::units::KilowattHours;
        let axis = TimeAxis::quarter_hourly();
        let homes = PopulationBuilder::new().households(25).build(4);
        let interval = axis.between(TimeOfDay::hm(17, 0).unwrap(), TimeOfDay::hm(20, 0).unwrap());
        let peak = Peak {
            interval,
            predicted_overuse: KilowattHours(30.0),
            normal_use: KilowattHours(100.0),
        };
        let a = ScenarioBuilder::from_peak(&homes, &axis, -4.0, &peak, 9, 1.0).build();
        let b = ScenarioBuilder::from_peak(&homes, &axis, -4.0, &peak, 9, 1.0).build();
        assert_eq!(a, b, "same population + peak ⇒ identical scenario");
        // The weekend intensity factor scales predicted demand (the
        // ceiling fraction is scale-invariant).
        let weekend = ScenarioBuilder::from_peak(&homes, &axis, -4.0, &peak, 9, 1.08).build();
        for (w, c) in weekend.customers.iter().zip(&a.customers) {
            assert!(
                (w.predicted_use.value() - 1.08 * c.predicted_use.value()).abs() < 1e-9,
                "weekend demand carries the 1.08 factor"
            );
            // The ceiling fraction is scale-invariant (up to rounding).
            assert!(
                (w.preferences.max_cutdown().value() - c.preferences.max_cutdown().value()).abs()
                    < 1e-12
            );
        }
        assert_eq!(a.normal_use, peak.normal_use);
        assert_eq!(a.interval, interval);
        for (c, h) in a.customers.iter().zip(&homes) {
            // Predicted use is the household's physical demand over the peak.
            let expected = h.demand_profile(&axis, -4.0, 9).energy_over(interval);
            assert_eq!(c.predicted_use, expected);
            // The preference ceiling is the household's physical max cut-down.
            assert_eq!(
                c.preferences.max_cutdown(),
                h.max_cutdown(&axis, -4.0, 9, interval)
            );
            assert!(c.allowed_use >= c.predicted_use);
        }
        // More flexible households are cheaper to convince (smaller k ⇒
        // lower required reward at every level).
        let mut pairs: Vec<_> = a
            .customers
            .iter()
            .map(|c| {
                (
                    c.preferences.max_cutdown(),
                    c.preferences.required_for(Fraction::clamped(0.3)).unwrap(),
                )
            })
            .collect();
        pairs.sort_by_key(|x| x.0);
        for w in pairs.windows(2) {
            assert!(
                w[0].1 >= w[1].1,
                "flexibility up ⇒ required reward down: {pairs:?}"
            );
        }
    }

    #[test]
    fn from_peak_with_scratch_matches_allocating_path() {
        use powergrid::household::DemandScratch;
        use powergrid::peak::Peak;
        use powergrid::population::PopulationBuilder;
        use powergrid::time::{TimeAxis, TimeOfDay};
        let axis = TimeAxis::quarter_hourly();
        let homes = PopulationBuilder::new().households(30).build(6);
        let peak = Peak {
            interval: axis.between(TimeOfDay::hm(18, 0).unwrap(), TimeOfDay::hm(20, 0).unwrap()),
            predicted_overuse: KilowattHours(25.0),
            normal_use: KilowattHours(110.0),
        };
        let mut scratch = DemandScratch::new(&axis);
        // Scratch reuse across consecutive peaks must not leak state.
        for seed in [2u64, 2, 9] {
            let fresh = ScenarioBuilder::from_peak(&homes, &axis, -6.0, &peak, seed, 1.08).build();
            let reused = ScenarioBuilder::from_peak_with(
                &homes,
                &axis,
                -6.0,
                &peak,
                seed,
                1.08,
                &mut scratch,
            )
            .build();
            assert_eq!(fresh, reused, "seed {seed}");
        }
    }

    #[test]
    fn energy_shaved_matches_round_history() {
        let report = ScenarioBuilder::paper_figure_6().build().run();
        let last = report.rounds().last().unwrap().predicted_total;
        assert_eq!(report.final_total(), last);
        assert_eq!(report.initial_total(), KilowattHours(135.0));
        assert!(
            (report.energy_shaved() - (KilowattHours(135.0) - last))
                .value()
                .abs()
                < 1e-12
        );
        assert!(report.energy_shaved().value() > 0.0);
    }

    #[test]
    fn report_accessors_consistent() {
        let report = ScenarioBuilder::paper_figure_6().build().run();
        assert_eq!(report.method(), AnnouncementMethod::RewardTables);
        assert_eq!(report.final_bids().len(), 20);
        assert!(report.total_messages() > 0);
        assert!(report.total_rewards() > Money::ZERO);
        assert!(report.to_string().contains("reward-tables"));
        let frac = report.final_overuse_fraction();
        assert!((frac - report.final_overuse().value() / 100.0).abs() < 1e-9);
    }
}
