//! Negotiation-strategy selection knowledge (§3.2.4).
//!
//! "One solution is to allow agents to use all three methods (and maybe
//! even more) as different strategies. The agents can then decide
//! themselves which strategy to use and when. ... This depends, for
//! example, on the amount of time available for the negotiation process."

use crate::methods::AnnouncementMethod;
use serde::{Deserialize, Serialize};

/// Situation features the selection knowledge conditions on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NegotiationContext {
    /// Communication rounds that fit before the peak arrives.
    pub rounds_available: u32,
    /// Predicted relative overuse (e.g. `0.35`).
    pub overuse: f64,
    /// Number of Customer Agents involved.
    pub customers: usize,
}

/// Selects an announcement method for the context, with the §3.2.4
/// rationale:
///
/// * almost no time (< 2 rounds) → **offer** — "very fast, because only
///   one round of negotiation is required";
/// * a moderate budget → **reward tables** — the structured intermediate,
///   customers keep influence but convergence is driven by the UA;
/// * plenty of time and a mild peak → **request for bids** — maximal
///   customer influence, but "a more complex and time consuming
///   negotiation process and therefore cannot be made shortly before a
///   peak is expected".
pub fn select_method(ctx: NegotiationContext) -> (AnnouncementMethod, &'static str) {
    if ctx.rounds_available < 2 {
        return (
            AnnouncementMethod::Offer,
            "peak imminent: only the one-round offer method fits",
        );
    }
    if ctx.rounds_available >= 10 && ctx.overuse < 0.25 {
        return (
            AnnouncementMethod::RequestForBids,
            "ample time and a mild peak: grant customers maximal influence",
        );
    }
    (
        AnnouncementMethod::RewardTables,
        "moderate time budget: reward tables converge fast with customer influence",
    )
}

/// The same selection knowledge as [`select_method`], represented
/// explicitly as a DESIRE knowledge base — "agent models have been
/// designed in which explicit knowledge of negotiation strategies and
/// their applicability is represented" (§7). The UA's
/// `determine_announcement_method` component (Figure 2) reasons over
/// exactly these rules.
pub fn strategy_kb() -> desire::kb::KnowledgeBase {
    desire::kb::KnowledgeBase::new("determine_announcement_method").with_rules(&[
        // Peak imminent: only the one-round method fits.
        "rounds_available(R) and lt(R, 2) => method(offer)",
        // Ample time and a mild peak: grant customers maximal influence.
        "rounds_available(R) and gte(R, 10) and overuse(O) and lt(O, 0.25) \
         => method(request_for_bids)",
        // Otherwise: the structured intermediate.
        "rounds_available(R) and gte(R, 2) and overuse(O) and gte(O, 0.25) \
         => method(reward_tables)",
        "rounds_available(R) and gte(R, 2) and lt(R, 10) and overuse(O) and lt(O, 0.25) \
         => method(reward_tables)",
    ])
}

/// Runs the [`strategy_kb`] on a context via the DESIRE engine; returns
/// the selected method.
///
/// # Panics
///
/// Panics if the knowledge base fails to derive exactly one method — a
/// knowledge-engineering bug the tests guard against.
pub fn select_method_by_kb(ctx: NegotiationContext) -> AnnouncementMethod {
    use desire::engine::{Engine, FactBase, TruthValue};
    use desire::term::{Atom, Term};
    let mut facts = FactBase::new();
    facts.assert(
        Atom::new(
            "rounds_available",
            vec![Term::number(f64::from(ctx.rounds_available))],
        ),
        TruthValue::True,
    );
    facts.assert(
        Atom::new("overuse", vec![Term::number(ctx.overuse)]),
        TruthValue::True,
    );
    Engine::new()
        .infer(&strategy_kb(), &mut facts)
        .expect("strategy rules are consistent");
    let candidates = [
        ("offer", AnnouncementMethod::Offer),
        ("request_for_bids", AnnouncementMethod::RequestForBids),
        ("reward_tables", AnnouncementMethod::RewardTables),
    ];
    let derived: Vec<AnnouncementMethod> = candidates
        .iter()
        .filter(|(name, _)| facts.holds(&Atom::new("method", vec![Term::constant(*name)])))
        .map(|&(_, m)| m)
        .collect();
    assert_eq!(
        derived.len(),
        1,
        "strategy knowledge must select exactly one method, got {derived:?}"
    );
    derived[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_and_function_agree_everywhere() {
        for rounds in [0u32, 1, 2, 5, 9, 10, 15, 30] {
            for overuse in [0.05, 0.15, 0.24, 0.25, 0.3, 0.5] {
                let ctx = NegotiationContext {
                    rounds_available: rounds,
                    overuse,
                    customers: 100,
                };
                let (functional, _) = select_method(ctx);
                let declarative = select_method_by_kb(ctx);
                assert_eq!(
                    functional, declarative,
                    "divergence at rounds={rounds}, overuse={overuse}"
                );
            }
        }
    }

    #[test]
    fn kb_has_rules_for_each_method() {
        let kb = strategy_kb();
        assert!(kb.rules().len() >= 3);
    }

    #[test]
    fn imminent_peak_forces_offer() {
        let (m, why) = select_method(NegotiationContext {
            rounds_available: 1,
            overuse: 0.4,
            customers: 1000,
        });
        assert_eq!(m, AnnouncementMethod::Offer);
        assert!(why.contains("one-round"));
    }

    #[test]
    fn ample_time_mild_peak_uses_request_for_bids() {
        let (m, _) = select_method(NegotiationContext {
            rounds_available: 20,
            overuse: 0.1,
            customers: 100,
        });
        assert_eq!(m, AnnouncementMethod::RequestForBids);
    }

    #[test]
    fn default_is_reward_tables() {
        let (m, _) = select_method(NegotiationContext {
            rounds_available: 5,
            overuse: 0.35,
            customers: 100,
        });
        assert_eq!(m, AnnouncementMethod::RewardTables);
        // Severe peak with lots of time still avoids the slow method.
        let (m2, _) = select_method(NegotiationContext {
            rounds_available: 20,
            overuse: 0.5,
            customers: 100,
        });
        assert_eq!(m2, AnnouncementMethod::RewardTables);
    }
}
