//! Parallel scenario sweeps: fan a grid of negotiations across cores.
//!
//! The β-sensitivity and scaling experiments run hundreds of
//! *independent* negotiations. Each [`Scenario`] is a pure value — its
//! population is fixed by a seed at build time and
//! [`Scenario::run_with`] is deterministic — so a sweep parallelizes
//! perfectly: [`ScenarioSweep::run`] fans the grid across a
//! [`WorkerPool`] (borrowing the scenarios, results in input order)
//! and is **byte-identical** to [`ScenarioSweep::run_sequential`].
//!
//! The fan-out machinery itself lives in [`WorkerPool`], a reusable
//! index-addressed task runner shared by the sweep, the campaign day
//! loop and the multi-campaign [`fleet`](crate::fleet) scheduler — one
//! pool type, every parallel surface of the crate. Since PR 5 the pool
//! is **persistent**: worker threads spawn once, park on a condition
//! variable between batches, and every [`WorkerPool::run`] call only
//! publishes a batch descriptor — no per-call thread spawn, which is
//! what a campaign day loop or fleet season pays hundreds of times.
//!
//! # Example
//!
//! ```
//! use loadbal_core::sweep::ScenarioSweep;
//! use loadbal_core::session::ScenarioBuilder;
//!
//! let sweep = ScenarioSweep::new()
//!     .point("n=10", ScenarioBuilder::random(10, 0.35, 1).build())
//!     .point("n=20", ScenarioBuilder::random(20, 0.35, 2).build());
//! let outcomes = sweep.run();
//! assert_eq!(outcomes.len(), 2);
//! assert!(outcomes.iter().all(|o| o.report.converged()));
//! ```

use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, Scenario};
use crate::sync_driver::NegotiationScratch;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

pub use pool::WorkerPool;

/// The persistent worker pool. The lifetime-erased batch hand-off this
/// needs is the only `unsafe` in the crate, so it lives in its own
/// module with the safety argument spelled out in one place.
#[allow(unsafe_code)]
mod pool {
    use std::num::NonZeroUsize;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::thread::JoinHandle;

    /// A worker's per-batch task runner: claims task `i`, returns `true`
    /// if the task panicked (the payload is already recorded).
    type Runner<'a> = Box<dyn FnMut(usize) -> bool + 'a>;

    type PanicPayload = Box<dyn std::any::Any + Send>;

    /// One submitted batch, living in the submitting `run_with` frame.
    ///
    /// Workers reach it through a lifetime-erased raw pointer
    /// ([`Job`]); the submitter guarantees the frame outlives every
    /// access (see the safety argument on [`WorkerPool::run_with`]).
    struct Batch<'a> {
        /// Builds a per-worker runner (each worker gets its own scratch
        /// state; the runner writes results into the batch's slots).
        make: &'a (dyn Fn() -> Runner<'a> + Sync),
        /// Next unclaimed task index.
        next: AtomicUsize,
        /// Total tasks in the batch.
        count: usize,
        /// A panic that escaped *outside* a task (e.g. a panicking
        /// scratch constructor). Task panics land in their result slot
        /// instead, so they resurface in deterministic index order.
        stray_panic: Mutex<Option<PanicPayload>>,
    }

    /// The injector's view of a batch: a lifetime-erased pointer plus
    /// the epoch that tells parked workers it is new work.
    #[derive(Clone, Copy)]
    struct Job {
        batch: *const Batch<'static>,
        epoch: u64,
    }

    // SAFETY: the pointer is only dereferenced by workers while the
    // submitting frame keeps the batch alive (see `run_with`).
    unsafe impl Send for Job {}

    struct PoolState {
        job: Option<Job>,
        epoch: u64,
        /// Workers currently holding a reference to the published batch.
        attached: usize,
        shutdown: bool,
    }

    struct PoolShared {
        state: Mutex<PoolState>,
        /// Workers park here between batches.
        work_ready: Condvar,
        /// The submitter parks here until every worker detached.
        batch_done: Condvar,
    }

    fn lock(m: &Mutex<PoolState>) -> MutexGuard<'_, PoolState> {
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A reusable fan-out worker pool over **persistent** std threads.
    ///
    /// # Lifecycle
    ///
    /// * **Spawn once** — `threads − 1` worker threads are spawned
    ///   lazily on the first parallel [`WorkerPool::run`] and then kept
    ///   for the pool's whole life (the calling thread is the final
    ///   executor, so `threads` tasks run concurrently).
    /// * **Park** — between batches the workers block on a condition
    ///   variable; an idle pool costs nothing but the parked threads.
    /// * **Respawn on panic** — a worker that dies executing a batch
    ///   (its task panicked, or its scratch constructor did) is
    ///   replaced before the next batch, so one poisoned negotiation
    ///   never shrinks the pool.
    /// * **Join on drop** — dropping the pool wakes and joins every
    ///   worker.
    ///
    /// One pool value is shared by every parallel surface of the crate:
    /// [`ScenarioSweep`](super::ScenarioSweep) borrows it for a grid,
    /// the campaign day loop for each day's peaks, and the
    /// [`FleetRunner`](crate::fleet::FleetRunner) for whole campaigns.
    /// Results always come back in task-index order, independent of
    /// scheduling.
    ///
    /// Worker panics are caught per task and the **original payload**
    /// is resurfaced on the calling thread once the batch has drained
    /// (lowest task index wins when several tasks panic), so a
    /// panicking cell reads exactly like a panicking sequential run.
    pub struct WorkerPool {
        threads: NonZeroUsize,
        shared: Arc<PoolShared>,
        workers: Mutex<Vec<JoinHandle<()>>>,
        /// Serializes submissions: one batch in flight per pool. A
        /// submitter finding it busy (concurrent or re-entrant `run`)
        /// falls back to running its batch inline.
        submit: Mutex<()>,
    }

    impl WorkerPool {
        /// A pool with an explicit worker cap.
        pub fn new(threads: NonZeroUsize) -> WorkerPool {
            WorkerPool {
                threads,
                shared: Arc::new(PoolShared {
                    state: Mutex::new(PoolState {
                        job: None,
                        epoch: 0,
                        attached: 0,
                        shutdown: false,
                    }),
                    work_ready: Condvar::new(),
                    batch_done: Condvar::new(),
                }),
                workers: Mutex::new(Vec::new()),
                submit: Mutex::new(()),
            }
        }

        /// A pool sized to the machine (`std::thread::available_parallelism`,
        /// falling back to one worker where that is unavailable).
        pub fn with_available_parallelism() -> WorkerPool {
            WorkerPool::new(
                std::thread::available_parallelism()
                    .unwrap_or(NonZeroUsize::new(1).expect("1 > 0")),
            )
        }

        /// A pool with the given cap, or machine parallelism when `None` —
        /// the convention every `threads(...)` builder knob in this crate
        /// follows.
        pub fn sized(threads: Option<NonZeroUsize>) -> WorkerPool {
            threads.map_or_else(WorkerPool::with_available_parallelism, WorkerPool::new)
        }

        /// The worker cap.
        pub fn threads(&self) -> NonZeroUsize {
            self.threads
        }

        /// Runs `count` index-addressed tasks across the pool's workers
        /// and returns their results in index order.
        ///
        /// Workers claim indices from a shared atomic counter, so the
        /// *schedule* is nondeterministic but the returned `Vec` never
        /// is: element `i` is `task(i)`. With one worker (or one task)
        /// the tasks run directly on the calling thread.
        ///
        /// # Panics
        ///
        /// If a task panics, the panic is caught, the remaining tasks
        /// still run, and the original payload is re-raised on the
        /// calling thread after the batch has drained.
        pub fn run<T, F>(&self, count: usize, task: F) -> Vec<T>
        where
            T: Send,
            F: Fn(usize) -> T + Sync,
        {
            self.run_with(count, || (), |(), i| task(i))
        }

        /// [`WorkerPool::run`] with **per-worker scratch state**: every
        /// executor (each worker thread plus the calling thread) builds
        /// one `S` with `init` and threads it through all the tasks it
        /// claims — how the sweep, the campaign day loop and the fleet
        /// reuse one [`NegotiationScratch`](crate::sync_driver::NegotiationScratch)
        /// per worker instead of allocating fresh engines per task.
        ///
        /// A task that panics poisons its executor's scratch; the
        /// executor abandons it (a worker thread dies and is respawned
        /// before the next batch; the calling thread builds a fresh
        /// scratch), so later tasks never see a half-mutated `S`.
        pub fn run_with<S, T, I, F>(&self, count: usize, init: I, task: F) -> Vec<T>
        where
            T: Send,
            I: Fn() -> S + Sync,
            F: Fn(&mut S, usize) -> T + Sync,
        {
            let inline = |init: &I, task: &F| {
                let mut scratch = init();
                (0..count).map(|i| task(&mut scratch, i)).collect()
            };
            if self.threads.get() == 1 || count <= 1 {
                return inline(&init, &task);
            }
            // One batch in flight per pool: a concurrent (or re-entrant)
            // submitter runs inline rather than queueing or deadlocking.
            // A *poisoned* lock is different — a previous batch's panic
            // resurfaced through the guard; recover it, or the pool
            // would silently degrade to inline execution forever.
            let _submission = match self.submit.try_lock() {
                Ok(guard) => guard,
                Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => return inline(&init, &task),
            };
            self.ensure_workers();

            let mut slots: Vec<Option<std::thread::Result<T>>> = (0..count).map(|_| None).collect();
            let slots_ptr = SlotTable(slots.as_mut_ptr());
            let make = || {
                let mut scratch = init();
                let task = &task;
                let runner: Runner<'_> = Box::new(move |i: usize| {
                    let result = catch_unwind(AssertUnwindSafe(|| task(&mut scratch, i)));
                    let panicked = result.is_err();
                    // SAFETY: `i` came out of the batch's `fetch_add`
                    // claim counter, so no two executors ever write the
                    // same slot, and the submitting frame keeps `slots`
                    // alive until every executor is done (teardown
                    // below waits for `attached == 0`).
                    unsafe { slots_ptr.write(i, result) };
                    panicked
                });
                runner
            };
            let batch = Batch {
                make: &make,
                next: AtomicUsize::new(0),
                count,
                stray_panic: Mutex::new(None),
            };
            // Publish. The lifetime erasure is sound because this frame
            // does not return (and does not touch `slots` again) until
            // the teardown below has (a) taken the job back so no new
            // worker can attach and (b) observed `attached == 0` under
            // the state lock, which orders every worker's slot writes
            // before our reads.
            {
                let mut state = lock(&self.shared.state);
                state.epoch += 1;
                state.job = Some(Job {
                    batch: std::ptr::from_ref(&batch).cast::<Batch<'static>>(),
                    epoch: state.epoch,
                });
                self.shared.work_ready.notify_all();
            }
            // The calling thread is an executor too: claim tasks until
            // the queue drains. A panicking scratch constructor must
            // still go through teardown, so catch and re-raise after.
            let caller = catch_unwind(AssertUnwindSafe(|| {
                let mut runner = make();
                loop {
                    let i = batch.next.fetch_add(1, Ordering::Relaxed);
                    if i >= batch.count {
                        break;
                    }
                    if runner(i) {
                        // The task panicked into this scratch; start a
                        // fresh one for the remaining tasks.
                        runner = make();
                    }
                }
            }));
            // Teardown: retract the job, then wait for every attached
            // worker to finish its claimed tasks and let go of `batch`.
            {
                let mut state = lock(&self.shared.state);
                state.job = None;
                while state.attached > 0 {
                    state = self
                        .shared
                        .batch_done
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
            if let Err(payload) = caller {
                std::panic::resume_unwind(payload);
            }
            // Collect in index order; the lowest-index task panic wins,
            // ahead of any stray (non-task) worker panic.
            let mut out = Vec::with_capacity(count);
            let mut panic: Option<PanicPayload> = None;
            for slot in slots {
                match slot.expect("every task was claimed and ran exactly once") {
                    Ok(value) => out.push(value),
                    Err(payload) => {
                        panic.get_or_insert(payload);
                    }
                }
            }
            let panic = panic.or_else(|| {
                batch
                    .stray_panic
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take()
            });
            if let Some(payload) = panic {
                std::panic::resume_unwind(payload);
            }
            assert_eq!(out.len(), count, "every task ran exactly once");
            out
        }

        /// Tops the worker set back up to `threads − 1` live threads,
        /// replacing any that died on a previous batch's panic.
        fn ensure_workers(&self) {
            let mut workers = self
                .workers
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            workers.retain(|handle| !handle.is_finished());
            while workers.len() + 1 < self.threads.get() {
                let shared = Arc::clone(&self.shared);
                workers.push(
                    std::thread::Builder::new()
                        .name("loadbal-pool-worker".into())
                        .spawn(move || worker_loop(&shared))
                        .expect("worker thread spawn"),
                );
            }
        }
    }

    /// The parked-worker loop: wait for an unseen batch, attach, drain,
    /// detach — and die (to be respawned) if a task panicked, since the
    /// per-worker scratch state is suspect afterwards.
    fn worker_loop(shared: &PoolShared) {
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut state = lock(&shared.state);
                loop {
                    if state.shutdown {
                        return;
                    }
                    match state.job {
                        Some(job) if job.epoch != seen_epoch => {
                            state.attached += 1;
                            break job;
                        }
                        _ => {
                            state = shared
                                .work_ready
                                .wait(state)
                                .unwrap_or_else(|poisoned| poisoned.into_inner());
                        }
                    }
                }
            };
            seen_epoch = job.epoch;
            // SAFETY: attaching happened under the state lock while the
            // job was still published, and the submitter cannot pass
            // its teardown (observe `attached == 0`) until this worker
            // detaches below — so the batch (and everything it borrows)
            // is alive for the whole region between attach and detach.
            let batch = unsafe { &*job.batch };
            let died = catch_unwind(AssertUnwindSafe(|| {
                let mut runner = (batch.make)();
                loop {
                    let i = batch.next.fetch_add(1, Ordering::Relaxed);
                    if i >= batch.count {
                        return false;
                    }
                    if runner(i) {
                        // Task panic: payload already in its slot. This
                        // worker's scratch is suspect — stop claiming
                        // and retire; the caller drains the rest.
                        return true;
                    }
                }
            }))
            .unwrap_or_else(|payload| {
                // A panic outside any task (scratch construction).
                batch
                    .stray_panic
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .get_or_insert(payload);
                true
            });
            {
                let mut state = lock(&shared.state);
                state.attached -= 1;
                if state.attached == 0 {
                    shared.batch_done.notify_all();
                }
            }
            if died {
                return; // respawned by `ensure_workers` before the next batch
            }
        }
    }

    /// A `Send + Sync` wrapper for the result-slot base pointer; safety
    /// rests on the disjoint-index claim protocol (see `run_with`).
    /// Writes go through [`SlotTable::write`] so closures capture the
    /// whole wrapper (with its `Sync` bound), never the raw pointer
    /// field alone.
    struct SlotTable<T>(*mut Option<std::thread::Result<T>>);

    impl<T> SlotTable<T> {
        /// Stores one executor's result.
        ///
        /// # Safety
        ///
        /// `i` must be a uniquely claimed in-bounds task index and the
        /// slot buffer must still be alive (the submitting frame does
        /// not return before every executor is done).
        unsafe fn write(&self, i: usize, value: std::thread::Result<T>) {
            *self.0.add(i) = Some(value);
        }
    }

    // Not derived: `derive(Clone, Copy)` would demand `T: Clone/Copy`,
    // but the table is a pointer — copying it never copies a `T`.
    #[allow(clippy::expl_impl_clone_on_copy)]
    impl<T> Clone for SlotTable<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for SlotTable<T> {}

    // SAFETY: the table is a raw pointer into the submitting frame's
    // slot buffer; sending it to a worker is sound because every
    // executor writes only the slots whose indices it uniquely
    // claimed, and the submitter does not read (or free) the buffer
    // until all executors are done.
    unsafe impl<T: Send> Send for SlotTable<T> {}
    // SAFETY: sharing the table between executors is sound for the
    // same reason — disjoint claimed indices mean no two threads ever
    // touch the same slot, so `&SlotTable` hands out no aliased `&mut`.
    unsafe impl<T: Send> Sync for SlotTable<T> {}

    impl Drop for WorkerPool {
        fn drop(&mut self) {
            {
                let mut state = lock(&self.shared.state);
                state.shutdown = true;
                self.shared.work_ready.notify_all();
            }
            for handle in self
                .workers
                .get_mut()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .drain(..)
            {
                let _ = handle.join();
            }
        }
    }

    impl std::fmt::Debug for WorkerPool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let live = self
                .workers
                .lock()
                .map(|w| w.iter().filter(|h| !h.is_finished()).count())
                .unwrap_or(0);
            f.debug_struct("WorkerPool")
                .field("threads", &self.threads)
                .field("live_workers", &live)
                .finish()
        }
    }

    impl Default for WorkerPool {
        /// A machine-sized pool.
        fn default() -> Self {
            WorkerPool::with_available_parallelism()
        }
    }
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable cell label (policy, size, seed, ...).
    pub label: String,
    /// The scenario to negotiate.
    pub scenario: Scenario,
    /// The announcement method to run it with.
    pub method: AnnouncementMethod,
}

/// One finished cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The cell's label.
    pub label: String,
    /// The negotiation report.
    pub report: NegotiationReport,
}

/// A grid of independent negotiations with a parallel runner.
#[derive(Debug, Default)]
pub struct ScenarioSweep {
    points: Vec<SweepPoint>,
    threads: Option<NonZeroUsize>,
    /// The persistent pool, built on first use so a sweep that only
    /// ever runs sequentially never spawns a thread.
    pool: OnceLock<WorkerPool>,
}

impl Clone for ScenarioSweep {
    /// Clones the grid configuration; the clone gets its own (lazily
    /// spawned) worker pool.
    fn clone(&self) -> ScenarioSweep {
        ScenarioSweep {
            points: self.points.clone(),
            threads: self.threads,
            pool: OnceLock::new(),
        }
    }
}

impl ScenarioSweep {
    /// An empty sweep.
    pub fn new() -> ScenarioSweep {
        ScenarioSweep {
            points: Vec::new(),
            threads: None,
            pool: OnceLock::new(),
        }
    }

    /// Adds a cell running the scenario's configured method.
    pub fn point(self, label: impl Into<String>, scenario: Scenario) -> ScenarioSweep {
        let method = scenario.method;
        self.point_with(label, scenario, method)
    }

    /// Adds a cell with an explicit announcement method.
    pub fn point_with(
        mut self,
        label: impl Into<String>,
        scenario: Scenario,
        method: AnnouncementMethod,
    ) -> ScenarioSweep {
        self.points.push(SweepPoint {
            label: label.into(),
            scenario,
            method,
        });
        self
    }

    /// Adds one seeded random-population cell per seed — the common
    /// "same configuration, many populations" experiment axis. The
    /// per-cell scenario (and therefore the whole sweep) is a pure
    /// function of `(customers, overuse, seed)`.
    pub fn seeded_grid(
        mut self,
        label_prefix: &str,
        customers: usize,
        overuse: f64,
        seeds: impl IntoIterator<Item = u64>,
        configure: impl Fn(crate::session::ScenarioBuilder) -> crate::session::ScenarioBuilder,
    ) -> ScenarioSweep {
        for seed in seeds {
            let builder = crate::session::ScenarioBuilder::random(customers, overuse, seed);
            let scenario = configure(builder).build();
            let method = scenario.method;
            self.points.push(SweepPoint {
                label: format!("{label_prefix}/seed{seed}"),
                scenario,
                method,
            });
        }
        self
    }

    /// Caps the worker-thread count (defaults to the machine's available
    /// parallelism). Call before the first `run`; the pool is built
    /// once.
    pub fn threads(mut self, threads: NonZeroUsize) -> ScenarioSweep {
        self.threads = Some(threads);
        self.pool = OnceLock::new();
        self
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The configured cells.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Consumes the sweep, handing back its cells (grid order) — lets a
    /// caller that built scenarios into the sweep recover them after
    /// running without having kept clones.
    pub fn into_points(self) -> Vec<SweepPoint> {
        self.points
    }

    /// Runs every cell in parallel over the sweep's [`WorkerPool`];
    /// outcomes come back in grid order and are byte-identical to
    /// [`ScenarioSweep::run_sequential`].
    ///
    /// The pool's workers borrow the grid directly — no scenario is
    /// cloned, however large the sweep — and each worker reuses one
    /// [`NegotiationScratch`] across every cell it claims. A panicking
    /// cell resurfaces its original panic payload here (see
    /// [`WorkerPool::run`]), exactly as a sequential run would.
    pub fn run(&self) -> Vec<SweepOutcome> {
        self.pool()
            .run_with(self.points.len(), NegotiationScratch::new, |scratch, i| {
                let point = &self.points[i];
                SweepOutcome {
                    label: point.label.clone(),
                    report: point.scenario.run_in(point.method, scratch),
                }
            })
    }

    /// The persistent pool the sweep fans out on: the configured cap,
    /// or machine parallelism. Built (threads spawned) on first use and
    /// reused by every subsequent [`ScenarioSweep::run`].
    pub fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::sized(self.threads))
    }

    /// Dispatches to [`ScenarioSweep::run`] or
    /// [`ScenarioSweep::run_sequential`] — the switch campaign runners
    /// flip per day without duplicating the day loop.
    pub fn execute(&self, parallel: bool) -> Vec<SweepOutcome> {
        if parallel {
            self.run()
        } else {
            self.run_sequential()
        }
    }

    /// Runs every cell on the calling thread (the reference order for
    /// equivalence checks and debugging), threading one
    /// [`NegotiationScratch`] through the whole grid.
    pub fn run_sequential(&self) -> Vec<SweepOutcome> {
        let mut scratch = NegotiationScratch::new();
        self.points
            .iter()
            .map(|p| SweepOutcome {
                label: p.label.clone(),
                report: p.scenario.run_in(p.method, &mut scratch),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;
    use std::panic::AssertUnwindSafe;

    #[test]
    fn parallel_equals_sequential() {
        let sweep = ScenarioSweep::new().seeded_grid("rt", 30, 0.35, 0..12, |b| b);
        assert_eq!(sweep.len(), 12);
        let parallel = sweep.run();
        let sequential = sweep.run_sequential();
        assert_eq!(
            parallel, sequential,
            "parallel sweep must be byte-identical"
        );
    }

    #[test]
    fn labels_and_order_are_stable() {
        let sweep = ScenarioSweep::new()
            .point("a", ScenarioBuilder::random(10, 0.3, 1).build())
            .point_with(
                "b",
                ScenarioBuilder::random(10, 0.3, 2).build(),
                AnnouncementMethod::Offer,
            );
        let outcomes = sweep.threads(NonZeroUsize::new(2).expect("2 > 0")).run();
        assert_eq!(outcomes[0].label, "a");
        assert_eq!(outcomes[1].label, "b");
        assert_eq!(outcomes[1].report.method(), AnnouncementMethod::Offer);
        assert_eq!(outcomes[1].report.rounds().len(), 1);
    }

    #[test]
    fn pool_returns_results_in_index_order() {
        let pool = WorkerPool::new(NonZeroUsize::new(4).expect("4 > 0"));
        let squares = pool.run(100, |i| i * i);
        assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        // One task runs on the calling thread.
        assert_eq!(pool.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn pool_is_reused_across_batches() {
        // The whole point of the persistent rebuild: many batches, one
        // set of parked workers, results always in index order.
        let pool = WorkerPool::new(NonZeroUsize::new(4).expect("4 > 0"));
        for batch in 0..50usize {
            let out = pool.run(batch % 7 + 1, |i| i * batch);
            assert_eq!(
                out,
                (0..batch % 7 + 1).map(|i| i * batch).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn run_with_gives_each_executor_its_own_scratch() {
        let pool = WorkerPool::new(NonZeroUsize::new(3).expect("3 > 0"));
        // Scratch = per-executor task counter; every task sees a value
        // at least 1 (its own increment) and results stay index-exact.
        let out = pool.run_with(
            40,
            || 0usize,
            |calls, i| {
                *calls += 1;
                (i, *calls >= 1)
            },
        );
        assert_eq!(out.len(), 40);
        for (idx, (i, ok)) in out.iter().enumerate() {
            assert_eq!(*i, idx);
            assert!(ok);
        }
    }

    #[test]
    fn pool_resurfaces_the_original_panic_payload() {
        let pool = WorkerPool::new(NonZeroUsize::new(3).expect("3 > 0"));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 5 {
                    panic!("cell 5 exploded");
                }
                i
            })
        }))
        .expect_err("the worker panic must resurface");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload is the original panic message");
        assert_eq!(message, "cell 5 exploded");
    }

    #[test]
    fn pool_reports_the_lowest_index_panic_of_many() {
        let pool = WorkerPool::new(NonZeroUsize::new(4).expect("4 > 0"));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i % 2 == 1 {
                    panic!("odd cell {i}");
                }
                i
            })
        }))
        .expect_err("panics must resurface");
        let message = caught
            .downcast_ref::<String>()
            .expect("formatted panic message");
        assert_eq!(message, "odd cell 1");
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        // The respawn-on-panic contract: a batch whose every task
        // panics kills any worker that claimed one — yet the same pool
        // value must run the next batch at full strength, with dead
        // workers replaced and results still index-exact. No task may
        // ever be dropped silently: the panic is raised, not swallowed.
        let pool = WorkerPool::new(NonZeroUsize::new(4).expect("4 > 0"));
        for round in 0..3 {
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(12, |i| -> usize { panic!("boom {round}/{i}") })
            }))
            .expect_err("an all-panic batch must raise");
            let message = caught
                .downcast_ref::<String>()
                .expect("formatted panic message");
            assert_eq!(
                message,
                &format!("boom {round}/0"),
                "lowest index first, deterministically"
            );
            // The pool is immediately usable again.
            let ok = pool.run(25, |i| i + round);
            assert_eq!(ok, (0..25).map(|i| i + round).collect::<Vec<_>>());
        }
        // And still *parallel*: the resurfaced panics must not have
        // poisoned the submission path into a permanent inline
        // fallback — a post-panic batch is executed by more than one
        // thread.
        let ids = pool.run(32, |i| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            (i, std::thread::current().id())
        });
        let distinct: std::collections::HashSet<_> = ids.iter().map(|(_, id)| *id).collect();
        assert!(
            distinct.len() > 1,
            "post-panic batches must still fan out across workers"
        );
    }

    #[test]
    fn scratch_constructor_panics_resurface_and_spare_the_pool() {
        let pool = WorkerPool::new(NonZeroUsize::new(2).expect("2 > 0"));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_with(4, || -> usize { panic!("no scratch for you") }, |_, i| i)
        }))
        .expect_err("the stray panic must resurface");
        assert_eq!(
            caught.downcast_ref::<&str>(),
            Some(&"no scratch for you"),
            "original payload"
        );
        assert_eq!(pool.run(3, |i| i), vec![0, 1, 2], "pool still works");
    }

    #[test]
    fn concurrent_runs_on_one_pool_fall_back_inline() {
        // Two threads submitting to the same pool must both complete
        // correctly (the second submission runs inline).
        let pool = WorkerPool::new(NonZeroUsize::new(3).expect("3 > 0"));
        std::thread::scope(|scope| {
            let a = scope.spawn(|| pool.run(200, |i| i));
            let b = scope.spawn(|| pool.run(200, |i| i * 2));
            assert_eq!(a.join().expect("a"), (0..200).collect::<Vec<_>>());
            assert_eq!(
                b.join().expect("b"),
                (0..200).map(|i| i * 2).collect::<Vec<_>>()
            );
        });
    }

    #[test]
    fn sweep_with_a_panicking_cell_resurfaces_the_payload() {
        // A deliberately panicking cell: a hand-built scenario with no
        // customers trips the engine's own validation inside a worker.
        // The sweep must die with that original message, not a
        // misleading pool-internal one.
        let good = ScenarioBuilder::random(10, 0.3, 1).build();
        let mut empty = good.clone();
        empty.customers.clear();
        let sweep = ScenarioSweep::new()
            .point("ok", good)
            .point("boom", empty)
            .threads(NonZeroUsize::new(2).expect("2 > 0"));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| sweep.run()))
            .expect_err("the panicking cell must resurface");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("original payload");
        assert!(
            message.contains("settling"),
            "must be the engine's own message, not a pool-internal one: {message}"
        );
        // And the sweep (same pool) still runs its surviving cells.
        let survivors = ScenarioSweep::new()
            .point("ok", ScenarioBuilder::random(10, 0.3, 1).build())
            .threads(NonZeroUsize::new(2).expect("2 > 0"));
        assert_eq!(survivors.run().len(), 1);
    }

    #[test]
    fn methods_can_vary_per_cell() {
        let scenario = ScenarioBuilder::random(15, 0.35, 3).build();
        let sweep = AnnouncementMethod::all()
            .into_iter()
            .fold(ScenarioSweep::new(), |s, m| {
                s.point_with(m.to_string(), scenario.clone(), m)
            });
        let outcomes = sweep.run();
        for (o, m) in outcomes.iter().zip(AnnouncementMethod::all()) {
            assert_eq!(o.report.method(), m);
            assert_eq!(
                o.report,
                scenario.run_with(m),
                "sweep must match a direct run"
            );
        }
    }
}
