//! Parallel scenario sweeps: fan a grid of negotiations across cores.
//!
//! The β-sensitivity and scaling experiments run hundreds of
//! *independent* negotiations. Each [`Scenario`] is a pure value — its
//! population is fixed by a seed at build time and
//! [`Scenario::run_with`] is deterministic — so a sweep parallelizes
//! perfectly: [`ScenarioSweep::run`] fans the grid across scoped std
//! worker threads (borrowing the scenarios, results in input order)
//! and is **byte-identical** to [`ScenarioSweep::run_sequential`].
//!
//! The fan-out machinery itself lives in [`WorkerPool`], a reusable
//! index-addressed task runner shared by the sweep, the campaign day
//! loop and the multi-campaign [`fleet`](crate::fleet) scheduler — one
//! pool type, every parallel surface of the crate.
//!
//! # Example
//!
//! ```
//! use loadbal_core::sweep::ScenarioSweep;
//! use loadbal_core::session::ScenarioBuilder;
//!
//! let sweep = ScenarioSweep::new()
//!     .point("n=10", ScenarioBuilder::random(10, 0.35, 1).build())
//!     .point("n=20", ScenarioBuilder::random(20, 0.35, 2).build());
//! let outcomes = sweep.run();
//! assert_eq!(outcomes.len(), 2);
//! assert!(outcomes.iter().all(|o| o.report.converged()));
//! ```

use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, Scenario};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A reusable fan-out worker pool over scoped std threads.
///
/// The pool is a *policy* (how many workers), not a set of live
/// threads: every [`WorkerPool::run`] call spawns scoped workers that
/// borrow the caller's data and join before it returns, so one pool
/// value can be shared freely — [`ScenarioSweep`] borrows it for a
/// grid, the campaign day loop for a day's peaks, and the
/// [`FleetRunner`](crate::fleet::FleetRunner) for whole campaigns — and
/// results are always returned in task-index order, independent of
/// scheduling.
///
/// Worker panics are caught per task and the **original payload** is
/// resurfaced on the calling thread once the scope has joined (lowest
/// task index wins when several tasks panic), so a panicking cell reads
/// exactly like a panicking sequential run instead of a poisoned-mutex
/// `.expect` failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: NonZeroUsize,
}

impl WorkerPool {
    /// A pool with an explicit worker cap.
    pub fn new(threads: NonZeroUsize) -> WorkerPool {
        WorkerPool { threads }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// falling back to one worker where that is unavailable).
    pub fn with_available_parallelism() -> WorkerPool {
        WorkerPool {
            threads: std::thread::available_parallelism()
                .unwrap_or(NonZeroUsize::new(1).expect("1 > 0")),
        }
    }

    /// A pool with the given cap, or machine parallelism when `None` —
    /// the convention every `threads(...)` builder knob in this crate
    /// follows.
    pub fn sized(threads: Option<NonZeroUsize>) -> WorkerPool {
        threads.map_or_else(WorkerPool::with_available_parallelism, WorkerPool::new)
    }

    /// The worker cap.
    pub fn threads(&self) -> NonZeroUsize {
        self.threads
    }

    /// Runs `count` index-addressed tasks across the pool's workers and
    /// returns their results in index order.
    ///
    /// Workers claim indices from a shared atomic counter, so the
    /// *schedule* is nondeterministic but the returned `Vec` never is:
    /// element `i` is `task(i)`. With one worker (or one task) the tasks
    /// run directly on the calling thread.
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is caught on the worker, the
    /// remaining tasks still run, and the original payload is re-raised
    /// on the calling thread after all workers have joined.
    pub fn run<T, F>(&self, count: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.get().min(count);
        if workers <= 1 {
            return (0..count).map(task).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..count).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots.get(i) else {
                        break;
                    };
                    let result = catch_unwind(AssertUnwindSafe(|| task(i)));
                    let panicked = result.is_err();
                    *slot.lock().expect("no panic can hold a slot lock") = Some(result);
                    if panicked {
                        // This worker's state is suspect; let the others
                        // drain the queue.
                        break;
                    }
                });
            }
        });
        let mut out = Vec::with_capacity(count);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in slots {
            match slot.into_inner().expect("no panic can hold a slot lock") {
                Some(Ok(value)) => out.push(value),
                Some(Err(payload)) => {
                    panic.get_or_insert(payload);
                }
                // Unclaimed task: only possible when every worker died
                // on a panic before draining the queue.
                None => {}
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        assert_eq!(out.len(), count, "every task ran exactly once");
        out
    }
}

impl Default for WorkerPool {
    /// A machine-sized pool.
    fn default() -> Self {
        WorkerPool::with_available_parallelism()
    }
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable cell label (policy, size, seed, ...).
    pub label: String,
    /// The scenario to negotiate.
    pub scenario: Scenario,
    /// The announcement method to run it with.
    pub method: AnnouncementMethod,
}

/// One finished cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The cell's label.
    pub label: String,
    /// The negotiation report.
    pub report: NegotiationReport,
}

/// A grid of independent negotiations with a parallel runner.
#[derive(Debug, Clone, Default)]
pub struct ScenarioSweep {
    points: Vec<SweepPoint>,
    threads: Option<NonZeroUsize>,
}

impl ScenarioSweep {
    /// An empty sweep.
    pub fn new() -> ScenarioSweep {
        ScenarioSweep {
            points: Vec::new(),
            threads: None,
        }
    }

    /// Adds a cell running the scenario's configured method.
    pub fn point(self, label: impl Into<String>, scenario: Scenario) -> ScenarioSweep {
        let method = scenario.method;
        self.point_with(label, scenario, method)
    }

    /// Adds a cell with an explicit announcement method.
    pub fn point_with(
        mut self,
        label: impl Into<String>,
        scenario: Scenario,
        method: AnnouncementMethod,
    ) -> ScenarioSweep {
        self.points.push(SweepPoint {
            label: label.into(),
            scenario,
            method,
        });
        self
    }

    /// Adds one seeded random-population cell per seed — the common
    /// "same configuration, many populations" experiment axis. The
    /// per-cell scenario (and therefore the whole sweep) is a pure
    /// function of `(customers, overuse, seed)`.
    pub fn seeded_grid(
        mut self,
        label_prefix: &str,
        customers: usize,
        overuse: f64,
        seeds: impl IntoIterator<Item = u64>,
        configure: impl Fn(crate::session::ScenarioBuilder) -> crate::session::ScenarioBuilder,
    ) -> ScenarioSweep {
        for seed in seeds {
            let builder = crate::session::ScenarioBuilder::random(customers, overuse, seed);
            let scenario = configure(builder).build();
            let method = scenario.method;
            self.points.push(SweepPoint {
                label: format!("{label_prefix}/seed{seed}"),
                scenario,
                method,
            });
        }
        self
    }

    /// Caps the worker-thread count (defaults to the machine's available
    /// parallelism).
    pub fn threads(mut self, threads: NonZeroUsize) -> ScenarioSweep {
        self.threads = Some(threads);
        self
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The configured cells.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Consumes the sweep, handing back its cells (grid order) — lets a
    /// caller that built scenarios into the sweep recover them after
    /// running without having kept clones.
    pub fn into_points(self) -> Vec<SweepPoint> {
        self.points
    }

    /// Runs every cell in parallel over the sweep's [`WorkerPool`];
    /// outcomes come back in grid order and are byte-identical to
    /// [`ScenarioSweep::run_sequential`].
    ///
    /// Scoped worker threads borrow the grid directly — no scenario is
    /// cloned, however large the sweep. A panicking cell resurfaces its
    /// original panic payload here (see [`WorkerPool::run`]), exactly as
    /// a sequential run would.
    pub fn run(&self) -> Vec<SweepOutcome> {
        self.pool().run(self.points.len(), |i| {
            let point = &self.points[i];
            SweepOutcome {
                label: point.label.clone(),
                report: point.scenario.run_with(point.method),
            }
        })
    }

    /// The pool the sweep fans out on: the configured cap, or machine
    /// parallelism.
    pub fn pool(&self) -> WorkerPool {
        WorkerPool::sized(self.threads)
    }

    /// Dispatches to [`ScenarioSweep::run`] or
    /// [`ScenarioSweep::run_sequential`] — the switch campaign runners
    /// flip per day without duplicating the day loop.
    pub fn execute(&self, parallel: bool) -> Vec<SweepOutcome> {
        if parallel {
            self.run()
        } else {
            self.run_sequential()
        }
    }

    /// Runs every cell on the calling thread (the reference order for
    /// equivalence checks and debugging).
    pub fn run_sequential(&self) -> Vec<SweepOutcome> {
        self.points
            .iter()
            .map(|p| SweepOutcome {
                label: p.label.clone(),
                report: p.scenario.run_with(p.method),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;

    #[test]
    fn parallel_equals_sequential() {
        let sweep = ScenarioSweep::new().seeded_grid("rt", 30, 0.35, 0..12, |b| b);
        assert_eq!(sweep.len(), 12);
        let parallel = sweep.run();
        let sequential = sweep.run_sequential();
        assert_eq!(
            parallel, sequential,
            "parallel sweep must be byte-identical"
        );
    }

    #[test]
    fn labels_and_order_are_stable() {
        let sweep = ScenarioSweep::new()
            .point("a", ScenarioBuilder::random(10, 0.3, 1).build())
            .point_with(
                "b",
                ScenarioBuilder::random(10, 0.3, 2).build(),
                AnnouncementMethod::Offer,
            );
        let outcomes = sweep.threads(NonZeroUsize::new(2).expect("2 > 0")).run();
        assert_eq!(outcomes[0].label, "a");
        assert_eq!(outcomes[1].label, "b");
        assert_eq!(outcomes[1].report.method(), AnnouncementMethod::Offer);
        assert_eq!(outcomes[1].report.rounds().len(), 1);
    }

    #[test]
    fn pool_returns_results_in_index_order() {
        let pool = WorkerPool::new(NonZeroUsize::new(4).expect("4 > 0"));
        let squares = pool.run(100, |i| i * i);
        assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        // One task runs on the calling thread.
        assert_eq!(pool.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn pool_resurfaces_the_original_panic_payload() {
        let pool = WorkerPool::new(NonZeroUsize::new(3).expect("3 > 0"));
        let caught = std::panic::catch_unwind(|| {
            pool.run(8, |i| {
                if i == 5 {
                    panic!("cell 5 exploded");
                }
                i
            })
        })
        .expect_err("the worker panic must resurface");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload is the original panic message");
        assert_eq!(message, "cell 5 exploded");
    }

    #[test]
    fn pool_reports_the_lowest_index_panic_of_many() {
        let pool = WorkerPool::new(NonZeroUsize::new(4).expect("4 > 0"));
        let caught = std::panic::catch_unwind(|| {
            pool.run(16, |i| {
                if i % 2 == 1 {
                    panic!("odd cell {i}");
                }
                i
            })
        })
        .expect_err("panics must resurface");
        let message = caught
            .downcast_ref::<String>()
            .expect("formatted panic message");
        assert_eq!(message, "odd cell 1");
    }

    #[test]
    fn sweep_with_a_panicking_cell_resurfaces_the_payload() {
        // A deliberately panicking cell: a hand-built scenario with no
        // customers trips the engine's own validation inside a worker.
        // The sweep must die with that original message, not a
        // misleading poisoned-slot `.expect`.
        let good = ScenarioBuilder::random(10, 0.3, 1).build();
        let mut empty = good.clone();
        empty.customers.clear();
        let sweep = ScenarioSweep::new()
            .point("ok", good)
            .point("boom", empty)
            .threads(NonZeroUsize::new(2).expect("2 > 0"));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| sweep.run()))
            .expect_err("the panicking cell must resurface");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("original payload");
        assert!(
            !message.contains("slot lock"),
            "must not be the poisoned-slot message: {message}"
        );
    }

    #[test]
    fn methods_can_vary_per_cell() {
        let scenario = ScenarioBuilder::random(15, 0.35, 3).build();
        let sweep = AnnouncementMethod::all()
            .into_iter()
            .fold(ScenarioSweep::new(), |s, m| {
                s.point_with(m.to_string(), scenario.clone(), m)
            });
        let outcomes = sweep.run();
        for (o, m) in outcomes.iter().zip(AnnouncementMethod::all()) {
            assert_eq!(o.report.method(), m);
            assert_eq!(
                o.report,
                scenario.run_with(m),
                "sweep must match a direct run"
            );
        }
    }
}
