//! Parallel scenario sweeps: fan a grid of negotiations across cores.
//!
//! The β-sensitivity and scaling experiments run hundreds of
//! *independent* negotiations. Each [`Scenario`] is a pure value — its
//! population is fixed by a seed at build time and
//! [`Scenario::run_with`] is deterministic — so a sweep parallelizes
//! perfectly: [`ScenarioSweep::run`] fans the grid across scoped std
//! worker threads (borrowing the scenarios, results in input order)
//! and is **byte-identical** to [`ScenarioSweep::run_sequential`].
//!
//! # Example
//!
//! ```
//! use loadbal_core::sweep::ScenarioSweep;
//! use loadbal_core::session::ScenarioBuilder;
//!
//! let sweep = ScenarioSweep::new()
//!     .point("n=10", ScenarioBuilder::random(10, 0.35, 1).build())
//!     .point("n=20", ScenarioBuilder::random(20, 0.35, 2).build());
//! let outcomes = sweep.run();
//! assert_eq!(outcomes.len(), 2);
//! assert!(outcomes.iter().all(|o| o.report.converged()));
//! ```

use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, Scenario};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable cell label (policy, size, seed, ...).
    pub label: String,
    /// The scenario to negotiate.
    pub scenario: Scenario,
    /// The announcement method to run it with.
    pub method: AnnouncementMethod,
}

/// One finished cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The cell's label.
    pub label: String,
    /// The negotiation report.
    pub report: NegotiationReport,
}

/// A grid of independent negotiations with a parallel runner.
#[derive(Debug, Clone, Default)]
pub struct ScenarioSweep {
    points: Vec<SweepPoint>,
    threads: Option<NonZeroUsize>,
}

impl ScenarioSweep {
    /// An empty sweep.
    pub fn new() -> ScenarioSweep {
        ScenarioSweep {
            points: Vec::new(),
            threads: None,
        }
    }

    /// Adds a cell running the scenario's configured method.
    pub fn point(self, label: impl Into<String>, scenario: Scenario) -> ScenarioSweep {
        let method = scenario.method;
        self.point_with(label, scenario, method)
    }

    /// Adds a cell with an explicit announcement method.
    pub fn point_with(
        mut self,
        label: impl Into<String>,
        scenario: Scenario,
        method: AnnouncementMethod,
    ) -> ScenarioSweep {
        self.points.push(SweepPoint {
            label: label.into(),
            scenario,
            method,
        });
        self
    }

    /// Adds one seeded random-population cell per seed — the common
    /// "same configuration, many populations" experiment axis. The
    /// per-cell scenario (and therefore the whole sweep) is a pure
    /// function of `(customers, overuse, seed)`.
    pub fn seeded_grid(
        mut self,
        label_prefix: &str,
        customers: usize,
        overuse: f64,
        seeds: impl IntoIterator<Item = u64>,
        configure: impl Fn(crate::session::ScenarioBuilder) -> crate::session::ScenarioBuilder,
    ) -> ScenarioSweep {
        for seed in seeds {
            let builder = crate::session::ScenarioBuilder::random(customers, overuse, seed);
            let scenario = configure(builder).build();
            let method = scenario.method;
            self.points.push(SweepPoint {
                label: format!("{label_prefix}/seed{seed}"),
                scenario,
                method,
            });
        }
        self
    }

    /// Caps the worker-thread count (defaults to the machine's available
    /// parallelism).
    pub fn threads(mut self, threads: NonZeroUsize) -> ScenarioSweep {
        self.threads = Some(threads);
        self
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The configured cells.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Consumes the sweep, handing back its cells (grid order) — lets a
    /// caller that built scenarios into the sweep recover them after
    /// running without having kept clones.
    pub fn into_points(self) -> Vec<SweepPoint> {
        self.points
    }

    /// Runs every cell in parallel over std threads; outcomes come back
    /// in grid order and are byte-identical to
    /// [`ScenarioSweep::run_sequential`].
    ///
    /// Scoped worker threads borrow the grid directly — no scenario is
    /// cloned, however large the sweep.
    pub fn run(&self) -> Vec<SweepOutcome> {
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism().unwrap_or(NonZeroUsize::new(1).expect("1 > 0"))
            })
            .get()
            .min(self.points.len());
        if threads <= 1 {
            return self.run_sequential();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SweepOutcome>>> =
            self.points.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(point) = self.points.get(i) else {
                        break;
                    };
                    let outcome = SweepOutcome {
                        label: point.label.clone(),
                        report: point.scenario.run_with(point.method),
                    };
                    *slots[i].lock().expect("slot lock") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every cell ran")
            })
            .collect()
    }

    /// Dispatches to [`ScenarioSweep::run`] or
    /// [`ScenarioSweep::run_sequential`] — the switch campaign runners
    /// flip per day without duplicating the day loop.
    pub fn execute(&self, parallel: bool) -> Vec<SweepOutcome> {
        if parallel {
            self.run()
        } else {
            self.run_sequential()
        }
    }

    /// Runs every cell on the calling thread (the reference order for
    /// equivalence checks and debugging).
    pub fn run_sequential(&self) -> Vec<SweepOutcome> {
        self.points
            .iter()
            .map(|p| SweepOutcome {
                label: p.label.clone(),
                report: p.scenario.run_with(p.method),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;

    #[test]
    fn parallel_equals_sequential() {
        let sweep = ScenarioSweep::new().seeded_grid("rt", 30, 0.35, 0..12, |b| b);
        assert_eq!(sweep.len(), 12);
        let parallel = sweep.run();
        let sequential = sweep.run_sequential();
        assert_eq!(
            parallel, sequential,
            "parallel sweep must be byte-identical"
        );
    }

    #[test]
    fn labels_and_order_are_stable() {
        let sweep = ScenarioSweep::new()
            .point("a", ScenarioBuilder::random(10, 0.3, 1).build())
            .point_with(
                "b",
                ScenarioBuilder::random(10, 0.3, 2).build(),
                AnnouncementMethod::Offer,
            );
        let outcomes = sweep.threads(NonZeroUsize::new(2).expect("2 > 0")).run();
        assert_eq!(outcomes[0].label, "a");
        assert_eq!(outcomes[1].label, "b");
        assert_eq!(outcomes[1].report.method(), AnnouncementMethod::Offer);
        assert_eq!(outcomes[1].report.rounds().len(), 1);
    }

    #[test]
    fn methods_can_vary_per_cell() {
        let scenario = ScenarioBuilder::random(15, 0.35, 3).build();
        let sweep = AnnouncementMethod::all()
            .into_iter()
            .fold(ScenarioSweep::new(), |s, m| {
                s.point_with(m.to_string(), scenario.clone(), m)
            });
        let outcomes = sweep.run();
        for (o, m) in outcomes.iter().zip(AnnouncementMethod::all()) {
            assert_eq!(o.report.method(), m);
            assert_eq!(
                o.report,
                scenario.run_with(m),
                "sweep must match a direct run"
            );
        }
    }
}
