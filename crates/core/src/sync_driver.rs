//! The synchronous driver: an in-process message pump over the sans-io
//! engine.
//!
//! This is the fastest of the three execution modes — no simulated
//! network, no kernel rounds, just function calls — and what
//! [`Scenario::run`](crate::session::Scenario::run) and the experiment
//! harness use. Every round trip is a direct exchange between the
//! [`UtilityEngine`] and each [`CustomerEngine`]; timers are ignored
//! because every response always arrives.
//!
//! Two entry points share one pump:
//!
//! * [`SyncDriver`] — builds fresh engines for one negotiation (the
//!   simple path);
//! * [`NegotiationScratch`] — holds the engines across negotiations and
//!   [resets](UtilityEngine::reset) them per scenario, so a campaign
//!   worker negotiating thousands of peaks reuses its buffers instead
//!   of allocating per peak. Byte-identical to the fresh path; the
//!   sweep/campaign/fleet hot loops thread one scratch per worker,
//!   exactly like `powergrid`'s `DemandScratch`.

use crate::engine::{CustomerEngine, Effect, Input, Peer, ReportAssembler, UtilityEngine};
use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, ReportTier, Scenario};

/// Pumps a utility engine and its customers to completion and
/// assembles the report at the given [`ReportTier`] — the single
/// synchronous execution loop behind both [`SyncDriver::run`] and
/// [`NegotiationScratch::run`].
///
/// # Panics
///
/// Panics if the engine stops emitting effects before settling —
/// impossible for the shipped announcement methods, whose termination
/// the concession protocol guarantees.
fn pump(
    utility: &mut UtilityEngine,
    customers: &mut [CustomerEngine],
    tier: ReportTier,
) -> NegotiationReport {
    let mut assembler = ReportAssembler::for_engine_at(utility, tier);
    utility.handle(Input::Start);
    while let Some(effect) = utility.poll_effect() {
        // Observation effects (round records, settlements) move into
        // the assembler; transport effects come back to be performed.
        let Some(Effect::Send {
            to: Peer::Customer(i),
            msg,
        }) = assembler.observe(effect)
        else {
            // Timers never fire (all responses arrive).
            continue;
        };
        let customer = &mut customers[i];
        customer.handle(Input::Received {
            from: Peer::Utility,
            msg,
        });
        while let Some(reply) = customer.poll_effect() {
            if let Effect::Send {
                to: Peer::Utility,
                msg,
            } = reply
            {
                utility.handle(Input::Received {
                    from: Peer::Customer(i),
                    msg,
                });
            }
        }
    }
    assert!(
        utility.is_settled(),
        "engine ran out of effects before settling"
    );
    assembler.finish()
}

/// Runs a complete negotiation synchronously through the shared engine.
#[derive(Debug, Clone)]
pub struct SyncDriver {
    utility: UtilityEngine,
    customers: Vec<CustomerEngine>,
}

impl SyncDriver {
    /// A driver for `scenario`'s configured method.
    pub fn new(scenario: &Scenario) -> SyncDriver {
        SyncDriver::with_method(scenario, scenario.method)
    }

    /// A driver for a specific announcement method on `scenario`.
    pub fn with_method(scenario: &Scenario, method: AnnouncementMethod) -> SyncDriver {
        SyncDriver {
            utility: UtilityEngine::with_method(scenario, method),
            customers: (0..scenario.customers.len())
                .map(|i| CustomerEngine::for_customer(scenario, i))
                .collect(),
        }
    }

    /// Pumps the engines to completion and assembles the report.
    ///
    /// # Panics
    ///
    /// Panics if the engine stops emitting effects before settling —
    /// impossible for the shipped announcement methods, whose
    /// termination the concession protocol guarantees.
    pub fn run(mut self) -> NegotiationReport {
        pump(
            &mut self.utility,
            &mut self.customers,
            ReportTier::FullTrace,
        )
    }
}

/// Reusable engine buffers for the negotiation hot loop.
///
/// A campaign negotiates thousands of peaks; building a fresh
/// [`UtilityEngine`] plus one [`CustomerEngine`] per customer for every
/// peak churns through profile vectors, bid histories and effect queues
/// that are all the same shape each time. A `NegotiationScratch` holds
/// those engines across negotiations and
/// [resets](UtilityEngine::reset) them onto each new scenario, so the
/// buffers (and their capacity) are reused.
///
/// Results are **byte-identical** to the fresh-engine path — a reset
/// engine is behaviourally indistinguishable from a new one — which the
/// sweep/campaign/fleet byte-identity suites pin. One scratch per
/// worker (never shared): [`WorkerPool::run_with`] hands each pool
/// worker its own, exactly like `powergrid`'s `DemandScratch` in the
/// demand loop.
///
/// [`WorkerPool::run_with`]: crate::sweep::WorkerPool::run_with
#[derive(Debug, Default)]
pub struct NegotiationScratch {
    utility: Option<UtilityEngine>,
    customers: Vec<CustomerEngine>,
    /// Negotiations run through this scratch (diagnostics).
    negotiations: u64,
}

impl NegotiationScratch {
    /// An empty scratch; buffers are created on first use.
    pub fn new() -> NegotiationScratch {
        NegotiationScratch::default()
    }

    /// Negotiations that have reused this scratch so far.
    pub fn negotiations(&self) -> u64 {
        self.negotiations
    }

    /// Runs `method` on `scenario`, reusing the scratch's engines.
    /// Byte-identical to
    /// [`Scenario::run_with`](crate::session::Scenario::run_with).
    pub fn run(&mut self, scenario: &Scenario, method: AnnouncementMethod) -> NegotiationReport {
        self.run_at(scenario, method, ReportTier::FullTrace)
    }

    /// [`NegotiationScratch::run`] retaining only what `tier` keeps —
    /// the negotiation itself is identical; the
    /// [`ReportAssembler`] simply stops storing what the tier drops.
    pub fn run_at(
        &mut self,
        scenario: &Scenario,
        method: AnnouncementMethod,
        tier: ReportTier,
    ) -> NegotiationReport {
        self.reset_onto(scenario, method);
        let utility = self.utility.as_mut().expect("reset populated the engine");
        pump(utility, &mut self.customers, tier)
    }

    /// Re-aims every engine at `scenario`, reusing buffers: existing
    /// customer engines are reset in place, extras dropped, missing ones
    /// built fresh; same for the utility engine.
    fn reset_onto(&mut self, scenario: &Scenario, method: AnnouncementMethod) {
        self.negotiations += 1;
        let n = scenario.customers.len();
        self.customers.truncate(n);
        for (i, engine) in self.customers.iter_mut().enumerate() {
            engine.reset_for(scenario, i);
        }
        for i in self.customers.len()..n {
            self.customers
                .push(CustomerEngine::for_customer(scenario, i));
        }
        match &mut self.utility {
            Some(engine) => engine.reset(scenario, method),
            slot => *slot = Some(UtilityEngine::with_method(scenario, method)),
        }
    }

    /// Resets the scratch onto `scenario` and hands the engines out by
    /// value — for drivers (the distributed one) that must *own* their
    /// engines for the duration of a run. Pair with
    /// [`NegotiationScratch::check_in`] to return them so the next
    /// negotiation reuses the buffers.
    pub(crate) fn checkout(
        &mut self,
        scenario: &Scenario,
        method: AnnouncementMethod,
    ) -> (UtilityEngine, Vec<CustomerEngine>) {
        self.reset_onto(scenario, method);
        (
            self.utility.take().expect("reset populated the engine"),
            std::mem::take(&mut self.customers),
        )
    }

    /// Returns engines previously [checked out](NegotiationScratch::checkout).
    pub(crate) fn check_in(&mut self, utility: UtilityEngine, customers: Vec<CustomerEngine>) {
        self.utility = Some(utility);
        self.customers = customers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concession::NegotiationStatus;
    use crate::session::ScenarioBuilder;

    #[test]
    fn drives_the_paper_trace() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = SyncDriver::new(&scenario).run();
        assert_eq!(report.rounds().len(), 3);
        assert!(report.converged());
    }

    #[test]
    fn all_methods_settle_on_random_populations() {
        for seed in 0..5 {
            let scenario = ScenarioBuilder::random(30, 0.35, seed).build();
            for method in AnnouncementMethod::all() {
                let report = SyncDriver::with_method(&scenario, method).run();
                assert!(
                    matches!(
                        report.status(),
                        NegotiationStatus::Converged(_) | NegotiationStatus::MaxRoundsExceeded
                    ),
                    "seed {seed} {method}: {report}"
                );
                assert_eq!(report.method(), method);
                assert_eq!(report.settlements().len(), 30);
            }
        }
    }

    #[test]
    fn scratch_reuse_is_byte_identical_to_fresh_engines() {
        // One scratch across mixed scenario sizes and every method —
        // growing, shrinking and re-aiming the engine buffers must
        // never leak state between negotiations.
        let mut scratch = NegotiationScratch::new();
        let sizes_and_seeds = [(30usize, 1u64), (12, 2), (30, 1), (45, 3), (12, 2)];
        for &(n, seed) in &sizes_and_seeds {
            let scenario = ScenarioBuilder::random(n, 0.35, seed).build();
            for method in AnnouncementMethod::all() {
                let fresh = SyncDriver::with_method(&scenario, method).run();
                let reused = scratch.run(&scenario, method);
                assert_eq!(fresh, reused, "n={n} seed={seed} {method}");
            }
        }
        assert_eq!(
            scratch.negotiations(),
            (sizes_and_seeds.len() * AnnouncementMethod::all().len()) as u64
        );
    }

    #[test]
    fn scratch_matches_the_paper_trace() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let mut scratch = NegotiationScratch::new();
        // Run a different negotiation first so the paper trace goes
        // through *reset* engines, not fresh ones.
        let _ = scratch.run(
            &ScenarioBuilder::random(7, 0.4, 9).build(),
            AnnouncementMethod::RequestForBids,
        );
        let report = scratch.run(&scenario, AnnouncementMethod::RewardTables);
        assert_eq!(report, scenario.run());
    }

    #[test]
    fn customers_learn_their_awards() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let mut driver = SyncDriver::new(&scenario);
        let report = pump(
            &mut driver.utility,
            &mut driver.customers,
            ReportTier::FullTrace,
        );
        for (engine, settlement) in driver.customers.iter().zip(report.settlements()) {
            assert_eq!(engine.awarded(), Some(settlement));
        }
    }
}
