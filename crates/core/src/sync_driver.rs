//! The synchronous driver: an in-process message pump over the sans-io
//! engine.
//!
//! This is the fastest of the three execution modes — no simulated
//! network, no kernel rounds, just function calls — and what
//! [`Scenario::run`](crate::session::Scenario::run) and the experiment
//! harness use. Every round trip is a direct exchange between the
//! [`UtilityEngine`] and each [`CustomerEngine`]; timers are ignored
//! because every response always arrives.

use crate::engine::{CustomerEngine, Effect, Input, Peer, ReportAssembler, UtilityEngine};
use crate::methods::AnnouncementMethod;
use crate::session::{NegotiationReport, Scenario};

/// Runs a complete negotiation synchronously through the shared engine.
#[derive(Debug, Clone)]
pub struct SyncDriver {
    utility: UtilityEngine,
    customers: Vec<CustomerEngine>,
}

impl SyncDriver {
    /// A driver for `scenario`'s configured method.
    pub fn new(scenario: &Scenario) -> SyncDriver {
        SyncDriver::with_method(scenario, scenario.method)
    }

    /// A driver for a specific announcement method on `scenario`.
    pub fn with_method(scenario: &Scenario, method: AnnouncementMethod) -> SyncDriver {
        SyncDriver {
            utility: UtilityEngine::with_method(scenario, method),
            customers: (0..scenario.customers.len())
                .map(|i| CustomerEngine::for_customer(scenario, i))
                .collect(),
        }
    }

    /// Pumps the engines to completion and assembles the report.
    ///
    /// # Panics
    ///
    /// Panics if the engine stops emitting effects before settling —
    /// impossible for the shipped announcement methods, whose
    /// termination the concession protocol guarantees.
    pub fn run(mut self) -> NegotiationReport {
        let mut assembler = ReportAssembler::for_engine(&self.utility);
        self.utility.handle(Input::Start);
        while let Some(effect) = self.utility.poll_effect() {
            assembler.observe(&effect);
            let Effect::Send {
                to: Peer::Customer(i),
                msg,
            } = effect
            else {
                // Timers never fire (all responses arrive); round and
                // settlement observations are already recorded.
                continue;
            };
            let customer = &mut self.customers[i];
            customer.handle(Input::Received {
                from: Peer::Utility,
                msg,
            });
            while let Some(reply) = customer.poll_effect() {
                if let Effect::Send {
                    to: Peer::Utility,
                    msg,
                } = reply
                {
                    self.utility.handle(Input::Received {
                        from: Peer::Customer(i),
                        msg,
                    });
                }
            }
        }
        assert!(
            self.utility.is_settled(),
            "engine ran out of effects before settling"
        );
        assembler.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concession::NegotiationStatus;
    use crate::session::ScenarioBuilder;

    #[test]
    fn drives_the_paper_trace() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = SyncDriver::new(&scenario).run();
        assert_eq!(report.rounds().len(), 3);
        assert!(report.converged());
    }

    #[test]
    fn all_methods_settle_on_random_populations() {
        for seed in 0..5 {
            let scenario = ScenarioBuilder::random(30, 0.35, seed).build();
            for method in AnnouncementMethod::all() {
                let report = SyncDriver::with_method(&scenario, method).run();
                assert!(
                    matches!(
                        report.status(),
                        NegotiationStatus::Converged(_) | NegotiationStatus::MaxRoundsExceeded
                    ),
                    "seed {seed} {method}: {report}"
                );
                assert_eq!(report.method(), method);
                assert_eq!(report.settlements().len(), 30);
            }
        }
    }

    #[test]
    fn customers_learn_their_awards() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let mut driver = SyncDriver::new(&scenario);
        let mut assembler = ReportAssembler::for_engine(&driver.utility);
        driver.utility.handle(Input::Start);
        while let Some(effect) = driver.utility.poll_effect() {
            assembler.observe(&effect);
            if let Effect::Send {
                to: Peer::Customer(i),
                msg,
            } = effect
            {
                let customer = &mut driver.customers[i];
                customer.handle(Input::Received {
                    from: Peer::Utility,
                    msg,
                });
                while let Some(reply) = customer.poll_effect() {
                    if let Effect::Send {
                        to: Peer::Utility,
                        msg,
                    } = reply
                    {
                        driver.utility.handle(Input::Received {
                            from: Peer::Customer(i),
                            msg,
                        });
                    }
                }
            }
        }
        let report = assembler.finish();
        for (engine, settlement) in driver.customers.iter().zip(report.settlements()) {
            assert_eq!(engine.awarded(), Some(settlement));
        }
    }
}
