//! The UA's agent-specific tasks (§5.1.2): *determine predicted balance
//! consumption/production* and *evaluate prediction*.
//!
//! "To predict the balance between consumption and production, available
//! information is analysed and predictions are calculated on the basis of
//! statistical models. The decision to start a negotiation process is
//! based on a predicted balance."

use powergrid::peak::{Peak, PeakDetector};
use powergrid::prediction::LoadPredictor;
use powergrid::production::ProductionModel;
use powergrid::series::Series;

/// Outcome of the *evaluate prediction* task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BalanceAssessment {
    /// "In a stable situation no peak usage is expected and the situation
    /// can be left unchanged."
    Stable,
    /// A peak is expected and "the predicted overuse is high enough to
    /// warrant the effort involved" — start negotiating.
    NegotiationWarranted(Peak),
}

impl BalanceAssessment {
    /// The peak, if negotiation is warranted.
    pub fn peak(&self) -> Option<&Peak> {
        match self {
            BalanceAssessment::NegotiationWarranted(p) => Some(p),
            BalanceAssessment::Stable => None,
        }
    }
}

/// The *determine predicted balance* task: runs the statistical predictor
/// over history and today's weather forecast.
pub fn predict_balance(
    predictor: &dyn LoadPredictor,
    history: &[Series],
    weather_forecast: &Series,
) -> Series {
    predictor.predict(history, weather_forecast)
}

/// The *evaluate prediction* task: peak detection against production
/// capacity, thresholded by effort-worthiness.
pub fn evaluate_prediction(
    predicted: &Series,
    production: &ProductionModel,
    detector: &PeakDetector,
) -> BalanceAssessment {
    match detector.detect(predicted, production) {
        Some(peak) => BalanceAssessment::NegotiationWarranted(peak),
        None => BalanceAssessment::Stable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powergrid::prediction::MovingAverage;
    use powergrid::time::TimeAxis;
    use powergrid::units::Kilowatts;

    fn production() -> ProductionModel {
        ProductionModel::two_tier(Kilowatts(100.0), Kilowatts(200.0))
    }

    #[test]
    fn stable_situation_detected() {
        let axis = TimeAxis::hourly();
        let history = vec![Series::constant(axis, 60.0); 3];
        let weather = Series::constant(axis, -4.0);
        let predicted = predict_balance(&MovingAverage::new(3), &history, &weather);
        let assessment = evaluate_prediction(&predicted, &production(), &PeakDetector::default());
        assert_eq!(assessment, BalanceAssessment::Stable);
        assert!(assessment.peak().is_none());
    }

    #[test]
    fn peak_triggers_negotiation() {
        let axis = TimeAxis::hourly();
        let mut day = Series::constant(axis, 60.0);
        for h in 17..21 {
            day.values_mut()[h] = 135.0;
        }
        let history = vec![day; 3];
        let weather = Series::constant(axis, -4.0);
        let predicted = predict_balance(&MovingAverage::new(3), &history, &weather);
        let assessment = evaluate_prediction(&predicted, &production(), &PeakDetector::default());
        let peak = assessment.peak().expect("peak expected");
        assert!((peak.overuse_fraction() - 0.35).abs() < 1e-9);
    }

    #[test]
    fn high_threshold_suppresses_marginal_peaks() {
        let axis = TimeAxis::hourly();
        let mut day = Series::constant(axis, 60.0);
        day.values_mut()[18] = 104.0;
        let history = vec![day; 2];
        let weather = Series::constant(axis, 0.0);
        let predicted = predict_balance(&MovingAverage::new(2), &history, &weather);
        let lax = evaluate_prediction(&predicted, &production(), &PeakDetector::new(0.10));
        assert_eq!(
            lax,
            BalanceAssessment::Stable,
            "4 % overuse not worth the effort"
        );
        let eager = evaluate_prediction(&predicted, &production(), &PeakDetector::new(0.01));
        assert!(matches!(eager, BalanceAssessment::NegotiationWarranted(_)));
    }
}
