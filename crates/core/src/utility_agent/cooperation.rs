//! Cooperation management within the UA (Figure 3): determining
//! announcements and accepting bids.
//!
//! Two announcement-determination tactics from §5.1.3 are implemented:
//! the formula-driven update (the prototype's behaviour, in
//! [`crate::utility_agent::RewardTableNegotiator`]) and the qualitative
//! *generate and select* approach: "all possible announcements are
//! generated and one is selected ... based on, for example, predictions
//! of the results".

use crate::reward::{RewardFormula, RewardTable};
use crate::utility_agent::maintenance::CustomerModel;
use powergrid::units::{Fraction, Money};

/// A candidate announcement with its predicted effect.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAnnouncement {
    /// The candidate table.
    pub table: RewardTable,
    /// β multiplier that generated it.
    pub beta_factor: f64,
    /// Predicted aggregate cut-down fraction (from the customer model).
    pub predicted_cutdown: f64,
    /// Predicted reward outlay if every accepting customer is paid its
    /// level's reward (upper bound: rate × reward summed over levels).
    pub predicted_outlay: Money,
}

/// *Generate announcements*: candidate tables from the current one, one
/// per β multiplier, each dominating the current table (monotonic
/// concession is preserved by construction).
pub fn generate_announcements(
    current: &RewardTable,
    formula: &RewardFormula,
    overuse: f64,
    beta_base: f64,
    factors: &[f64],
) -> Vec<CandidateAnnouncement> {
    factors
        .iter()
        .filter(|&&f| f > 0.0)
        .map(|&factor| {
            let table = current.updated(formula, overuse, beta_base * factor);
            CandidateAnnouncement {
                table,
                beta_factor: factor,
                predicted_cutdown: 0.0,
                predicted_outlay: Money::ZERO,
            }
        })
        .collect()
}

/// *Evaluate prediction for announcements*: fills in predicted cut-down
/// and outlay using the maintained customer model.
pub fn evaluate_announcements(candidates: &mut [CandidateAnnouncement], model: &CustomerModel) {
    for cand in candidates.iter_mut() {
        cand.predicted_cutdown = model.expected_cutdown(&cand.table);
        cand.predicted_outlay = cand
            .table
            .entries()
            .iter()
            .filter(|&&(c, _)| c > Fraction::ZERO)
            .map(|&(c, r)| r * model.acceptance_rate(c, r))
            .sum();
    }
}

/// *Select announcement*: the cheapest candidate predicted to reach the
/// target aggregate cut-down; if none reaches it, the one predicted to
/// cut the most.
///
/// Returns `None` only for an empty candidate list.
pub fn select_announcement(
    candidates: &[CandidateAnnouncement],
    target_cutdown: f64,
) -> Option<&CandidateAnnouncement> {
    let reaching: Vec<&CandidateAnnouncement> = candidates
        .iter()
        .filter(|c| c.predicted_cutdown >= target_cutdown)
        .collect();
    if reaching.is_empty() {
        candidates.iter().max_by(|a, b| {
            a.predicted_cutdown
                .partial_cmp(&b.predicted_cutdown)
                .expect("predictions are finite")
        })
    } else {
        reaching.into_iter().min_by(|a, b| {
            a.predicted_outlay
                .partial_cmp(&b.predicted_outlay)
                .expect("outlays are finite")
        })
    }
}

/// Bid assessment (*monitor bid receipt* / *evaluate bids* / *select
/// bids*): in the prototype every bid consistent with the announced table
/// is accepted; inconsistent bids (levels never announced) are rejected.
///
/// Returns the accepted cut-down per customer (rejected bids count as
/// zero cut-down).
pub fn assess_bids(table: &RewardTable, bids: &[Fraction]) -> Vec<Fraction> {
    let mut accepted = bids.to_vec();
    assess_bids_in_place(table, &mut accepted);
    accepted
}

/// In-place [`assess_bids`]: rejected bids are zeroed where they stand,
/// so the negotiation hot loop assesses each round's bid vector without
/// an extra allocation. Semantically identical to
/// `*bids = assess_bids(table, bids)`.
pub fn assess_bids_in_place(table: &RewardTable, bids: &mut [Fraction]) {
    for bid in bids {
        if *bid != Fraction::ZERO && !table.levels().any(|lvl| lvl == *bid) {
            *bid = Fraction::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::DEFAULT_LEVELS;
    use powergrid::time::Interval;

    fn fr(v: f64) -> Fraction {
        Fraction::clamped(v)
    }

    fn base_table() -> RewardTable {
        RewardTable::quadratic(Interval::new(0, 8), &DEFAULT_LEVELS, Money(17.0), fr(0.4))
    }

    #[test]
    fn generated_candidates_dominate_current() {
        let current = base_table();
        let candidates = generate_announcements(
            &current,
            &RewardFormula::paper(),
            0.35,
            2.0,
            &[0.5, 1.0, 2.0],
        );
        assert_eq!(candidates.len(), 3);
        for c in &candidates {
            assert!(c.table.dominates(&current));
        }
        // Larger factors pay more.
        assert!(candidates[2].table.reward_for(fr(0.4)) > candidates[0].table.reward_for(fr(0.4)));
    }

    #[test]
    fn zero_factors_filtered() {
        let candidates = generate_announcements(
            &base_table(),
            &RewardFormula::paper(),
            0.3,
            2.0,
            &[0.0, 1.0],
        );
        assert_eq!(candidates.len(), 1);
    }

    #[test]
    fn evaluation_fills_predictions() {
        let mut model = CustomerModel::new();
        model.observe_round(&base_table(), &[fr(0.4), fr(0.2), fr(0.0)]);
        let mut candidates = generate_announcements(
            &base_table(),
            &RewardFormula::paper(),
            0.35,
            2.0,
            &[1.0, 2.0],
        );
        evaluate_announcements(&mut candidates, &model);
        for c in &candidates {
            assert!(c.predicted_cutdown > 0.0);
            assert!(c.predicted_outlay > Money::ZERO);
        }
    }

    #[test]
    fn selection_prefers_cheapest_reaching_target() {
        let mut model = CustomerModel::new();
        model.observe_round(&base_table(), &[fr(0.4), fr(0.4), fr(0.2), fr(0.0)]);
        let mut candidates = generate_announcements(
            &base_table(),
            &RewardFormula::paper(),
            0.35,
            2.0,
            &[0.5, 1.0, 2.0, 4.0],
        );
        evaluate_announcements(&mut candidates, &model);
        // Pick a reachable target: the weakest candidate's prediction.
        let target = candidates
            .iter()
            .map(|c| c.predicted_cutdown)
            .fold(f64::INFINITY, f64::min);
        let chosen = select_announcement(&candidates, target).unwrap();
        // Every candidate reaching the target must cost at least as much.
        for c in candidates.iter().filter(|c| c.predicted_cutdown >= target) {
            assert!(chosen.predicted_outlay <= c.predicted_outlay);
        }
    }

    #[test]
    fn selection_falls_back_to_best_effort() {
        let mut candidates = generate_announcements(
            &base_table(),
            &RewardFormula::paper(),
            0.35,
            2.0,
            &[1.0, 2.0],
        );
        evaluate_announcements(&mut candidates, &CustomerModel::new());
        let chosen = select_announcement(&candidates, 10.0).unwrap();
        let best = candidates
            .iter()
            .map(|c| c.predicted_cutdown)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(chosen.predicted_cutdown, best);
        assert!(select_announcement(&[], 0.1).is_none());
    }

    #[test]
    fn bid_assessment_rejects_off_table_levels() {
        let table = base_table();
        let accepted = assess_bids(&table, &[fr(0.4), fr(0.15), fr(0.0)]);
        assert_eq!(accepted, vec![fr(0.4), fr(0.0), fr(0.0)]);
    }
}
