//! Maintenance of agent information (§5.1.4): the UA's models of its
//! Customer Agents.
//!
//! "The Utility Agent has models of other agents, including for example,
//! information on how often Customer Agents have positively responded to
//! announcements. The task maintenance of agent information is
//! responsible for not only storing this information, but also updating
//! this information on the basis of interaction with the agents."

use crate::reward::RewardTable;
use powergrid::units::{Fraction, Money};
use serde::{Deserialize, Serialize};

/// The UA's empirical model of the customer population: for each
/// cut-down level, an estimate of the reward at which customers accept
/// it, learned from observed bids.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CustomerModel {
    /// Per-level observations: `(cutdown, sum of accepted rewards,
    /// acceptance count, offer count)`.
    observations: Vec<LevelStats>,
    /// Negotiations observed.
    negotiations: u32,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LevelStats {
    cutdown: Fraction,
    accepted_reward_sum: f64,
    acceptances: u64,
    offers: u64,
}

impl CustomerModel {
    /// Creates an empty model.
    pub fn new() -> CustomerModel {
        CustomerModel::default()
    }

    /// Number of negotiations folded into the model.
    pub fn negotiations(&self) -> u32 {
        self.negotiations
    }

    /// Records one round: the announced table and the bids it drew.
    ///
    /// A customer bidding cut-down `c` is counted as accepting level `c`
    /// at the announced reward (and implicitly declining every higher
    /// level).
    pub fn observe_round(&mut self, table: &RewardTable, bids: &[Fraction]) {
        for &(level, reward) in table.entries() {
            if level == Fraction::ZERO {
                continue;
            }
            let stats = self.stats_mut(level);
            stats.offers += bids.len() as u64;
            let accepted = bids.iter().filter(|&&b| b >= level).count() as u64;
            stats.acceptances += accepted;
            stats.accepted_reward_sum += reward.value() * accepted as f64;
        }
    }

    /// Marks the end of one negotiation (for bookkeeping).
    pub fn finish_negotiation(&mut self) {
        self.negotiations += 1;
    }

    /// Fraction of customers expected to implement at least `level` when
    /// offered `reward` for it. A simple monotone estimate: the observed
    /// acceptance rate at the nearest recorded level, scaled by how the
    /// offered reward compares with the mean accepted reward.
    ///
    /// Before any observations the prior is 70 % — the paper's own
    /// example: "the Utility Agent knows that normally about 70% of the
    /// Customer Agents will respond positively" (§3.2.1).
    pub fn acceptance_rate(&self, level: Fraction, reward: Money) -> f64 {
        let Some(stats) = self.observations.iter().find(|s| s.cutdown == level) else {
            return 0.7;
        };
        if stats.offers == 0 {
            return 0.7;
        }
        let base = stats.acceptances as f64 / stats.offers as f64;
        if stats.acceptances == 0 {
            return 0.0;
        }
        let mean_accepted = stats.accepted_reward_sum / stats.acceptances as f64;
        if mean_accepted <= f64::EPSILON {
            return base;
        }
        // More reward than historically needed ⇒ at least the base rate;
        // less ⇒ proportionally fewer.
        (base * (reward.value() / mean_accepted)).clamp(0.0, 1.0)
    }

    /// Expected aggregate cut-down fraction for a hypothetical table —
    /// the input to the generate-and-select announcement strategy.
    pub fn expected_cutdown(&self, table: &RewardTable) -> f64 {
        // For each customer we approximate: P(bid ≥ level) known per
        // level; expected bid = Σ_level (P(bid ≥ level) − P(bid ≥ next)) · level.
        let mut entries: Vec<(Fraction, f64)> = table
            .entries()
            .iter()
            .filter(|&&(c, _)| c > Fraction::ZERO)
            .map(|&(c, r)| (c, self.acceptance_rate(c, r)))
            .collect();
        entries.sort_by_key(|e| e.0);
        let mut expected = 0.0;
        for i in 0..entries.len() {
            let (level, p) = entries[i];
            let p_next = entries.get(i + 1).map(|&(_, p)| p).unwrap_or(0.0);
            expected += (p - p_next).max(0.0) * level.value();
        }
        expected
    }

    fn stats_mut(&mut self, cutdown: Fraction) -> &mut LevelStats {
        if let Some(i) = self.observations.iter().position(|s| s.cutdown == cutdown) {
            return &mut self.observations[i];
        }
        self.observations.push(LevelStats {
            cutdown,
            accepted_reward_sum: 0.0,
            acceptances: 0,
            offers: 0,
        });
        self.observations.last_mut().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::DEFAULT_LEVELS;
    use powergrid::time::Interval;

    fn fr(v: f64) -> Fraction {
        Fraction::clamped(v)
    }

    fn table(reward_at: f64) -> RewardTable {
        RewardTable::quadratic(
            Interval::new(0, 8),
            &DEFAULT_LEVELS,
            Money(reward_at),
            fr(0.4),
        )
    }

    #[test]
    fn prior_is_70_percent() {
        let m = CustomerModel::new();
        assert_eq!(m.acceptance_rate(fr(0.3), Money(10.0)), 0.7);
    }

    #[test]
    fn observations_update_rates() {
        let mut m = CustomerModel::new();
        // 4 customers: two bid 0.4, one bids 0.2, one bids 0.
        m.observe_round(&table(17.0), &[fr(0.4), fr(0.4), fr(0.2), fr(0.0)]);
        // At level 0.4: 2/4 accepted at reward 17.
        let rate_at_observed = m.acceptance_rate(fr(0.4), Money(17.0));
        assert!((rate_at_observed - 0.5).abs() < 1e-9);
        // Offering more than historically needed keeps or raises the rate.
        assert!(m.acceptance_rate(fr(0.4), Money(25.0)) >= rate_at_observed);
        // Offering much less shrinks it.
        assert!(m.acceptance_rate(fr(0.4), Money(5.0)) < rate_at_observed);
    }

    #[test]
    fn zero_acceptances_mean_zero_rate() {
        let mut m = CustomerModel::new();
        m.observe_round(&table(1.0), &[fr(0.0), fr(0.0)]);
        assert_eq!(m.acceptance_rate(fr(0.4), Money(50.0)), 0.0);
    }

    #[test]
    fn expected_cutdown_grows_with_reward() {
        let mut m = CustomerModel::new();
        // Observe a population that needs ~17 at 0.4 and ~4 at 0.2.
        m.observe_round(&table(17.0), &[fr(0.4), fr(0.2), fr(0.2), fr(0.0)]);
        let low = m.expected_cutdown(&table(8.0));
        let high = m.expected_cutdown(&table(25.0));
        assert!(high >= low, "more reward must not predict less cut-down");
        assert!(high > 0.0);
    }

    #[test]
    fn negotiation_counter() {
        let mut m = CustomerModel::new();
        assert_eq!(m.negotiations(), 0);
        m.finish_negotiation();
        assert_eq!(m.negotiations(), 1);
    }
}
