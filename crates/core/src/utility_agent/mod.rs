//! The Utility Agent (UA): configuration and the reward-table negotiator
//! state machine, plus the generic-agent-model task modules of Figures
//! 2–3:
//!
//! * [`own_process_control`] — strategy determination and negotiation
//!   evaluation (Figure 2);
//! * [`agent_specific`] — predicting the consumption/production balance
//!   and deciding whether to negotiate (§5.1.2);
//! * [`cooperation`] — announcement determination (generate & select) and
//!   bid assessment (Figure 3);
//! * [`maintenance`] — models of the Customer Agents, updated from
//!   observed behaviour (§5.1.4).

pub mod agent_specific;
pub mod cooperation;
pub mod maintenance;
pub mod own_process_control;

use crate::beta::BetaPolicy;
use crate::concession::TerminationReason;
use crate::producer_agent::ProducerAgent;
use crate::reward::{RewardFormula, RewardTable, DEFAULT_LEVELS};
use powergrid::time::Interval;
use powergrid::units::{Fraction, KilowattHours, Money, PricePerKwh};
use serde::{Deserialize, Serialize};

/// Shape of the initial reward table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableShape {
    /// Rewards grow quadratically in the cut-down (the Figure-6
    /// calibration).
    Quadratic,
    /// Rewards grow linearly in the cut-down.
    Linear,
}

/// The marginal-cost stop rule for reward-table negotiations.
///
/// Before announcing a §6-raised table, the Utility Agent prices it at
/// the bids the customers have already committed to (monotonic
/// concession means those bids can only grow, so this is a floor on what
/// settling under the raised table will cost) and compares against the
/// most continuing can be worth: the value of eliminating every kWh
/// still predicted above normal capacity, at `value_per_kwh`. If the
/// next table's outlay exceeds that saving, the UA settles on the
/// current table instead — [`TerminationReason::EconomicStop`], a
/// converged outcome.
///
/// This is deliberately a *budget* test on the whole next-table
/// commitment, not a marginal-rate test on the raise alone
/// (`outlay(next) − outlay(current)` vs the saving): the UA refuses to
/// keep a table in play whose guaranteed cost already exceeds what the
/// remaining avoidable production is worth, which bounds the outlay a
/// single peak can absorb. The marginal-rate form never fires on grid
/// campaigns — committed bids are near zero until the crossing round,
/// so its left-hand side stays at zero while the overshoot happens.
///
/// Campaigns derive `value_per_kwh` from the producer's economics
/// ([`EconomicStopRule::for_producer`]); the rule is `None` by default,
/// preserving the paper's unconditional behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EconomicStopRule {
    /// What a kWh of negotiated cut-down is worth to the utility.
    pub value_per_kwh: PricePerKwh,
}

impl EconomicStopRule {
    /// Prices the rule from a producer agent: a kWh shaved off the peak
    /// is worth the producer's
    /// [`peak_saving_value`](ProducerAgent::peak_saving_value) — the
    /// expensive/normal cost spread, i.e. the marginal production cost
    /// the utility avoids.
    pub fn for_producer(producer: &ProducerAgent) -> EconomicStopRule {
        EconomicStopRule {
            value_per_kwh: producer.peak_saving_value(),
        }
    }
}

/// Full configuration of a Utility Agent.
///
/// # Example
///
/// ```
/// use loadbal_core::utility_agent::UtilityAgentConfig;
///
/// let config = UtilityAgentConfig::paper();
/// assert_eq!(config.formula.beta, 2.0);
/// assert_eq!(config.max_allowed_overuse, 0.15);
/// assert!(config.economic_stop.is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityAgentConfig {
    /// The §6 update rule parameters.
    pub formula: RewardFormula,
    /// How β evolves across rounds (constant in the prototype).
    pub beta_policy: BetaPolicy,
    /// "The maximal allowed overuse": the relative overuse the UA will
    /// accept without further negotiation.
    pub max_allowed_overuse: f64,
    /// Cut-down levels offered in reward tables.
    pub levels: Vec<f64>,
    /// Reward pinned at [`UtilityAgentConfig::pin`] in the initial table.
    pub initial_reward_at: Money,
    /// The cut-down level the initial reward is pinned to.
    pub pin: Fraction,
    /// Shape of the initial table.
    pub table_shape: TableShape,
    /// `x_max` for the offer method (§3.2.1).
    pub offer_x_max: Fraction,
    /// Round budget (a protocol safety net, not a convergence mechanism).
    pub max_rounds: u32,
    /// The marginal-cost stop rule (`None` = negotiate unconditionally,
    /// as the paper's prototype does).
    pub economic_stop: Option<EconomicStopRule>,
}

impl UtilityAgentConfig {
    /// The Figure 6/7 calibration: β = 2, max reward 30, ε = 1, quadratic
    /// initial table pinned at 17 for cut-down 0.4, 15 % allowed overuse.
    pub fn paper() -> UtilityAgentConfig {
        UtilityAgentConfig {
            formula: RewardFormula::paper(),
            beta_policy: BetaPolicy::paper(),
            max_allowed_overuse: 0.15,
            levels: DEFAULT_LEVELS.to_vec(),
            initial_reward_at: Money(17.0),
            pin: Fraction::clamped(0.4),
            table_shape: TableShape::Quadratic,
            offer_x_max: Fraction::clamped(0.8),
            max_rounds: 50,
            economic_stop: None,
        }
    }

    /// Replaces the β policy (builder style).
    pub fn with_beta_policy(mut self, policy: BetaPolicy) -> UtilityAgentConfig {
        self.beta_policy = policy;
        self
    }

    /// Replaces the allowed-overuse threshold (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative.
    pub fn with_max_allowed_overuse(mut self, threshold: f64) -> UtilityAgentConfig {
        assert!(threshold >= 0.0, "overuse threshold must be non-negative");
        self.max_allowed_overuse = threshold;
        self
    }

    /// Replaces the offer-method `x_max` (builder style).
    pub fn with_offer_x_max(mut self, x_max: Fraction) -> UtilityAgentConfig {
        self.offer_x_max = x_max;
        self
    }

    /// Installs (or clears) the marginal-cost stop rule (builder style).
    pub fn with_economic_stop(mut self, rule: Option<EconomicStopRule>) -> UtilityAgentConfig {
        self.economic_stop = rule;
        self
    }

    /// Builds the initial reward table for a cut-down interval.
    pub fn initial_table(&self, interval: Interval) -> RewardTable {
        match self.table_shape {
            TableShape::Quadratic => {
                RewardTable::quadratic(interval, &self.levels, self.initial_reward_at, self.pin)
            }
            TableShape::Linear => {
                RewardTable::linear(interval, &self.levels, self.initial_reward_at, self.pin)
            }
        }
    }
}

impl Default for UtilityAgentConfig {
    fn default() -> Self {
        UtilityAgentConfig::paper()
    }
}

/// The UA's verdict after evaluating a round of bids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UaDecision {
    /// Stop: the protocol's own termination rules fired.
    Converged(TerminationReason),
    /// Continue: announce the (dominating) table now current on the
    /// negotiator — read it through
    /// [`RewardTableNegotiator::current_table`]; the decision itself
    /// stays allocation-free.
    NextTable,
}

/// The reward-table negotiation state machine on the UA side.
///
/// Drives §3.2.3: announce, collect bids, predict the new balance, then
/// either accept or announce a dominating table. Both the synchronous
/// session and the distributed actors drive this same machine, so their
/// outcomes agree by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct RewardTableNegotiator {
    config: UtilityAgentConfig,
    current: RewardTable,
    round: u32,
    stall_rounds: u32,
    prev_overuse: Option<f64>,
}

impl RewardTableNegotiator {
    /// Starts a negotiation over `interval` with the initial table
    /// announced as round 1.
    pub fn new(config: UtilityAgentConfig, interval: Interval) -> RewardTableNegotiator {
        let current = config.initial_table(interval);
        RewardTableNegotiator {
            config,
            current,
            round: 1,
            stall_rounds: 0,
            prev_overuse: None,
        }
    }

    /// The table announced for the current round.
    pub fn current_table(&self) -> &RewardTable {
        &self.current
    }

    /// The current round number (1-based).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The configuration in use.
    pub fn config(&self) -> &UtilityAgentConfig {
        &self.config
    }

    /// Evaluates the predicted relative overuse after this round's bids
    /// and decides whether to stop or announce a new table, without the
    /// economic context — equivalent to [`evaluate_with_outlay`] with no
    /// remaining overuse to price, so a configured
    /// [`EconomicStopRule`] never fires through this entry point.
    ///
    /// [`evaluate_with_outlay`]: RewardTableNegotiator::evaluate_with_outlay
    pub fn evaluate(&mut self, overuse: f64) -> UaDecision {
        self.evaluate_with_outlay(overuse, KilowattHours::ZERO, |_| Money::ZERO)
    }

    /// Evaluates the predicted relative overuse after this round's bids
    /// and decides whether to stop or announce a new table.
    ///
    /// Termination (§3.2.3 / §6): overuse at or below the allowed
    /// maximum; the table step at most ε ("difference ... less than or
    /// equal to 1"); the round budget spent; or — when an
    /// [`EconomicStopRule`] is configured — the next table priced at the
    /// committed bids (`outlay_at`) exceeding the value of the
    /// `remaining_overuse` still avoidable.
    pub fn evaluate_with_outlay(
        &mut self,
        overuse: f64,
        remaining_overuse: KilowattHours,
        outlay_at: impl FnOnce(&RewardTable) -> Money,
    ) -> UaDecision {
        if overuse <= self.config.max_allowed_overuse {
            return UaDecision::Converged(TerminationReason::OveruseAcceptable);
        }
        if self.round >= self.config.max_rounds {
            // Round budget spent; treat as saturation for reporting — the
            // session maps this onto MaxRoundsExceeded.
            return UaDecision::Converged(TerminationReason::RewardSaturated);
        }
        // Track progress for adaptive β policies.
        if let Some(prev) = self.prev_overuse {
            let progress = prev - overuse;
            if progress < self.config.beta_policy.min_progress() {
                self.stall_rounds += 1;
            } else {
                self.stall_rounds = 0;
            }
        }
        self.prev_overuse = Some(overuse);

        let beta = self
            .config
            .beta_policy
            .beta(self.round - 1, self.stall_rounds);
        let next = self.current.updated(&self.config.formula, overuse, beta);
        if next.max_delta(&self.current) <= self.config.formula.epsilon {
            return UaDecision::Converged(TerminationReason::RewardSaturated);
        }
        if let Some(rule) = &self.config.economic_stop {
            let saving = remaining_overuse.clamp_non_negative() * rule.value_per_kwh;
            if outlay_at(&next) > saving {
                return UaDecision::Converged(TerminationReason::EconomicStop);
            }
        }
        debug_assert!(next.dominates(&self.current), "§3.1 monotonic concession");
        self.current = next;
        self.round += 1;
        UaDecision::NextTable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval() -> Interval {
        Interval::new(72, 80)
    }

    #[test]
    fn initial_table_matches_figure_6() {
        let n = RewardTableNegotiator::new(UtilityAgentConfig::paper(), interval());
        assert_eq!(n.round(), 1);
        assert_eq!(
            n.current_table().reward_for(Fraction::clamped(0.4)),
            Money(17.0)
        );
    }

    #[test]
    fn low_overuse_converges_immediately() {
        let mut n = RewardTableNegotiator::new(UtilityAgentConfig::paper(), interval());
        let d = n.evaluate(0.10);
        assert_eq!(
            d,
            UaDecision::Converged(TerminationReason::OveruseAcceptable)
        );
    }

    #[test]
    fn high_overuse_announces_dominating_table() {
        let mut n = RewardTableNegotiator::new(UtilityAgentConfig::paper(), interval());
        let first = n.current_table().clone();
        match n.evaluate(0.35) {
            UaDecision::NextTable => {
                assert!(n.current_table().dominates(&first));
                assert_eq!(n.round(), 2);
            }
            other => panic!("expected next table, got {other:?}"),
        }
    }

    #[test]
    fn saturation_terminates_despite_high_overuse() {
        let mut n = RewardTableNegotiator::new(UtilityAgentConfig::paper(), interval());
        let mut rounds = 0;
        loop {
            rounds += 1;
            match n.evaluate(0.5) {
                UaDecision::NextTable => continue,
                UaDecision::Converged(TerminationReason::RewardSaturated) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            rounds < 60,
            "saturation within a reasonable horizon, got {rounds}"
        );
    }

    #[test]
    fn round_budget_is_a_backstop() {
        let mut config = UtilityAgentConfig::paper();
        config.max_rounds = 2;
        let mut n = RewardTableNegotiator::new(config, interval());
        assert!(matches!(n.evaluate(0.5), UaDecision::NextTable));
        assert!(matches!(n.evaluate(0.5), UaDecision::Converged(_)));
    }

    #[test]
    fn builders() {
        let c = UtilityAgentConfig::paper()
            .with_max_allowed_overuse(0.05)
            .with_beta_policy(BetaPolicy::constant(1.0))
            .with_offer_x_max(Fraction::clamped(0.7));
        assert_eq!(c.max_allowed_overuse, 0.05);
        assert_eq!(c.beta_policy, BetaPolicy::constant(1.0));
        assert_eq!(c.offer_x_max, Fraction::clamped(0.7));
    }

    #[test]
    fn economic_stop_fires_when_next_table_outprices_the_saving() {
        let config = UtilityAgentConfig::paper().with_economic_stop(Some(EconomicStopRule {
            value_per_kwh: PricePerKwh(1.0),
        }));
        let mut n = RewardTableNegotiator::new(config, interval());
        // 10 kWh still above capacity is worth 10; a next table priced at
        // 25 for the committed bids is uneconomical — settle now.
        let d = n.evaluate_with_outlay(0.35, KilowattHours(10.0), |_| Money(25.0));
        assert_eq!(d, UaDecision::Converged(TerminationReason::EconomicStop));
        assert_eq!(n.round(), 1, "no table was raised");
    }

    #[test]
    fn economic_stop_spares_a_raise_still_worth_it() {
        let config = UtilityAgentConfig::paper().with_economic_stop(Some(EconomicStopRule {
            value_per_kwh: PricePerKwh(1.0),
        }));
        let mut n = RewardTableNegotiator::new(config, interval());
        // 100 kWh of avoidable expensive production is worth 100 — more
        // than the 25 the next table commits to, so the UA keeps raising.
        let d = n.evaluate_with_outlay(0.35, KilowattHours(100.0), |_| Money(25.0));
        assert!(matches!(d, UaDecision::NextTable));
        assert_eq!(n.round(), 2);
    }

    #[test]
    fn no_rule_means_unconditional_negotiation() {
        let mut with_ctx = RewardTableNegotiator::new(UtilityAgentConfig::paper(), interval());
        let mut plain = RewardTableNegotiator::new(UtilityAgentConfig::paper(), interval());
        // Even an absurdly expensive next table is announced when no rule
        // is configured, and the context-free entry point agrees.
        let a = with_ctx.evaluate_with_outlay(0.35, KilowattHours(1e-6), |_| Money(1e9));
        let b = plain.evaluate(0.35);
        assert_eq!(a, b);
        assert!(matches!(a, UaDecision::NextTable));
    }

    #[test]
    fn stop_rule_pricing_comes_from_the_producer() {
        use powergrid::production::ProductionModel;
        use powergrid::units::Kilowatts;
        let producer = ProducerAgent::new(ProductionModel::with_costs(
            Kilowatts(100.0),
            Kilowatts(200.0),
            PricePerKwh(0.3),
            PricePerKwh(1.1),
        ));
        let rule = EconomicStopRule::for_producer(&producer);
        assert_eq!(rule.value_per_kwh, producer.peak_saving_value());
        assert!((rule.value_per_kwh.value() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn linear_shape_builds_linear_table() {
        let mut config = UtilityAgentConfig::paper();
        config.table_shape = TableShape::Linear;
        let t = config.initial_table(interval());
        let r02 = t.reward_for(Fraction::clamped(0.2)).value();
        assert!(
            (r02 - 8.5).abs() < 1e-9,
            "linear at 0.2 should be 8.5, got {r02}"
        );
    }
}
