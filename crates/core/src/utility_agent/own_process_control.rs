//! Own process control within the UA (Figure 2): *determine general
//! negotiation strategy* and *evaluate negotiation process*.
//!
//! The evaluation feeds back into strategy determination — the "on the
//! basis of experience" adaptation the paper flags as future work for β.

use crate::concession::NegotiationStatus;
use crate::methods::AnnouncementMethod;
use crate::session::NegotiationReport;
use crate::strategy::{select_method, NegotiationContext};
use crate::utility_agent::UtilityAgentConfig;
use serde::{Deserialize, Serialize};

/// The *evaluate negotiation process* output for one finished
/// negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NegotiationEvaluation {
    /// Method used.
    pub method: AnnouncementMethod,
    /// Rounds executed.
    pub rounds: u32,
    /// Relative overuse at the start.
    pub initial_overuse: f64,
    /// Relative overuse at the end.
    pub final_overuse: f64,
    /// Total reward outlay committed.
    pub reward_outlay: f64,
    /// Whether the protocol converged by its own rules.
    pub converged: bool,
}

impl NegotiationEvaluation {
    /// Summarises a finished negotiation report.
    pub fn from_report(report: &NegotiationReport) -> NegotiationEvaluation {
        NegotiationEvaluation {
            method: report.method(),
            rounds: report.rounds().len() as u32,
            initial_overuse: report.initial_overuse_fraction(),
            final_overuse: report.final_overuse_fraction(),
            reward_outlay: report.total_rewards().value(),
            converged: report.status().is_converged(),
        }
    }

    /// Overuse removed per unit of reward spent (∞ when free, 0 when
    /// nothing improved).
    pub fn efficiency(&self) -> f64 {
        let removed = (self.initial_overuse - self.final_overuse).max(0.0);
        if removed <= 0.0 {
            0.0
        } else if self.reward_outlay <= f64::EPSILON {
            f64::INFINITY
        } else {
            removed / self.reward_outlay
        }
    }
}

/// The UA's own-process-control state: evaluation history plus the
/// strategy-determination step.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OwnProcessControl {
    history: Vec<NegotiationEvaluation>,
}

impl OwnProcessControl {
    /// Creates an empty history.
    pub fn new() -> OwnProcessControl {
        OwnProcessControl::default()
    }

    /// Records one finished negotiation.
    pub fn record(&mut self, report: &NegotiationReport) {
        self.history
            .push(NegotiationEvaluation::from_report(report));
    }

    /// The evaluation history, oldest first.
    pub fn history(&self) -> &[NegotiationEvaluation] {
        &self.history
    }

    /// *Determine general negotiation strategy*: delegate to the §3.2.4
    /// selection knowledge.
    pub fn determine_strategy(
        &self,
        ctx: NegotiationContext,
    ) -> (AnnouncementMethod, &'static str) {
        select_method(ctx)
    }

    /// Experience-based tuning (§7 "dynamically varying the value of beta
    /// on the basis of experience"): if recent reward-table negotiations
    /// ran long, steepen β; if they converged in very few rounds while
    /// overspending, flatten it. Returns the adjusted config.
    pub fn tune(&self, mut config: UtilityAgentConfig) -> UtilityAgentConfig {
        let recent: Vec<&NegotiationEvaluation> = self
            .history
            .iter()
            .rev()
            .take(5)
            .filter(|e| e.method == AnnouncementMethod::RewardTables)
            .collect();
        if recent.is_empty() {
            return config;
        }
        let mean_rounds: f64 =
            recent.iter().map(|e| f64::from(e.rounds)).sum::<f64>() / recent.len() as f64;
        if mean_rounds > 6.0 {
            config.formula.beta *= 1.5;
        } else if mean_rounds < 2.5 {
            config.formula.beta *= 0.75;
        }
        config
    }

    /// True if the last negotiation failed to converge — the trigger for
    /// a strategy review.
    pub fn last_failed(&self) -> bool {
        self.history.last().map(|e| !e.converged).unwrap_or(false)
    }
}

/// Re-export of the status type used in evaluations.
pub type Status = NegotiationStatus;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;

    #[test]
    fn evaluation_from_real_report() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = scenario.run();
        let eval = NegotiationEvaluation::from_report(&report);
        assert!(eval.converged);
        assert!(eval.initial_overuse > eval.final_overuse);
        assert!(eval.efficiency() > 0.0);
    }

    #[test]
    fn history_records() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = scenario.run();
        let mut opc = OwnProcessControl::new();
        assert!(!opc.last_failed());
        opc.record(&report);
        assert_eq!(opc.history().len(), 1);
        assert!(!opc.last_failed());
    }

    #[test]
    fn tuning_steepens_beta_after_long_negotiations() {
        let mut opc = OwnProcessControl::new();
        for _ in 0..5 {
            opc.history.push(NegotiationEvaluation {
                method: AnnouncementMethod::RewardTables,
                rounds: 10,
                initial_overuse: 0.35,
                final_overuse: 0.14,
                reward_outlay: 100.0,
                converged: true,
            });
        }
        let base = UtilityAgentConfig::paper();
        let tuned = opc.tune(base.clone());
        assert!(tuned.formula.beta > base.formula.beta);
    }

    #[test]
    fn tuning_flattens_beta_after_instant_convergence() {
        let mut opc = OwnProcessControl::new();
        for _ in 0..5 {
            opc.history.push(NegotiationEvaluation {
                method: AnnouncementMethod::RewardTables,
                rounds: 1,
                initial_overuse: 0.2,
                final_overuse: 0.1,
                reward_outlay: 400.0,
                converged: true,
            });
        }
        let base = UtilityAgentConfig::paper();
        let tuned = opc.tune(base.clone());
        assert!(tuned.formula.beta < base.formula.beta);
    }

    #[test]
    fn tuning_without_history_is_identity() {
        let opc = OwnProcessControl::new();
        let base = UtilityAgentConfig::paper();
        assert_eq!(opc.tune(base.clone()), base);
    }

    #[test]
    fn efficiency_edge_cases() {
        let mut e = NegotiationEvaluation {
            method: AnnouncementMethod::Offer,
            rounds: 1,
            initial_overuse: 0.3,
            final_overuse: 0.3,
            reward_outlay: 10.0,
            converged: true,
        };
        assert_eq!(e.efficiency(), 0.0);
        e.final_overuse = 0.1;
        e.reward_outlay = 0.0;
        assert_eq!(e.efficiency(), f64::INFINITY);
    }
}
