//! Own process control within the UA (Figure 2): *determine general
//! negotiation strategy* and *evaluate negotiation process*.
//!
//! The evaluation feeds back into strategy determination — the "on the
//! basis of experience" adaptation the paper flags as future work for β.

use crate::concession::NegotiationStatus;
use crate::methods::AnnouncementMethod;
use crate::session::NegotiationReport;
use crate::strategy::{select_method, NegotiationContext};
use crate::utility_agent::UtilityAgentConfig;
use serde::{Deserialize, Serialize};

/// The *evaluate negotiation process* output for one finished
/// negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NegotiationEvaluation {
    /// Method used.
    pub method: AnnouncementMethod,
    /// Rounds executed.
    pub rounds: u32,
    /// Relative overuse at the start.
    pub initial_overuse: f64,
    /// Relative overuse at the end.
    pub final_overuse: f64,
    /// Total reward outlay committed.
    pub reward_outlay: f64,
    /// Whether the protocol converged by its own rules.
    pub converged: bool,
}

impl NegotiationEvaluation {
    /// Summarises a finished negotiation report. Reads only digest
    /// scalars, so evaluations (and the tuning built on them) are
    /// identical at every [`ReportTier`](crate::session::ReportTier).
    pub fn from_report(report: &NegotiationReport) -> NegotiationEvaluation {
        NegotiationEvaluation {
            method: report.method(),
            rounds: report.digest().rounds,
            initial_overuse: report.initial_overuse_fraction(),
            final_overuse: report.final_overuse_fraction(),
            reward_outlay: report.total_rewards().value(),
            converged: report.status().is_converged(),
        }
    }

    /// Overuse removed per unit of reward spent (∞ when free, 0 when
    /// nothing improved).
    pub fn efficiency(&self) -> f64 {
        let removed = (self.initial_overuse - self.final_overuse).max(0.0);
        if removed <= 0.0 {
            0.0
        } else if self.reward_outlay <= f64::EPSILON {
            f64::INFINITY
        } else {
            removed / self.reward_outlay
        }
    }
}

/// The UA's own-process-control state: evaluation history plus the
/// strategy-determination step.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OwnProcessControl {
    history: Vec<NegotiationEvaluation>,
}

/// Lower bound [`OwnProcessControl::tune`] clamps β to. Below this the
/// §6 increment `β·overuse·…` is smaller than ε for any realistic
/// overuse and tables stop moving.
pub const BETA_MIN: f64 = 0.25;

/// Upper bound [`OwnProcessControl::tune`] clamps β to — a little over
/// four of the ×1.5 steepening steps from the campaign default (14.0).
/// Uncapped, a long season of slow negotiations compounds β without
/// limit and a single table raise overshoots every customer ceiling.
pub const BETA_MAX: f64 = 64.0;

/// Upper bound [`OwnProcessControl::tune`] clamps the adapted
/// allowed-overuse band to — the paper's Figure-6 tolerance (15 %).
pub const BAND_MAX: f64 = 0.15;

/// Evaluations [`OwnProcessControl`] retains, oldest dropped first.
/// [`OwnProcessControl::tune`] reads only the most recent
/// [`TUNE_WINDOW`]; the rest exist for inspection, and without a cap a
/// season-scale campaign would grow the history without limit.
pub const MAX_HISTORY: usize = 256;

/// Recent evaluations [`OwnProcessControl::tune`] adapts from.
pub const TUNE_WINDOW: usize = 5;

/// Relative overuse above the allowed band [`OwnProcessControl::tune`]
/// treats as a failure to finish: settlements leaving more residual
/// than `max_allowed_overuse + RESIDUAL_MARGIN` steepen β instead of
/// letting an instant-convergence reading flatten it further.
pub const RESIDUAL_MARGIN: f64 = 0.01;

impl OwnProcessControl {
    /// Creates an empty history.
    pub fn new() -> OwnProcessControl {
        OwnProcessControl::default()
    }

    /// Records one finished negotiation. The history is windowed at
    /// [`MAX_HISTORY`] evaluations: once full, the oldest is dropped.
    pub fn record(&mut self, report: &NegotiationReport) {
        self.history
            .push(NegotiationEvaluation::from_report(report));
        if self.history.len() > MAX_HISTORY {
            let excess = self.history.len() - MAX_HISTORY;
            self.history.drain(..excess);
        }
    }

    /// The evaluation history, oldest first.
    pub fn history(&self) -> &[NegotiationEvaluation] {
        &self.history
    }

    /// *Determine general negotiation strategy*: delegate to the §3.2.4
    /// selection knowledge.
    pub fn determine_strategy(
        &self,
        ctx: NegotiationContext,
    ) -> (AnnouncementMethod, &'static str) {
        select_method(ctx)
    }

    /// Experience-based tuning (§7 "dynamically varying the value of beta
    /// on the basis of experience"), over the last [`TUNE_WINDOW`]
    /// reward-table evaluations:
    ///
    /// * **β** — if recent negotiations ran long, saturated without
    ///   removing any overuse (a β too flat to move the table past ε
    ///   before anyone accepts), or kept settling with residual overuse
    ///   more than [`RESIDUAL_MARGIN`] above the allowed band (a β too
    ///   flat to finish the job before ε), steepen by ×1.5; if they
    ///   closed in very few rounds while clearing the peak to within
    ///   the band, flatten by ×0.75 — instant deals overspend.
    ///   Negotiations whose peak materialised with nothing to remove
    ///   carry no β signal and are ignored. Both
    ///   `formula.beta` and the
    ///   [`BetaPolicy`](crate::beta::BetaPolicy)'s base β move (the
    ///   session negotiates from the policy), clamped to
    ///   `[`[`BETA_MIN`]`, `[`BETA_MAX`]`]` so a long season cannot
    ///   compound β to absurd values.
    /// * **allowed-overuse band** — `max_allowed_overuse` moves halfway
    ///   toward the mean *final* overuse recent negotiations actually
    ///   settled at, clamped to `[0, `[`BAND_MAX`]`]`: the UA learns what
    ///   residual overuse is attainable and stops paying for the last
    ///   few unattainable percent (an intra-day renegotiation loop can
    ///   then revisit the residual on a fresh, cheap reward ladder).
    ///
    /// Returns the adjusted config; without reward-table history it is
    /// the identity.
    pub fn tune(&self, mut config: UtilityAgentConfig) -> UtilityAgentConfig {
        let recent: Vec<&NegotiationEvaluation> = self
            .history
            .iter()
            .rev()
            .take(TUNE_WINDOW)
            .filter(|e| e.method == AnnouncementMethod::RewardTables)
            .collect();
        if recent.is_empty() {
            return config;
        }
        // Only negotiations that had overuse to remove carry a β signal
        // (a peak that materialised under capacity settles instantly
        // whatever β is).
        let informative: Vec<&&NegotiationEvaluation> =
            recent.iter().filter(|e| e.initial_overuse > 0.0).collect();
        let factor = if informative.is_empty() {
            1.0
        } else {
            let n = informative.len() as f64;
            let mean_rounds: f64 = informative.iter().map(|e| f64::from(e.rounds)).sum::<f64>() / n;
            let mean_removed: f64 = informative
                .iter()
                .map(|e| (e.initial_overuse - e.final_overuse).max(0.0))
                .sum::<f64>()
                / n;
            let mean_final: f64 = informative.iter().map(|e| e.final_overuse).sum::<f64>() / n;
            let within_band = mean_final <= config.max_allowed_overuse + RESIDUAL_MARGIN;
            if mean_rounds > 6.0 || mean_removed <= 1e-9 || !within_band {
                // Long hauls, tables saturating before any customer
                // accepts (the low-β death spiral), or settlements that
                // keep leaving overuse above the band (a β too flat to
                // clear the peak before ε) — all call for a steeper
                // ladder.
                1.5
            } else if mean_rounds < 2.5 {
                // Instant deals overspend: a gentler ladder stops lower.
                0.75
            } else {
                1.0
            }
        };
        // The session reads its per-round β from the beta *policy*
        // (`formula.beta` is the default callers pass when driving the
        // update rule by hand) — tune both so the adaptation reaches
        // every path.
        config.formula.beta = (config.formula.beta * factor).clamp(BETA_MIN, BETA_MAX);
        config.beta_policy = config
            .beta_policy
            .with_base_beta((config.beta_policy.base_beta() * factor).clamp(BETA_MIN, BETA_MAX));
        let mean_final: f64 =
            recent.iter().map(|e| e.final_overuse).sum::<f64>() / recent.len() as f64;
        config.max_allowed_overuse =
            (0.5 * (config.max_allowed_overuse + mean_final)).clamp(0.0, BAND_MAX);
        config
    }

    /// True if the last negotiation failed to converge — the trigger for
    /// a strategy review.
    pub fn last_failed(&self) -> bool {
        self.history.last().map(|e| !e.converged).unwrap_or(false)
    }
}

/// Re-export of the status type used in evaluations.
pub type Status = NegotiationStatus;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioBuilder;

    #[test]
    fn evaluation_from_real_report() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = scenario.run();
        let eval = NegotiationEvaluation::from_report(&report);
        assert!(eval.converged);
        assert!(eval.initial_overuse > eval.final_overuse);
        assert!(eval.efficiency() > 0.0);
    }

    #[test]
    fn history_records() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = scenario.run();
        let mut opc = OwnProcessControl::new();
        assert!(!opc.last_failed());
        opc.record(&report);
        assert_eq!(opc.history().len(), 1);
        assert!(!opc.last_failed());
    }

    #[test]
    fn tuning_steepens_beta_after_long_negotiations() {
        let mut opc = OwnProcessControl::new();
        for _ in 0..5 {
            opc.history.push(NegotiationEvaluation {
                method: AnnouncementMethod::RewardTables,
                rounds: 10,
                initial_overuse: 0.35,
                final_overuse: 0.14,
                reward_outlay: 100.0,
                converged: true,
            });
        }
        let base = UtilityAgentConfig::paper();
        let tuned = opc.tune(base.clone());
        assert!(tuned.formula.beta > base.formula.beta);
        assert!(
            tuned.beta_policy.base_beta() > base.beta_policy.base_beta(),
            "the session's negotiation β (the policy) must adapt too"
        );
    }

    #[test]
    fn tuning_flattens_beta_after_instant_convergence() {
        let mut opc = OwnProcessControl::new();
        for _ in 0..5 {
            opc.history.push(NegotiationEvaluation {
                method: AnnouncementMethod::RewardTables,
                rounds: 1,
                initial_overuse: 0.2,
                final_overuse: 0.1,
                reward_outlay: 400.0,
                converged: true,
            });
        }
        let base = UtilityAgentConfig::paper();
        let tuned = opc.tune(base.clone());
        assert!(tuned.formula.beta < base.formula.beta);
    }

    #[test]
    fn tuning_steepens_beta_when_residual_stays_above_band() {
        // Instant convergence would normally flatten β — but these
        // settlements keep leaving 5 % overuse against a 0 % band, so
        // the ladder is too flat to finish the job and must steepen.
        let mut opc = OwnProcessControl::new();
        for _ in 0..TUNE_WINDOW {
            opc.history.push(NegotiationEvaluation {
                method: AnnouncementMethod::RewardTables,
                rounds: 1,
                initial_overuse: 0.2,
                final_overuse: 0.05,
                reward_outlay: 400.0,
                converged: true,
            });
        }
        let base = UtilityAgentConfig::paper().with_max_allowed_overuse(0.0);
        let tuned = opc.tune(base.clone());
        assert!(tuned.formula.beta > base.formula.beta);
        assert!(tuned.beta_policy.base_beta() > base.beta_policy.base_beta());
    }

    #[test]
    fn tuning_without_history_is_identity() {
        let opc = OwnProcessControl::new();
        let base = UtilityAgentConfig::paper();
        assert_eq!(opc.tune(base.clone()), base);
    }

    fn long_negotiation() -> NegotiationEvaluation {
        NegotiationEvaluation {
            method: AnnouncementMethod::RewardTables,
            rounds: 10,
            initial_overuse: 0.35,
            final_overuse: 0.14,
            reward_outlay: 100.0,
            converged: true,
        }
    }

    #[test]
    fn beta_is_clamped_under_repeated_tuning() {
        let mut opc = OwnProcessControl::new();
        for _ in 0..TUNE_WINDOW {
            opc.history.push(long_negotiation());
        }
        // Steepening compounds ×1.5 per call; the clamp must hold it.
        let mut config = UtilityAgentConfig::paper();
        for _ in 0..50 {
            config = opc.tune(config);
            assert!(config.formula.beta <= BETA_MAX, "{}", config.formula.beta);
        }
        assert_eq!(config.formula.beta, BETA_MAX);
        // And the flattening direction bottoms out at BETA_MIN.
        let mut opc = OwnProcessControl::new();
        for _ in 0..TUNE_WINDOW {
            opc.history.push(NegotiationEvaluation {
                rounds: 1,
                ..long_negotiation()
            });
        }
        for _ in 0..50 {
            config = opc.tune(config);
            assert!(config.formula.beta >= BETA_MIN, "{}", config.formula.beta);
        }
        assert_eq!(config.formula.beta, BETA_MIN);
    }

    #[test]
    fn band_adapts_toward_achieved_overuse_and_is_clamped() {
        let mut opc = OwnProcessControl::new();
        for _ in 0..TUNE_WINDOW {
            opc.history.push(NegotiationEvaluation {
                // Mid-length rounds and residual within the band leave β
                // untouched: isolate the band rule.
                rounds: 4,
                final_overuse: 0.04,
                ..long_negotiation()
            });
        }
        let base = UtilityAgentConfig::paper().with_max_allowed_overuse(0.08);
        let tuned = opc.tune(base.clone());
        assert_eq!(tuned.formula.beta, base.formula.beta);
        assert!((tuned.max_allowed_overuse - 0.06).abs() < 1e-12);
        // Converging toward the achieved residual, never past BAND_MAX.
        let mut config = base;
        for _ in 0..50 {
            config = opc.tune(config);
            assert!(config.max_allowed_overuse <= BAND_MAX);
        }
        assert!((config.max_allowed_overuse - 0.04).abs() < 1e-9);
        // Fully converging negotiations pull the band back to zero.
        let mut opc = OwnProcessControl::new();
        for _ in 0..TUNE_WINDOW {
            opc.history.push(NegotiationEvaluation {
                rounds: 4,
                final_overuse: 0.0,
                ..long_negotiation()
            });
        }
        for _ in 0..60 {
            config = opc.tune(config);
        }
        assert!(config.max_allowed_overuse < 1e-9);
    }

    #[test]
    fn history_is_windowed_at_max_history() {
        let scenario = ScenarioBuilder::paper_figure_6().build();
        let report = scenario.run();
        let mut opc = OwnProcessControl::new();
        for _ in 0..(MAX_HISTORY + 10) {
            opc.record(&report);
        }
        assert_eq!(opc.history().len(), MAX_HISTORY);
    }

    #[test]
    fn efficiency_edge_cases() {
        let mut e = NegotiationEvaluation {
            method: AnnouncementMethod::Offer,
            rounds: 1,
            initial_overuse: 0.3,
            final_overuse: 0.3,
            reward_outlay: 10.0,
            converged: true,
        };
        assert_eq!(e.efficiency(), 0.0);
        e.final_overuse = 0.1;
        e.reward_outlay = 0.0;
        assert_eq!(e.efficiency(), f64::INFINITY);
    }
}
