//! The generic agent model (Brazier, Jonker & Treur, ATAL'96 — the
//! paper's reference \[4\]).
//!
//! "In this agent model, an agent performs the following generic agent
//! tasks: own process control, agent specific task, cooperation
//! management, agent interaction management, world interaction
//! management, maintenance of world information, maintenance of agent
//! information" (§5). [`GenericAgentBuilder`] assembles those seven
//! tasks into one composed component with the model's standard
//! information-flow wiring:
//!
//! ```text
//!  parent.input ──────────────► agent_interaction.input   (incoming communication)
//!  parent.input ──────────────► world_interaction.input   (observations)
//!  agent_interaction.output ──► cooperation.input          (received proposals)
//!  agent_interaction.output ──► maintenance_agent.input    (observed behaviour)
//!  world_interaction.output ──► maintenance_world.input    (observed world facts)
//!  maintenance_world.output ──► agent_specific.input       (world model)
//!  maintenance_agent.output ──► cooperation.input          (models of agents)
//!  agent_specific.output ─────► own_process_control.input  (assessments)
//!  own_process_control.output ► cooperation.input          (strategy)
//!  cooperation.output ────────► agent_interaction.input    (outgoing proposals)
//!  agent_interaction.output ──► parent.output              (communication out)
//! ```
//!
//! Tasks left unset default to empty reasoning components, so partial
//! agents (e.g. a Producer Agent that only needs interaction management
//! and an agent-specific task) build cleanly.

use crate::component::Component;
use crate::ident::Name;
use crate::kb::KnowledgeBase;
use crate::link::{Endpoint, InfoLink};
use crate::task_control::TaskControl;

/// The seven generic tasks of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenericTask {
    /// Controlling the agent's own reasoning processes.
    OwnProcessControl,
    /// The agent's domain task (e.g. predicting the load balance).
    AgentSpecificTask,
    /// Managing cooperation (negotiation content).
    CooperationManagement,
    /// Communicating with other agents.
    AgentInteractionManagement,
    /// Observing and acting in the external world.
    WorldInteractionManagement,
    /// Storing and updating world knowledge.
    MaintenanceOfWorldInformation,
    /// Storing and updating models of other agents.
    MaintenanceOfAgentInformation,
}

impl GenericTask {
    /// All seven tasks, in the order the paper lists them.
    pub fn all() -> [GenericTask; 7] {
        [
            GenericTask::OwnProcessControl,
            GenericTask::AgentSpecificTask,
            GenericTask::CooperationManagement,
            GenericTask::AgentInteractionManagement,
            GenericTask::WorldInteractionManagement,
            GenericTask::MaintenanceOfWorldInformation,
            GenericTask::MaintenanceOfAgentInformation,
        ]
    }

    /// The component name used for the task.
    pub fn component_name(self) -> &'static str {
        match self {
            GenericTask::OwnProcessControl => "own_process_control",
            GenericTask::AgentSpecificTask => "agent_specific_task",
            GenericTask::CooperationManagement => "cooperation_management",
            GenericTask::AgentInteractionManagement => "agent_interaction_management",
            GenericTask::WorldInteractionManagement => "world_interaction_management",
            GenericTask::MaintenanceOfWorldInformation => "maintenance_of_world_information",
            GenericTask::MaintenanceOfAgentInformation => "maintenance_of_agent_information",
        }
    }
}

/// Builder assembling a generic agent from task components.
#[derive(Debug, Default)]
pub struct GenericAgentBuilder {
    name: Name,
    tasks: Vec<(GenericTask, Component)>,
}

impl GenericAgentBuilder {
    /// Starts building an agent with the given name.
    pub fn new(name: impl Into<Name>) -> GenericAgentBuilder {
        GenericAgentBuilder {
            name: name.into(),
            tasks: Vec::new(),
        }
    }

    /// Provides the component refining one generic task. The component is
    /// renamed to the task's canonical name if it differs.
    ///
    /// # Panics
    ///
    /// Panics if the task was already provided.
    pub fn with_task(mut self, task: GenericTask, component: Component) -> GenericAgentBuilder {
        assert!(
            self.tasks.iter().all(|(t, _)| *t != task),
            "task {task:?} provided twice"
        );
        self.tasks.push((task, component));
        self
    }

    /// Builds the composed agent with the model's standard wiring.
    /// Unprovided tasks become empty reasoning components.
    pub fn build(self) -> Component {
        // Seven canonical slots, placeholders first...
        let mut children: Vec<Component> = GenericTask::all()
            .into_iter()
            .map(|task| placeholder(task.component_name()))
            .collect();
        // ...then the provided components take their slots.
        for (task, component) in self.tasks {
            let canonical = task.component_name();
            let slot = children
                .iter()
                .position(|c| c.name().as_str() == canonical)
                .expect("canonical slot exists");
            children[slot] = rename_if_needed(component, canonical);
        }
        Component::composed(self.name, children, standard_links(), TaskControl::new())
    }
}

fn placeholder(name: &str) -> Component {
    Component::primitive(name, KnowledgeBase::new(name))
}

fn rename_if_needed(component: Component, canonical: &str) -> Component {
    if component.name().as_str() == canonical {
        component
    } else {
        // Components carry their name immutably; wrap in a composition
        // with the canonical name and an identity pass-through.
        let inner = component.name().clone();
        Component::composed(
            canonical,
            vec![component],
            vec![
                InfoLink::identity(
                    "in",
                    Endpoint::ParentInput,
                    Endpoint::ChildInput(inner.clone()),
                ),
                InfoLink::identity("out", Endpoint::ChildOutput(inner), Endpoint::ParentOutput),
            ],
            TaskControl::new(),
        )
    }
}

fn standard_links() -> Vec<InfoLink> {
    let child_in = |n: &str| Endpoint::ChildInput(Name::from(n));
    let child_out = |n: &str| Endpoint::ChildOutput(Name::from(n));
    vec![
        InfoLink::identity(
            "communication_in",
            Endpoint::ParentInput,
            child_in("agent_interaction_management"),
        ),
        InfoLink::identity(
            "observation_in",
            Endpoint::ParentInput,
            child_in("world_interaction_management"),
        ),
        InfoLink::identity(
            "received_info",
            child_out("agent_interaction_management"),
            child_in("cooperation_management"),
        ),
        InfoLink::identity(
            "observed_behaviour",
            child_out("agent_interaction_management"),
            child_in("maintenance_of_agent_information"),
        ),
        InfoLink::identity(
            "observed_world",
            child_out("world_interaction_management"),
            child_in("maintenance_of_world_information"),
        ),
        InfoLink::identity(
            "world_model",
            child_out("maintenance_of_world_information"),
            child_in("agent_specific_task"),
        ),
        InfoLink::identity(
            "agent_models",
            child_out("maintenance_of_agent_information"),
            child_in("cooperation_management"),
        ),
        InfoLink::identity(
            "assessments",
            child_out("agent_specific_task"),
            child_in("own_process_control"),
        ),
        InfoLink::identity(
            "strategy",
            child_out("own_process_control"),
            child_in("cooperation_management"),
        ),
        InfoLink::identity(
            "outgoing_proposals",
            child_out("cooperation_management"),
            child_in("agent_interaction_management"),
        ),
        InfoLink::identity(
            "communication_out",
            child_out("agent_interaction_management"),
            Endpoint::ParentOutput,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_design, Severity};
    use crate::engine::TruthValue;
    use crate::system::System;
    use crate::term::Atom;

    fn reasoning(name: &str, rules: &[&str]) -> Component {
        Component::primitive(name, KnowledgeBase::new(name).with_rules(rules))
    }

    #[test]
    fn empty_agent_builds_with_all_seven_tasks() {
        let agent = GenericAgentBuilder::new("ua").build();
        assert_eq!(agent.children().len(), 7);
        for task in GenericTask::all() {
            assert!(
                agent.child(task.component_name()).is_some(),
                "missing {task:?}"
            );
        }
    }

    #[test]
    fn no_design_errors_in_generic_wiring() {
        let agent = GenericAgentBuilder::new("ua").build();
        let errors: Vec<_> = check_design(&agent)
            .into_iter()
            .filter(|i| i.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn communication_flows_through_the_standard_wiring() {
        // Interaction management annotates incoming messages; cooperation
        // turns them into proposals; interaction sends them out.
        let interaction = reasoning(
            "agent_interaction_management",
            &[
                "announce_received => received(announcement)",
                "send(Proposal) => out(Proposal)",
            ],
        );
        let cooperation = reasoning(
            "cooperation_management",
            &["received(announcement) => send(bid)"],
        );
        let agent = GenericAgentBuilder::new("ca")
            .with_task(GenericTask::AgentInteractionManagement, interaction)
            .with_task(GenericTask::CooperationManagement, cooperation)
            .build();
        let mut system = System::new(agent);
        system
            .root_mut()
            .input_mut()
            .assert(Atom::prop("announce_received"), TruthValue::True);
        system.run().unwrap();
        assert!(
            system
                .root()
                .output()
                .holds(&Atom::parse("out(bid)").unwrap()),
            "bid must flow: interaction → cooperation → interaction → output"
        );
    }

    #[test]
    fn world_observations_reach_the_agent_specific_task() {
        let world = reasoning(
            "world_interaction_management",
            &["temperature_drops => observed(cold)"],
        );
        let maintenance = reasoning(
            "maintenance_of_world_information",
            &["observed(cold) => world(cold)"],
        );
        let specific = reasoning("agent_specific_task", &["world(cold) => predict(peak)"]);
        let agent = GenericAgentBuilder::new("ua")
            .with_task(GenericTask::WorldInteractionManagement, world)
            .with_task(GenericTask::MaintenanceOfWorldInformation, maintenance)
            .with_task(GenericTask::AgentSpecificTask, specific)
            .build();
        let mut system = System::new(agent);
        system
            .root_mut()
            .input_mut()
            .assert(Atom::prop("temperature_drops"), TruthValue::True);
        system.run().unwrap();
        let specific = system.root().child("agent_specific_task").unwrap();
        assert!(specific
            .output()
            .holds(&Atom::parse("predict(peak)").unwrap()));
    }

    #[test]
    fn differently_named_components_are_wrapped() {
        let custom = reasoning("my_cooperation", &["received(X) => send(X)"]);
        let agent = GenericAgentBuilder::new("a")
            .with_task(GenericTask::CooperationManagement, custom)
            .build();
        let coop = agent
            .child("cooperation_management")
            .expect("canonical name");
        assert!(coop.child("my_cooperation").is_some(), "wrapped inside");
    }

    #[test]
    #[should_panic(expected = "provided twice")]
    fn duplicate_task_panics() {
        let _ = GenericAgentBuilder::new("a")
            .with_task(
                GenericTask::OwnProcessControl,
                placeholder("own_process_control"),
            )
            .with_task(
                GenericTask::OwnProcessControl,
                placeholder("own_process_control"),
            );
    }

    #[test]
    fn task_names_are_the_papers() {
        assert_eq!(
            GenericTask::MaintenanceOfAgentInformation.component_name(),
            "maintenance_of_agent_information"
        );
        assert_eq!(GenericTask::all().len(), 7);
    }
}
