//! Static design checking — the design-time half of DESIRE's
//! verification story.
//!
//! Before a composed system runs, [`check_design`] walks the component
//! tree and reports modelling problems: ill-formed names, duplicate link
//! names, children unreachable by any link, rules whose consequents
//! contain variables no positive antecedent can bind (guaranteed
//! [`crate::engine::EngineError::NonGroundConsequent`] at run time), and
//! rules that can never fire because nothing in the component's
//! composition produces their antecedent predicates.

use crate::component::{Body, Component};
use crate::ident::{ComponentPath, Name};
use crate::kb::KnowledgeBase;
use crate::link::Endpoint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Severity of a design issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but runnable.
    Warning,
    /// Will fail (or silently do nothing) at run time.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the design checker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignIssue {
    /// How bad it is.
    pub severity: Severity,
    /// Where it was found.
    pub path: ComponentPath,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for DesignIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.severity, self.path, self.message)
    }
}

/// Checks a component design, returning all issues found (empty = clean).
pub fn check_design(component: &Component) -> Vec<DesignIssue> {
    let mut issues = Vec::new();
    walk(component, &ComponentPath::root(), &mut issues);
    issues.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.path.cmp(&b.path))
    });
    issues
}

fn walk(component: &Component, parent: &ComponentPath, issues: &mut Vec<DesignIssue>) {
    let path = parent.child(component.name().clone());
    if !component.name().is_well_formed() {
        issues.push(DesignIssue {
            severity: Severity::Warning,
            path: path.clone(),
            message: format!(
                "component name '{}' is not a well-formed identifier",
                component.name()
            ),
        });
    }
    match component.body() {
        Body::Reasoning(kb) => check_kb(kb, &path, issues),
        Body::Calculation(_) => {}
        Body::Composed(composition) => {
            // Duplicate link names.
            let mut seen = BTreeSet::new();
            for link in &composition.links {
                if !seen.insert(link.name().clone()) {
                    issues.push(DesignIssue {
                        severity: Severity::Warning,
                        path: path.clone(),
                        message: format!("duplicate link name '{}'", link.name()),
                    });
                }
            }
            // Children never touched by any link (isolated processes) —
            // only meaningful when the composition uses links at all.
            if !composition.links.is_empty() {
                let mut linked: BTreeSet<&Name> = BTreeSet::new();
                for link in &composition.links {
                    for endpoint in [link.from(), link.to()] {
                        if let Endpoint::ChildInput(n) | Endpoint::ChildOutput(n) = endpoint {
                            linked.insert(n);
                        }
                    }
                }
                for child in &composition.children {
                    if !linked.contains(child.name()) {
                        issues.push(DesignIssue {
                            severity: Severity::Warning,
                            path: path.clone(),
                            message: format!(
                                "child '{}' is not connected by any information link",
                                child.name()
                            ),
                        });
                    }
                }
            }
            for child in &composition.children {
                walk(child, &path, issues);
            }
        }
    }
}

fn check_kb(kb: &KnowledgeBase, path: &ComponentPath, issues: &mut Vec<DesignIssue>) {
    // Predicates produced inside this KB (rule heads).
    let mut produced: BTreeSet<Name> = BTreeSet::new();
    for rule in kb.rules() {
        for lit in &rule.consequents {
            produced.insert(lit.atom.predicate.clone());
        }
    }
    for (i, rule) in kb.rules().iter().enumerate() {
        let unbound = rule.unbound_head_variables();
        if !unbound.is_empty() {
            let vars: Vec<String> = unbound.iter().map(Name::to_string).collect();
            issues.push(DesignIssue {
                severity: Severity::Error,
                path: path.clone(),
                message: format!(
                    "rule {} ('{}') has head variables {} no positive antecedent binds",
                    i + 1,
                    rule,
                    vars.join(", ")
                ),
            });
        }
        // A rule whose antecedents are only ever satisfiable if some other
        // rule in the same KB produces them, or input provides them; we
        // can only check intra-KB circularity conservatively: warn when a
        // rule consumes a predicate that the same KB also produces *only*
        // via itself (direct self-dependency).
        for lit in &rule.antecedents {
            if rule
                .consequents
                .iter()
                .any(|c| c.atom.predicate == lit.atom.predicate)
                && !kb.rules().iter().enumerate().any(|(j, other)| {
                    j != i
                        && other
                            .consequents
                            .iter()
                            .any(|c| c.atom.predicate == lit.atom.predicate)
                })
            {
                issues.push(DesignIssue {
                    severity: Severity::Warning,
                    path: path.clone(),
                    message: format!(
                        "rule {} ('{}') both consumes and produces '{}' with no other producer — \
                         it can only re-derive its own conclusions",
                        i + 1,
                        rule,
                        lit.atom.predicate
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KnowledgeBase;
    use crate::link::InfoLink;
    use crate::task_control::TaskControl;

    fn reasoning(name: &str, rules: &[&str]) -> Component {
        Component::primitive(name, KnowledgeBase::new(name).with_rules(rules))
    }

    #[test]
    fn clean_design_has_no_issues() {
        let a = reasoning("a", &["x => y"]);
        let b = reasoning("b", &["y => z"]);
        let links = vec![
            InfoLink::identity(
                "in",
                Endpoint::ParentInput,
                Endpoint::ChildInput("a".into()),
            ),
            InfoLink::identity(
                "mid",
                Endpoint::ChildOutput("a".into()),
                Endpoint::ChildInput("b".into()),
            ),
            InfoLink::identity(
                "out",
                Endpoint::ChildOutput("b".into()),
                Endpoint::ParentOutput,
            ),
        ];
        let root = Component::composed("sys", vec![a, b], links, TaskControl::new());
        assert!(check_design(&root).is_empty());
    }

    #[test]
    fn unbound_head_variable_is_an_error() {
        let bad = reasoning("bad", &["p(X) => q(X, Y)"]);
        let issues = check_design(&bad);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Error);
        assert!(issues[0].message.contains('Y'));
    }

    #[test]
    fn unlinked_child_is_a_warning() {
        let a = reasoning("a", &["x => y"]);
        let orphan = reasoning("orphan", &["p => q"]);
        let links = vec![InfoLink::identity(
            "in",
            Endpoint::ParentInput,
            Endpoint::ChildInput("a".into()),
        )];
        let root = Component::composed("sys", vec![a, orphan], links, TaskControl::new());
        let issues = check_design(&root);
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Warning && i.message.contains("orphan")));
    }

    #[test]
    fn linkless_composition_is_not_flagged() {
        // Pure structural trees (the Figures 2–5 renderings) carry no
        // links and should not produce isolation warnings.
        let root = Component::composed(
            "tree",
            vec![reasoning("a", &[]), reasoning("b", &[])],
            vec![],
            TaskControl::new(),
        );
        assert!(check_design(&root).is_empty());
    }

    #[test]
    fn duplicate_link_names_warned() {
        let a = reasoning("a", &[]);
        let b = reasoning("b", &[]);
        let links = vec![
            InfoLink::identity("l", Endpoint::ParentInput, Endpoint::ChildInput("a".into())),
            InfoLink::identity("l", Endpoint::ParentInput, Endpoint::ChildInput("b".into())),
        ];
        let root = Component::composed("sys", vec![a, b], links, TaskControl::new());
        let issues = check_design(&root);
        assert!(issues.iter().any(|i| i.message.contains("duplicate link")));
    }

    #[test]
    fn self_feeding_rule_warned() {
        let kb = reasoning("loop", &["p(X) and q(X) => p(X)"]);
        let issues = check_design(&kb);
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Warning && i.message.contains("re-derive")));
    }

    #[test]
    fn self_feeding_with_other_producer_is_fine() {
        let kb = reasoning("chain", &["seed => p(0)", "p(X) and q(X) => p(X)"]);
        let issues = check_design(&kb);
        // `p` has another producer, so the second rule is legitimate
        // (though the checker still flags nothing here).
        assert!(issues.iter().all(|i| !i.message.contains("re-derive")));
    }

    #[test]
    fn issues_sorted_errors_first() {
        let bad_rule = reasoning("bad", &["p(X) => q(Y)"]);
        let orphan = reasoning("orphan", &[]);
        let linked = reasoning("ok", &[]);
        let links = vec![InfoLink::identity(
            "in",
            Endpoint::ParentInput,
            Endpoint::ChildInput("ok".into()),
        )];
        let root = Component::composed(
            "sys",
            vec![bad_rule, orphan, linked],
            links,
            TaskControl::new(),
        );
        let issues = check_design(&root);
        assert!(issues.len() >= 2);
        assert_eq!(issues[0].severity, Severity::Error);
        assert!(issues[0].to_string().contains("error"));
    }

    #[test]
    fn paper_trees_are_clean() {
        // Quick self-application: a nested structural tree checks clean.
        let inner = Component::composed(
            "determine_general_negotiation_strategy",
            vec![reasoning("determine_announcement_method", &[])],
            vec![],
            TaskControl::new(),
        );
        let root = Component::composed(
            "own_process_control",
            vec![inner],
            vec![],
            TaskControl::new(),
        );
        assert!(check_design(&root).is_empty());
    }
}
