//! Components: the units of DESIRE's process composition.
//!
//! "The identified processes are modelled as components. For each process
//! the input and output information types are modelled. ... components may
//! be composed of other components or they may be primitive. Primitive
//! components may be either reasoning components (i.e., based on a
//! knowledge base), or, components capable of performing tasks such as
//! calculation, information retrieval, optimisation" (Section 4.1.1).

use crate::engine::{Engine, FactBase, TruthValue};
use crate::ident::Name;
use crate::info::InfoType;
use crate::kb::KnowledgeBase;
use crate::link::InfoLink;
use crate::task_control::TaskControl;
use crate::term::Atom;
use std::fmt;

/// Which interface of a component an endpoint refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterfaceKind {
    /// The input interface.
    Input,
    /// The output interface.
    Output,
}

impl fmt::Display for InterfaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterfaceKind::Input => "input",
            InterfaceKind::Output => "output",
        })
    }
}

/// An interface: a fact base plus an optional information type that facts
/// are checked against.
#[derive(Debug, Default)]
pub struct Interface {
    facts: FactBase,
    info_type: Option<InfoType>,
}

impl Interface {
    /// Creates an untyped interface.
    pub fn new() -> Interface {
        Interface::default()
    }

    /// Creates an interface whose facts must conform to `info_type`.
    pub fn typed(info_type: InfoType) -> Interface {
        Interface {
            facts: FactBase::new(),
            info_type: Some(info_type),
        }
    }

    /// Asserts a fact.
    ///
    /// # Panics
    ///
    /// Panics if the atom is not ground, or if the interface is typed and
    /// the atom fails signature checking — a modelling error, caught loud.
    pub fn assert(&mut self, atom: Atom, value: TruthValue) {
        if let Some(info) = &self.info_type {
            if let Err(e) = info.check_atom(&atom) {
                panic!("ill-typed fact {atom} on interface: {e}");
            }
        }
        self.facts.assert(atom, value);
    }

    /// The truth value of an atom.
    pub fn truth(&self, atom: &Atom) -> TruthValue {
        self.facts.truth(atom)
    }

    /// True if the atom is known true.
    pub fn holds(&self, atom: &Atom) -> bool {
        self.facts.holds(atom)
    }

    /// Read access to the underlying fact base.
    pub fn facts(&self) -> &FactBase {
        &self.facts
    }

    /// Mutable access to the underlying fact base (bypasses typing —
    /// intended for the kernel and links, which transfer already-checked
    /// facts).
    pub(crate) fn facts_mut(&mut self) -> &mut FactBase {
        &mut self.facts
    }

    /// Clears all facts.
    pub fn clear(&mut self) {
        self.facts.clear();
    }

    /// The declared information type, if any.
    pub fn info_type(&self) -> Option<&InfoType> {
        self.info_type.as_ref()
    }
}

/// A calculation body: a non-reasoning primitive component (numeric
/// prediction, optimisation, table construction...).
pub trait Calculation: fmt::Debug {
    /// Computes output facts from the input fact base.
    fn compute(&mut self, input: &FactBase) -> Vec<(Atom, TruthValue)>;
}

/// Wraps a closure as a [`Calculation`].
pub struct FnCalculation<F> {
    name: &'static str,
    f: F,
}

impl<F> FnCalculation<F>
where
    F: FnMut(&FactBase) -> Vec<(Atom, TruthValue)>,
{
    /// Creates a calculation from a closure; `name` appears in `Debug`.
    pub fn new(name: &'static str, f: F) -> FnCalculation<F> {
        FnCalculation { name, f }
    }
}

impl<F> fmt::Debug for FnCalculation<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnCalculation({})", self.name)
    }
}

impl<F> Calculation for FnCalculation<F>
where
    F: FnMut(&FactBase) -> Vec<(Atom, TruthValue)>,
{
    fn compute(&mut self, input: &FactBase) -> Vec<(Atom, TruthValue)> {
        (self.f)(input)
    }
}

/// The body of a component.
#[derive(Debug)]
pub enum Body {
    /// A reasoning primitive: forward chaining over a knowledge base.
    Reasoning(KnowledgeBase),
    /// A calculation primitive.
    Calculation(Box<dyn Calculation>),
    /// A composed component.
    Composed(Composition),
}

/// The internals of a composed component: sub-components, information
/// links and task-control knowledge (Section 4.1.2).
#[derive(Debug, Default)]
pub struct Composition {
    /// Sub-components in declaration order.
    pub children: Vec<Component>,
    /// Information links between interfaces.
    pub links: Vec<InfoLink>,
    /// Task-control knowledge.
    pub task_control: TaskControl,
}

/// A process component with input and output interfaces.
///
/// # Example
///
/// ```
/// use desire::prelude::*;
///
/// let kb = KnowledgeBase::new("k")
///     .with_rule(Rule::parse("peak_expected => announce").unwrap());
/// let mut c = Component::primitive("determine_announcement", kb);
/// c.input_mut().assert(Atom::prop("peak_expected"), TruthValue::True);
/// c.activate(&Engine::new(), &mut Trace::new()).unwrap();
/// assert!(c.output().holds(&Atom::prop("announce")));
/// ```
#[derive(Debug)]
pub struct Component {
    name: Name,
    input: Interface,
    output: Interface,
    body: Body,
}

impl Component {
    /// Creates a reasoning primitive from a knowledge base.
    pub fn primitive(name: impl Into<Name>, kb: KnowledgeBase) -> Component {
        Component {
            name: name.into(),
            input: Interface::new(),
            output: Interface::new(),
            body: Body::Reasoning(kb),
        }
    }

    /// Creates a calculation primitive.
    pub fn calculation(name: impl Into<Name>, calc: impl Calculation + 'static) -> Component {
        Component {
            name: name.into(),
            input: Interface::new(),
            output: Interface::new(),
            body: Body::Calculation(Box::new(calc)),
        }
    }

    /// Creates a composed component.
    ///
    /// # Panics
    ///
    /// Panics if child names are not unique, or if a link refers to an
    /// unknown child (modelling errors).
    pub fn composed(
        name: impl Into<Name>,
        children: Vec<Component>,
        links: Vec<InfoLink>,
        task_control: TaskControl,
    ) -> Component {
        let name = name.into();
        for (i, a) in children.iter().enumerate() {
            for b in &children[i + 1..] {
                assert!(
                    a.name != b.name,
                    "duplicate child '{}' in composed component '{name}'",
                    a.name
                );
            }
        }
        let child_names: Vec<&Name> = children.iter().map(|c| &c.name).collect();
        for link in &links {
            for endpoint_child in link.referenced_children() {
                assert!(
                    child_names.contains(&endpoint_child),
                    "link '{}' refers to unknown child '{endpoint_child}' of '{name}'",
                    link.name()
                );
            }
        }
        Component {
            name,
            input: Interface::new(),
            output: Interface::new(),
            body: Body::Composed(Composition {
                children,
                links,
                task_control,
            }),
        }
    }

    /// The component's name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Replaces the input interface with a typed one.
    pub fn with_typed_input(mut self, info: InfoType) -> Component {
        self.input = Interface::typed(info);
        self
    }

    /// Replaces the output interface with a typed one.
    pub fn with_typed_output(mut self, info: InfoType) -> Component {
        self.output = Interface::typed(info);
        self
    }

    /// The input interface.
    pub fn input(&self) -> &Interface {
        &self.input
    }

    /// Mutable input interface.
    pub fn input_mut(&mut self) -> &mut Interface {
        &mut self.input
    }

    /// The output interface.
    pub fn output(&self) -> &Interface {
        &self.output
    }

    /// Mutable output interface.
    pub fn output_mut(&mut self) -> &mut Interface {
        &mut self.output
    }

    /// The component's body.
    pub fn body(&self) -> &Body {
        &self.body
    }

    /// True if this is a primitive (reasoning or calculation) component.
    pub fn is_primitive(&self) -> bool {
        !matches!(self.body, Body::Composed(_))
    }

    /// Child component by name (for composed components).
    pub fn child(&self, name: &str) -> Option<&Component> {
        match &self.body {
            Body::Composed(c) => c.children.iter().find(|ch| ch.name.as_str() == name),
            _ => None,
        }
    }

    /// Mutable child component by name.
    pub fn child_mut(&mut self, name: &str) -> Option<&mut Component> {
        match &mut self.body {
            Body::Composed(c) => c.children.iter_mut().find(|ch| ch.name.as_str() == name),
            _ => None,
        }
    }

    /// The children of a composed component (empty for primitives).
    pub fn children(&self) -> &[Component] {
        match &self.body {
            Body::Composed(c) => &c.children,
            _ => &[],
        }
    }

    /// Activates the component once:
    ///
    /// * reasoning primitive — runs the engine over input ∪ output and
    ///   writes the resulting closure to the output interface;
    /// * calculation primitive — calls [`Calculation::compute`] on the
    ///   input and asserts the results on the output;
    /// * composed — runs the kernel's macro-round loop (links, children,
    ///   links) to quiescence.
    ///
    /// Returns the number of facts newly derived.
    ///
    /// # Errors
    ///
    /// Returns [`crate::system::SystemError`] on engine failure inside a
    /// reasoning body or non-quiescence of a composition.
    pub fn activate(
        &mut self,
        engine: &Engine,
        trace: &mut crate::trace::Trace,
    ) -> Result<usize, crate::system::SystemError> {
        crate::system::activate_at(self, engine, trace, &crate::ident::ComponentPath::root())
    }

    /// Crate-internal simultaneous borrow of interfaces and body, needed
    /// by the kernel.
    pub(crate) fn split_fields(&mut self) -> (&mut Interface, &mut Interface, &mut Body) {
        (&mut self.input, &mut self.output, &mut self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::Rule;
    use crate::term::Term;
    use crate::trace::Trace;

    #[test]
    fn reasoning_primitive_derives_to_output() {
        let kb = KnowledgeBase::new("k").with_rules(&["a => b"]);
        let mut c = Component::primitive("p", kb);
        c.input_mut().assert(Atom::prop("a"), TruthValue::True);
        let derived = c.activate(&Engine::new(), &mut Trace::new()).unwrap();
        assert_eq!(derived, 1);
        assert!(c.output().holds(&Atom::prop("b")));
        // Inputs are visible on the output closure as well.
        assert!(c.output().holds(&Atom::prop("a")));
    }

    #[test]
    fn calculation_primitive_computes() {
        let calc = FnCalculation::new("double", |input: &FactBase| {
            let mut out = Vec::new();
            for (atom, v) in input.iter() {
                if atom.predicate.as_str() == "value" && v == TruthValue::True {
                    if let Some(x) = atom.args[0].as_number() {
                        out.push((
                            Atom::new("doubled", vec![Term::number(2.0 * x)]),
                            TruthValue::True,
                        ));
                    }
                }
            }
            out
        });
        let mut c = Component::calculation("doubler", calc);
        c.input_mut()
            .assert(Atom::parse("value(21)").unwrap(), TruthValue::True);
        c.activate(&Engine::new(), &mut Trace::new()).unwrap();
        assert!(c.output().holds(&Atom::parse("doubled(42)").unwrap()));
    }

    #[test]
    fn typed_interface_rejects_bad_facts() {
        let info = InfoType::new("i").with_predicate("p", &[]);
        let mut iface = Interface::typed(info);
        iface.assert(Atom::prop("p"), TruthValue::True);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            iface.assert(Atom::prop("q"), TruthValue::True);
        }))
        .is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate child")]
    fn duplicate_children_panic() {
        let a = Component::primitive("x", KnowledgeBase::new("k"));
        let b = Component::primitive("x", KnowledgeBase::new("k"));
        let _ = Component::composed("parent", vec![a, b], vec![], TaskControl::default());
    }

    #[test]
    fn child_lookup() {
        let a = Component::primitive("a", KnowledgeBase::new("k"));
        let parent = Component::composed("p", vec![a], vec![], TaskControl::default());
        assert!(parent.child("a").is_some());
        assert!(parent.child("zz").is_none());
        assert!(!parent.is_primitive());
        assert_eq!(parent.children().len(), 1);
    }

    #[test]
    fn reactivation_is_idempotent() {
        let kb = KnowledgeBase::new("k").with_rule(Rule::parse("a => b").unwrap());
        let mut c = Component::primitive("p", kb);
        c.input_mut().assert(Atom::prop("a"), TruthValue::True);
        let engine = Engine::new();
        let mut trace = Trace::new();
        let first = c.activate(&engine, &mut trace).unwrap();
        let second = c.activate(&engine, &mut trace).unwrap();
        assert_eq!(first, 1);
        assert_eq!(second, 0, "second activation derives nothing new");
    }
}
