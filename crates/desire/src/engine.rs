//! Three-valued forward-chaining inference engine.
//!
//! DESIRE's primitive reasoning components draw conclusions from their
//! input interface using a knowledge base. Facts are three-valued —
//! `true`, `false` or `unknown` — reflecting DESIRE's epistemic states
//! (an agent may not know yet whether a customer accepts a cut-down).
//!
//! Negative antecedents (`not p`) hold only when `p` is **known false**,
//! not merely unknown; this is the cautious semantics a negotiation agent
//! needs (absence of a bid is not a rejection).

use crate::ident::Name;
use crate::kb::{KnowledgeBase, Literal, Rule};
use crate::term::{unify_atoms, Atom, Substitution, Term};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Epistemic truth value of a fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TruthValue {
    /// Known to hold.
    True,
    /// Known not to hold.
    False,
    /// Not (yet) known either way.
    #[default]
    Unknown,
}

impl TruthValue {
    /// The truth value asserted by a literal's polarity.
    pub fn of_polarity(positive: bool) -> TruthValue {
        if positive {
            TruthValue::True
        } else {
            TruthValue::False
        }
    }
}

impl fmt::Display for TruthValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TruthValue::True => "true",
            TruthValue::False => "false",
            TruthValue::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// A set of ground facts with truth values, indexed by predicate.
///
/// Iteration order is deterministic (BTreeMaps throughout), which makes
/// whole-system runs reproducible.
///
/// # Example
///
/// ```
/// use desire::engine::{FactBase, TruthValue};
/// use desire::term::Atom;
///
/// let mut facts = FactBase::new();
/// facts.assert(Atom::parse("bid(c1, 0.4)").unwrap(), TruthValue::True);
/// assert_eq!(facts.truth(&Atom::parse("bid(c1, 0.4)").unwrap()), TruthValue::True);
/// assert_eq!(facts.truth(&Atom::parse("bid(c2, 0.4)").unwrap()), TruthValue::Unknown);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FactBase {
    by_predicate: BTreeMap<Name, BTreeMap<Atom, TruthValue>>,
}

impl FactBase {
    /// Creates an empty fact base.
    pub fn new() -> FactBase {
        FactBase::default()
    }

    /// Asserts a ground fact, overwriting any previous value. Returns the
    /// previous truth value.
    ///
    /// # Panics
    ///
    /// Panics if the atom is not ground — interfaces carry information,
    /// not queries.
    pub fn assert(&mut self, atom: Atom, value: TruthValue) -> TruthValue {
        assert!(atom.is_ground(), "cannot assert non-ground atom {atom}");
        self.by_predicate
            .entry(atom.predicate.clone())
            .or_default()
            .insert(atom, value)
            .unwrap_or(TruthValue::Unknown)
    }

    /// The truth value of an atom ([`TruthValue::Unknown`] if absent).
    pub fn truth(&self, atom: &Atom) -> TruthValue {
        self.by_predicate
            .get(&atom.predicate)
            .and_then(|m| m.get(atom).copied())
            .unwrap_or(TruthValue::Unknown)
    }

    /// True if the atom is known true.
    pub fn holds(&self, atom: &Atom) -> bool {
        self.truth(atom) == TruthValue::True
    }

    /// Removes all facts.
    pub fn clear(&mut self) {
        self.by_predicate.clear();
    }

    /// Number of stored facts (including known-false ones).
    pub fn len(&self) -> usize {
        self.by_predicate.values().map(BTreeMap::len).sum()
    }

    /// True if no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all facts in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Atom, TruthValue)> {
        self.by_predicate
            .values()
            .flat_map(|m| m.iter().map(|(a, &v)| (a, v)))
    }

    /// Iterates over facts with the given predicate.
    pub fn with_predicate<'a>(
        &'a self,
        predicate: &Name,
    ) -> impl Iterator<Item = (&'a Atom, TruthValue)> + 'a {
        self.by_predicate
            .get(predicate)
            .into_iter()
            .flat_map(|m| m.iter().map(|(a, &v)| (a, v)))
    }

    /// All substitutions under which `pattern` matches a stored fact with
    /// truth value `wanted`, extending `base`.
    pub fn matches(
        &self,
        pattern: &Atom,
        wanted: TruthValue,
        base: &Substitution,
    ) -> Vec<Substitution> {
        self.with_predicate(&pattern.predicate)
            .filter(|&(_, v)| v == wanted)
            .filter_map(|(fact, _)| unify_atoms(pattern, fact, base))
            .collect()
    }

    /// Copies every fact of `other` into `self` (later wins).
    pub fn absorb(&mut self, other: &FactBase) {
        for (atom, value) in other.iter() {
            self.assert(atom.clone(), value);
        }
    }
}

impl FromIterator<(Atom, TruthValue)> for FactBase {
    fn from_iter<I: IntoIterator<Item = (Atom, TruthValue)>>(iter: I) -> FactBase {
        let mut fb = FactBase::new();
        for (a, v) in iter {
            fb.assert(a, v);
        }
        fb
    }
}

/// Error produced during inference.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A rule fired with a non-ground consequent (unbound variable).
    NonGroundConsequent {
        /// The offending rule, rendered.
        rule: String,
        /// The offending consequent after substitution.
        consequent: String,
    },
    /// A derived fact contradicts an already known fact.
    Contradiction {
        /// The atom concerned.
        atom: String,
        /// The previously known value.
        known: TruthValue,
        /// The newly derived value.
        derived: TruthValue,
    },
    /// The fixpoint iteration limit was exceeded (runaway rule set).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NonGroundConsequent { rule, consequent } => {
                write!(
                    f,
                    "rule '{rule}' derived non-ground consequent '{consequent}'"
                )
            }
            EngineError::Contradiction {
                atom,
                known,
                derived,
            } => {
                write!(
                    f,
                    "contradiction on '{atom}': known {known}, derived {derived}"
                )
            }
            EngineError::IterationLimit { limit } => {
                write!(
                    f,
                    "inference did not reach a fixpoint within {limit} rounds"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Built-in comparison predicates, evaluated over ground numeric terms.
const BUILTINS: [&str; 6] = ["gt", "gte", "lt", "lte", "eq_num", "neq_num"];

fn is_builtin(name: &Name) -> bool {
    BUILTINS.contains(&name.as_str())
}

fn eval_builtin(atom: &Atom) -> Option<bool> {
    if atom.args.len() != 2 {
        return None;
    }
    let a = atom.args[0].as_number()?;
    let b = atom.args[1].as_number()?;
    let result = match atom.predicate.as_str() {
        "gt" => a > b,
        "gte" => a >= b,
        "lt" => a < b,
        "lte" => a <= b,
        "eq_num" => (a - b).abs() < 1e-9,
        "neq_num" => (a - b).abs() >= 1e-9,
        _ => return None,
    };
    Some(result)
}

/// Forward-chaining engine with a fixpoint iteration limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    max_rounds: usize,
}

/// Statistics of one inference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InferenceStats {
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Facts newly derived (not counting re-derivations).
    pub derived: usize,
}

impl Engine {
    /// Creates an engine with the default round limit (1000).
    pub fn new() -> Engine {
        Engine { max_rounds: 1000 }
    }

    /// Sets the fixpoint round limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    pub fn with_max_rounds(max_rounds: usize) -> Engine {
        assert!(max_rounds > 0, "round limit must be positive");
        Engine { max_rounds }
    }

    /// Runs `kb` to fixpoint over `facts`, asserting derived consequents
    /// in place.
    ///
    /// # Errors
    ///
    /// * [`EngineError::NonGroundConsequent`] if a consequent has unbound
    ///   variables when its rule fires;
    /// * [`EngineError::Contradiction`] if a derivation flips a known
    ///   truth value;
    /// * [`EngineError::IterationLimit`] if no fixpoint is reached.
    pub fn infer(
        &self,
        kb: &KnowledgeBase,
        facts: &mut FactBase,
    ) -> Result<InferenceStats, EngineError> {
        let mut stats = InferenceStats::default();
        for round in 0..=self.max_rounds {
            if round == self.max_rounds {
                return Err(EngineError::IterationLimit {
                    limit: self.max_rounds,
                });
            }
            let mut changed = false;
            for rule in kb.rules() {
                for subst in self.satisfy(&rule.antecedents, facts) {
                    for consequent in &rule.consequents {
                        let grounded = consequent.apply(&subst);
                        if !grounded.atom.is_ground() {
                            return Err(EngineError::NonGroundConsequent {
                                rule: rule.to_string(),
                                consequent: grounded.atom.to_string(),
                            });
                        }
                        let derived = TruthValue::of_polarity(grounded.positive);
                        match facts.truth(&grounded.atom) {
                            TruthValue::Unknown => {
                                facts.assert(grounded.atom, derived);
                                stats.derived += 1;
                                changed = true;
                            }
                            known if known == derived => {}
                            known => {
                                return Err(EngineError::Contradiction {
                                    atom: grounded.atom.to_string(),
                                    known,
                                    derived,
                                });
                            }
                        }
                    }
                }
            }
            stats.rounds = round + 1;
            if !changed {
                break;
            }
        }
        Ok(stats)
    }

    /// Enumerates substitutions satisfying all antecedents, in
    /// deterministic order.
    fn satisfy(&self, antecedents: &[Literal], facts: &FactBase) -> Vec<Substitution> {
        let mut candidates = vec![Substitution::new()];
        for literal in antecedents {
            let mut next = Vec::new();
            for subst in &candidates {
                let pattern = literal.atom.apply(subst);
                if is_builtin(&pattern.predicate) {
                    // Builtins filter bindings; they hold positively when
                    // the comparison is true, negatively when false.
                    if let Some(result) = eval_builtin(&pattern) {
                        if result == literal.positive {
                            next.push(subst.clone());
                        }
                    }
                    continue;
                }
                let wanted = TruthValue::of_polarity(literal.positive);
                if pattern.is_ground() {
                    if facts.truth(&pattern) == wanted {
                        next.push(subst.clone());
                    }
                } else {
                    next.extend(facts.matches(&pattern, wanted, subst));
                }
            }
            candidates = next;
            if candidates.is_empty() {
                break;
            }
        }
        candidates
    }

    /// Convenience: evaluates whether a single rule would fire on `facts`
    /// (without asserting anything). Returns the satisfying substitutions.
    pub fn query(&self, rule: &Rule, facts: &FactBase) -> Vec<Substitution> {
        self.satisfy(&rule.antecedents, facts)
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Convenience constructor for ground numeric facts such as
/// `predicted_overuse(35)`.
pub fn num_fact(predicate: &str, value: f64) -> Atom {
    Atom::new(predicate, vec![Term::number(value)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infer(rules: &[&str], facts: &[(&str, TruthValue)]) -> FactBase {
        let kb = KnowledgeBase::new("test").with_rules(rules);
        let mut fb = FactBase::new();
        for (text, v) in facts {
            fb.assert(Atom::parse(text).unwrap(), *v);
        }
        Engine::new()
            .infer(&kb, &mut fb)
            .expect("inference should succeed");
        fb
    }

    #[test]
    fn propositional_chaining() {
        let fb = infer(&["a => b", "b => c"], &[("a", TruthValue::True)]);
        assert!(fb.holds(&Atom::prop("c")));
    }

    #[test]
    fn unknown_is_not_false() {
        // `not q` must NOT fire when q is merely unknown.
        let fb = infer(&["a and not q => r"], &[("a", TruthValue::True)]);
        assert_eq!(fb.truth(&Atom::prop("r")), TruthValue::Unknown);
        // ...but fires when q is known false.
        let fb2 = infer(
            &["a and not q => r"],
            &[("a", TruthValue::True), ("q", TruthValue::False)],
        );
        assert!(fb2.holds(&Atom::prop("r")));
    }

    #[test]
    fn variable_join() {
        let fb = infer(
            &["offered(C, R) and required(C, M) and gte(R, M) => acceptable(C)"],
            &[
                ("offered(c1, 17)", TruthValue::True),
                ("required(c1, 21)", TruthValue::True),
                ("offered(c2, 17)", TruthValue::True),
                ("required(c2, 10)", TruthValue::True),
            ],
        );
        assert!(!fb.holds(&Atom::parse("acceptable(c1)").unwrap()));
        assert!(fb.holds(&Atom::parse("acceptable(c2)").unwrap()));
    }

    #[test]
    fn builtins_all_work() {
        let cases = [
            ("gt(2, 1)", true),
            ("gt(1, 2)", false),
            ("gte(2, 2)", true),
            ("lt(1, 2)", true),
            ("lte(3, 2)", false),
            ("eq_num(2, 2)", true),
            ("neq_num(2, 3)", true),
        ];
        for (text, expected) in cases {
            let atom = Atom::parse(text).unwrap();
            assert_eq!(eval_builtin(&atom), Some(expected), "{text}");
        }
    }

    #[test]
    fn negated_builtin() {
        let fb = infer(
            &["v(X) and not gt(X, 10) => small(X)"],
            &[("v(3)", TruthValue::True), ("v(12)", TruthValue::True)],
        );
        assert!(fb.holds(&Atom::parse("small(3)").unwrap()));
        assert!(!fb.holds(&Atom::parse("small(12)").unwrap()));
    }

    #[test]
    fn negative_consequents_assert_false() {
        let fb = infer(&["a => not b"], &[("a", TruthValue::True)]);
        assert_eq!(fb.truth(&Atom::prop("b")), TruthValue::False);
    }

    #[test]
    fn contradiction_detected() {
        let kb = KnowledgeBase::new("t").with_rules(&["a => b", "a => not b"]);
        let mut fb = FactBase::new();
        fb.assert(Atom::prop("a"), TruthValue::True);
        let err = Engine::new().infer(&kb, &mut fb).unwrap_err();
        assert!(matches!(err, EngineError::Contradiction { .. }));
    }

    #[test]
    fn non_ground_consequent_rejected() {
        let kb = KnowledgeBase::new("t").with_rules(&["a => q(X)"]);
        let mut fb = FactBase::new();
        fb.assert(Atom::prop("a"), TruthValue::True);
        let err = Engine::new().infer(&kb, &mut fb).unwrap_err();
        assert!(matches!(err, EngineError::NonGroundConsequent { .. }));
    }

    #[test]
    fn fixpoint_terminates_and_counts() {
        let kb = KnowledgeBase::new("t").with_rules(&["a => b", "b => c", "c => d"]);
        let mut fb = FactBase::new();
        fb.assert(Atom::prop("a"), TruthValue::True);
        let stats = Engine::new().infer(&kb, &mut fb).unwrap();
        assert_eq!(stats.derived, 3);
        assert!(stats.rounds >= 2);
    }

    #[test]
    fn rederivation_is_stable() {
        let kb = KnowledgeBase::new("t").with_rules(&["a => b", "b => a"]);
        let mut fb = FactBase::new();
        fb.assert(Atom::prop("a"), TruthValue::True);
        let stats = Engine::new().infer(&kb, &mut fb).unwrap();
        assert_eq!(stats.derived, 1);
    }

    #[test]
    fn factbase_matches_and_absorb() {
        let mut a = FactBase::new();
        a.assert(Atom::parse("bid(c1, 0.2)").unwrap(), TruthValue::True);
        a.assert(Atom::parse("bid(c2, 0.4)").unwrap(), TruthValue::True);
        a.assert(Atom::parse("bid(c3, 0.4)").unwrap(), TruthValue::False);
        let pattern = Atom::parse("bid(C, F)").unwrap();
        let hits = a.matches(&pattern, TruthValue::True, &Substitution::new());
        assert_eq!(hits.len(), 2);

        let mut b = FactBase::new();
        b.absorb(&a);
        assert_eq!(b.len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-ground")]
    fn asserting_pattern_panics() {
        let mut fb = FactBase::new();
        fb.assert(Atom::parse("bid(C, 0.2)").unwrap(), TruthValue::True);
    }

    #[test]
    fn query_does_not_mutate() {
        let kb = KnowledgeBase::new("t");
        let rule = Rule::parse("bid(C, F) => seen(C)").unwrap();
        let mut fb = FactBase::new();
        fb.assert(Atom::parse("bid(c1, 0.2)").unwrap(), TruthValue::True);
        let engine = Engine::new();
        let hits = engine.query(&rule, &fb);
        assert_eq!(hits.len(), 1);
        assert_eq!(fb.len(), 1);
        let _ = kb;
    }

    #[test]
    fn iteration_limit_enforced() {
        // counter(N) and builtin-free growth is impossible in this rule
        // language without function symbols in heads; simulate runaway by
        // a tiny limit and a 2-step chain.
        let kb = KnowledgeBase::new("t").with_rules(&["a => b", "b => c"]);
        let mut fb = FactBase::new();
        fb.assert(Atom::prop("a"), TruthValue::True);
        let err = Engine::with_max_rounds(1).infer(&kb, &mut fb);
        assert!(matches!(err, Err(EngineError::IterationLimit { limit: 1 })));
    }

    #[test]
    fn from_iterator_builds_factbase() {
        let fb: FactBase = vec![
            (Atom::prop("x"), TruthValue::True),
            (Atom::prop("y"), TruthValue::False),
        ]
        .into_iter()
        .collect();
        assert_eq!(fb.len(), 2);
    }

    #[test]
    fn num_fact_helper() {
        let atom = num_fact("predicted_overuse", 35.0);
        assert_eq!(atom, Atom::parse("predicted_overuse(35)").unwrap());
    }
}
