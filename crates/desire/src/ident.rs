//! Names and hierarchical component paths.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An interned identifier: component, predicate, sort or variable name.
///
/// Cheap to clone (shared `Arc<str>`), compared by content.
///
/// # Example
///
/// ```
/// use desire::ident::Name;
///
/// let a = Name::from("own_process_control");
/// let b: Name = "own_process_control".into();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(Arc<str>);

impl Default for Name {
    /// The empty name — useful only as a placeholder.
    fn default() -> Self {
        Name(Arc::from(""))
    }
}

// With the offline serde stand-in these are marker impls; a transparent
// string (de)serialization belongs here once the real serde is available.
impl Serialize for Name {}

impl<'de> Deserialize<'de> for Name {}

impl Name {
    /// Creates a name from any string-like value.
    pub fn new(s: impl AsRef<str>) -> Name {
        Name(Arc::from(s.as_ref()))
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if the name is a well-formed identifier: non-empty, starting
    /// with a letter, containing only alphanumerics, `_` and `-`.
    pub fn is_well_formed(&self) -> bool {
        let mut chars = self.0.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name::new(s)
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A path through the component hierarchy, e.g.
/// `utility_agent/own_process_control/evaluate_negotiation_process`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ComponentPath(Vec<Name>);

impl ComponentPath {
    /// The empty path (the system root).
    pub fn root() -> ComponentPath {
        ComponentPath(Vec::new())
    }

    /// Creates a path from segments.
    pub fn from_segments(segments: impl IntoIterator<Item = Name>) -> ComponentPath {
        ComponentPath(segments.into_iter().collect())
    }

    /// Appends a child segment, returning the extended path.
    pub fn child(&self, name: Name) -> ComponentPath {
        let mut segments = self.0.clone();
        segments.push(name);
        ComponentPath(segments)
    }

    /// The path's segments.
    pub fn segments(&self) -> &[Name] {
        &self.0
    }

    /// Nesting depth (root = 0).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The final segment, if any.
    pub fn leaf(&self) -> Option<&Name> {
        self.0.last()
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &ComponentPath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for ComponentPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("/");
        }
        for segment in &self.0 {
            write!(f, "/{segment}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_compare_by_content() {
        assert_eq!(Name::from("abc"), Name::new(String::from("abc")));
        assert_ne!(Name::from("abc"), Name::from("abd"));
        assert_eq!(Name::from("abc").as_str(), "abc");
    }

    #[test]
    fn well_formedness() {
        assert!(Name::from("own_process_control").is_well_formed());
        assert!(Name::from("a-b_c9").is_well_formed());
        assert!(!Name::from("").is_well_formed());
        assert!(!Name::from("9abc").is_well_formed());
        assert!(!Name::from("a b").is_well_formed());
    }

    #[test]
    fn paths_display_like_filesystem() {
        let p = ComponentPath::root()
            .child("utility_agent".into())
            .child("own_process_control".into());
        assert_eq!(p.to_string(), "/utility_agent/own_process_control");
        assert_eq!(ComponentPath::root().to_string(), "/");
        assert_eq!(p.depth(), 2);
        assert_eq!(p.leaf().unwrap().as_str(), "own_process_control");
    }

    #[test]
    fn prefix_relation() {
        let root = ComponentPath::root();
        let ua = root.child("ua".into());
        let opc = ua.child("opc".into());
        assert!(root.is_prefix_of(&opc));
        assert!(ua.is_prefix_of(&opc));
        assert!(opc.is_prefix_of(&opc));
        assert!(!opc.is_prefix_of(&ua));
    }

    #[test]
    fn from_segments_roundtrip() {
        let p = ComponentPath::from_segments(vec![Name::from("a"), Name::from("b")]);
        assert_eq!(p.segments().len(), 2);
    }
}
