//! Information types: the ontologies of DESIRE's knowledge composition.
//!
//! "An information type defines an ontology (lexicon, vocabulary) to
//! describe objects or terms, their sorts, and the relations or functions
//! that can be defined on these objects" (Section 4.2.1). Information
//! types compose: higher-level types include lower-level ones, giving
//! information hiding.

use crate::ident::Name;
use crate::term::{Atom, Term};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A sort (type of objects), possibly a subsort of another — the
/// "order-sorted" part of order-sorted predicate logic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortDecl {
    /// The sort's name.
    pub name: Name,
    /// The supersort, if any (e.g. `customer ⊑ agent`).
    pub parent: Option<Name>,
}

/// Declaration of a predicate: name and argument sorts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredicateDecl {
    /// The predicate's name.
    pub name: Name,
    /// Sorts of the arguments (empty for propositions).
    pub arg_sorts: Vec<Name>,
}

/// An ontology: sorts, typed constants and predicates.
///
/// # Example
///
/// ```
/// use desire::info::InfoType;
/// use desire::term::Atom;
///
/// let info = InfoType::new("bids")
///     .with_sort("customer", None)
///     .with_constant("c3", "customer")
///     .with_predicate("bid", &["customer", "number"]);
/// let atom = Atom::parse("bid(c3, 0.4)").unwrap();
/// assert!(info.check_atom(&atom).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InfoType {
    name: Name,
    sorts: BTreeMap<Name, SortDecl>,
    constants: BTreeMap<Name, Name>,
    predicates: BTreeMap<Name, PredicateDecl>,
}

/// The built-in sort of numeric terms.
pub const NUMBER_SORT: &str = "number";

/// Error from signature checking an atom against an [`InfoType`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignatureError {
    /// The predicate is not declared.
    UnknownPredicate(Name),
    /// Wrong number of arguments.
    ArityMismatch {
        /// The predicate.
        predicate: Name,
        /// Declared arity.
        expected: usize,
        /// Actual arity.
        actual: usize,
    },
    /// A constant is not declared.
    UnknownConstant(Name),
    /// An argument's sort does not match (and is not a subsort of) the
    /// declared sort.
    SortMismatch {
        /// The predicate.
        predicate: Name,
        /// Argument position (0-based).
        position: usize,
        /// Declared sort.
        expected: Name,
        /// Actual sort.
        actual: Name,
    },
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::UnknownPredicate(p) => write!(f, "unknown predicate '{p}'"),
            SignatureError::ArityMismatch {
                predicate,
                expected,
                actual,
            } => write!(
                f,
                "predicate '{predicate}' takes {expected} arguments, got {actual}"
            ),
            SignatureError::UnknownConstant(c) => write!(f, "unknown constant '{c}'"),
            SignatureError::SortMismatch {
                predicate,
                position,
                expected,
                actual,
            } => write!(
                f,
                "argument {position} of '{predicate}' must be sort '{expected}', got '{actual}'"
            ),
        }
    }
}

impl std::error::Error for SignatureError {}

impl InfoType {
    /// Creates an empty information type; the [`NUMBER_SORT`] is always
    /// present.
    pub fn new(name: impl Into<Name>) -> InfoType {
        let mut sorts = BTreeMap::new();
        let number: Name = NUMBER_SORT.into();
        sorts.insert(
            number.clone(),
            SortDecl {
                name: number,
                parent: None,
            },
        );
        InfoType {
            name: name.into(),
            sorts,
            constants: BTreeMap::new(),
            predicates: BTreeMap::new(),
        }
    }

    /// The information type's name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Adds a sort, optionally as a subsort of `parent`.
    pub fn with_sort(mut self, name: impl Into<Name>, parent: Option<&str>) -> InfoType {
        let name = name.into();
        self.sorts.insert(
            name.clone(),
            SortDecl {
                name,
                parent: parent.map(Name::from),
            },
        );
        self
    }

    /// Adds a typed constant.
    pub fn with_constant(mut self, name: impl Into<Name>, sort: impl Into<Name>) -> InfoType {
        self.constants.insert(name.into(), sort.into());
        self
    }

    /// Adds a predicate declaration.
    pub fn with_predicate(mut self, name: impl Into<Name>, arg_sorts: &[&str]) -> InfoType {
        let name = name.into();
        self.predicates.insert(
            name.clone(),
            PredicateDecl {
                name,
                arg_sorts: arg_sorts.iter().map(|s| Name::from(*s)).collect(),
            },
        );
        self
    }

    /// Declared sorts (including `number`).
    pub fn sorts(&self) -> impl Iterator<Item = &SortDecl> {
        self.sorts.values()
    }

    /// Declared predicates.
    pub fn predicates(&self) -> impl Iterator<Item = &PredicateDecl> {
        self.predicates.values()
    }

    /// Looks up the sort of a constant.
    pub fn constant_sort(&self, name: &Name) -> Option<&Name> {
        self.constants.get(name)
    }

    /// True if `sub` equals `sup` or is declared as a (transitive)
    /// subsort of it.
    pub fn is_subsort(&self, sub: &Name, sup: &Name) -> bool {
        let mut current = Some(sub.clone());
        let mut hops = 0;
        while let Some(s) = current {
            if &s == sup {
                return true;
            }
            hops += 1;
            if hops > self.sorts.len() {
                return false; // cycle guard
            }
            current = self.sorts.get(&s).and_then(|d| d.parent.clone());
        }
        false
    }

    /// Composes two information types: the union of their vocabularies
    /// (Section 4.2.2, "information types can be composed of more
    /// specific information types"). Later declarations win on conflict.
    pub fn compose(mut self, other: &InfoType) -> InfoType {
        for decl in other.sorts.values() {
            self.sorts.insert(decl.name.clone(), decl.clone());
        }
        for (c, s) in &other.constants {
            self.constants.insert(c.clone(), s.clone());
        }
        for decl in other.predicates.values() {
            self.predicates.insert(decl.name.clone(), decl.clone());
        }
        self
    }

    /// Infers the sort of a ground term, if determinable.
    fn term_sort(&self, term: &Term) -> Option<Name> {
        match term {
            Term::Num(_) => Some(NUMBER_SORT.into()),
            Term::Const(c) => self.constants.get(c).cloned(),
            // Variables and applications are untyped here; checking is
            // only meaningful for ground, flat atoms.
            _ => None,
        }
    }

    /// Checks an atom against the signature.
    ///
    /// Variables and compound arguments are accepted at any position
    /// (rule patterns are checked only where ground).
    ///
    /// # Errors
    ///
    /// See [`SignatureError`] for the failure cases.
    pub fn check_atom(&self, atom: &Atom) -> Result<(), SignatureError> {
        let decl = self
            .predicates
            .get(&atom.predicate)
            .ok_or_else(|| SignatureError::UnknownPredicate(atom.predicate.clone()))?;
        if decl.arg_sorts.len() != atom.args.len() {
            return Err(SignatureError::ArityMismatch {
                predicate: atom.predicate.clone(),
                expected: decl.arg_sorts.len(),
                actual: atom.args.len(),
            });
        }
        for (i, (arg, expected)) in atom.args.iter().zip(&decl.arg_sorts).enumerate() {
            if let Term::Const(c) = arg {
                let actual = self
                    .constants
                    .get(c)
                    .ok_or_else(|| SignatureError::UnknownConstant(c.clone()))?;
                if !self.is_subsort(actual, expected) {
                    return Err(SignatureError::SortMismatch {
                        predicate: atom.predicate.clone(),
                        position: i,
                        expected: expected.clone(),
                        actual: actual.clone(),
                    });
                }
            } else if let Some(actual) = self.term_sort(arg) {
                if !self.is_subsort(&actual, expected) {
                    return Err(SignatureError::SortMismatch {
                        predicate: atom.predicate.clone(),
                        position: i,
                        expected: expected.clone(),
                        actual,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bids_info() -> InfoType {
        InfoType::new("bids")
            .with_sort("agent", None)
            .with_sort("customer", Some("agent"))
            .with_constant("c1", "customer")
            .with_constant("ua", "agent")
            .with_predicate("bid", &["customer", "number"])
            .with_predicate("active", &["agent"])
    }

    #[test]
    fn check_valid_atom() {
        let info = bids_info();
        assert!(info
            .check_atom(&Atom::parse("bid(c1, 0.4)").unwrap())
            .is_ok());
        assert!(info.check_atom(&Atom::parse("active(ua)").unwrap()).is_ok());
    }

    #[test]
    fn subsort_accepted_at_supersort_position() {
        let info = bids_info();
        // c1 is a customer, customer ⊑ agent.
        assert!(info.check_atom(&Atom::parse("active(c1)").unwrap()).is_ok());
    }

    #[test]
    fn supersort_rejected_at_subsort_position() {
        let info = bids_info();
        let err = info
            .check_atom(&Atom::parse("bid(ua, 0.4)").unwrap())
            .unwrap_err();
        assert!(matches!(err, SignatureError::SortMismatch { .. }));
    }

    #[test]
    fn unknown_predicate_and_constant() {
        let info = bids_info();
        assert!(matches!(
            info.check_atom(&Atom::parse("frob(c1)").unwrap()),
            Err(SignatureError::UnknownPredicate(_))
        ));
        assert!(matches!(
            info.check_atom(&Atom::parse("active(zeta)").unwrap()),
            Err(SignatureError::UnknownConstant(_))
        ));
    }

    #[test]
    fn arity_mismatch() {
        let info = bids_info();
        let err = info
            .check_atom(&Atom::parse("bid(c1)").unwrap())
            .unwrap_err();
        assert!(matches!(
            err,
            SignatureError::ArityMismatch {
                expected: 2,
                actual: 1,
                ..
            }
        ));
        assert!(err.to_string().contains("takes 2 arguments"));
    }

    #[test]
    fn variables_pass_checking() {
        let info = bids_info();
        assert!(info.check_atom(&Atom::parse("bid(C, F)").unwrap()).is_ok());
    }

    #[test]
    fn composition_merges_vocabularies() {
        let a = InfoType::new("a").with_predicate("p", &[]);
        let b = InfoType::new("b").with_predicate("q", &[]);
        let c = a.compose(&b);
        assert!(c.check_atom(&Atom::prop("p")).is_ok());
        assert!(c.check_atom(&Atom::prop("q")).is_ok());
    }

    #[test]
    fn subsort_reflexive_and_transitive() {
        let info = InfoType::new("s")
            .with_sort("a", None)
            .with_sort("b", Some("a"))
            .with_sort("c", Some("b"));
        assert!(info.is_subsort(&"a".into(), &"a".into()));
        assert!(info.is_subsort(&"c".into(), &"a".into()));
        assert!(!info.is_subsort(&"a".into(), &"c".into()));
    }

    #[test]
    fn cycle_in_sorts_terminates() {
        let info = InfoType::new("s")
            .with_sort("a", Some("b"))
            .with_sort("b", Some("a"));
        assert!(!info.is_subsort(&"a".into(), &"z".into()));
    }

    #[test]
    fn number_sort_is_builtin() {
        let info = InfoType::new("n").with_predicate("val", &[NUMBER_SORT]);
        assert!(info.check_atom(&Atom::parse("val(3.5)").unwrap()).is_ok());
    }
}
