//! Knowledge bases: rules over atoms, with composition.
//!
//! "A knowledge base defines a part of the knowledge that is used in one
//! or more of the processes. Knowledge is represented by formulae in
//! order-sorted predicate logic, which can be normalised by a standard
//! transformation into rules" (Section 4.2.1). This module holds the
//! normalised rule form; [`crate::engine`] executes it.

use crate::ident::Name;
use crate::term::{Atom, ParseError, Parser, Substitution};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A possibly negated atom.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Literal {
    /// The atom.
    pub atom: Atom,
    /// `true` for a positive literal, `false` for `not atom`.
    pub positive: bool,
}

impl Literal {
    /// Creates a positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal {
            atom,
            positive: true,
        }
    }

    /// Creates a negative literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal {
            atom,
            positive: false,
        }
    }

    /// Applies a substitution to the underlying atom.
    pub fn apply(&self, subst: &Substitution) -> Literal {
        Literal {
            atom: self.atom.apply(subst),
            positive: self.positive,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.atom)
        } else {
            write!(f, "not {}", self.atom)
        }
    }
}

/// A rule `a₁ and … and aₙ => c₁ and … and cₘ`.
///
/// Antecedents may be negated (`not p(X)`: `p(X)` is *known false*) and
/// may use the built-in comparison predicates of the engine (`gt`, `gte`,
/// `lt`, `lte`, `eq_num`, `neq_num`). Consequents may be negated, in which
/// case the engine asserts the atom as false.
///
/// # Example
///
/// ```
/// use desire::kb::Rule;
///
/// let r = Rule::parse(
///     "offered(C, R) and required(C, M) and gte(R, M) => acceptable(C)"
/// ).unwrap();
/// assert_eq!(r.antecedents.len(), 3);
/// assert_eq!(r.consequents.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Conjunctive body.
    pub antecedents: Vec<Literal>,
    /// Conjunctive head.
    pub consequents: Vec<Literal>,
}

impl Rule {
    /// Creates a rule from literal lists.
    ///
    /// # Panics
    ///
    /// Panics if the head is empty (a rule must conclude something).
    pub fn new(antecedents: Vec<Literal>, consequents: Vec<Literal>) -> Rule {
        assert!(
            !consequents.is_empty(),
            "a rule must have at least one consequent"
        );
        Rule {
            antecedents,
            consequents,
        }
    }

    /// A fact-rule with an empty body.
    pub fn fact(atom: Atom) -> Rule {
        Rule::new(Vec::new(), vec![Literal::pos(atom)])
    }

    /// Parses `lit and lit and ... => lit and lit`. An empty body
    /// (`=> p`) is a fact.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input.
    pub fn parse(input: &str) -> Result<Rule, ParseError> {
        let mut parser = Parser::new(input);
        let mut antecedents = Vec::new();
        if !parser.eat_str("=>") {
            loop {
                antecedents.push(parse_literal(&mut parser)?);
                if parser.eat_str("=>") {
                    break;
                }
                if !parser.eat_str("and") {
                    return Err(parser.error("expected 'and' or '=>'"));
                }
            }
        }
        let mut consequents = Vec::new();
        loop {
            consequents.push(parse_literal(&mut parser)?);
            if parser.at_end() {
                break;
            }
            if !parser.eat_str("and") {
                return Err(parser.error("expected 'and' or end of rule"));
            }
        }
        parser.expect_end()?;
        Ok(Rule {
            antecedents,
            consequents,
        })
    }

    /// All variables occurring in the consequents but not in any positive
    /// antecedent — these would be unbound at derivation time.
    pub fn unbound_head_variables(&self) -> Vec<Name> {
        let mut bound = Vec::new();
        for lit in self.antecedents.iter().filter(|l| l.positive) {
            for v in lit.atom.variables() {
                if !bound.contains(&v) {
                    bound.push(v);
                }
            }
        }
        let mut unbound = Vec::new();
        for lit in &self.consequents {
            for v in lit.atom.variables() {
                if !bound.contains(&v) && !unbound.contains(&v) {
                    unbound.push(v);
                }
            }
        }
        unbound
    }
}

fn parse_literal(parser: &mut Parser<'_>) -> Result<Literal, ParseError> {
    if parser.eat_str("not ") {
        Ok(Literal::neg(parser.atom()?))
    } else {
        Ok(Literal::pos(parser.atom()?))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.antecedents.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{a}")?;
        }
        if !self.antecedents.is_empty() {
            write!(f, " ")?;
        }
        write!(f, "=> ")?;
        for (i, c) in self.consequents.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A named collection of rules.
///
/// # Example
///
/// ```
/// use desire::kb::{KnowledgeBase, Rule};
///
/// let kb = KnowledgeBase::new("ca_decide")
///     .with_rule(Rule::parse("acceptable(F) => consider(F)").unwrap());
/// assert_eq!(kb.rules().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KnowledgeBase {
    name: Name,
    rules: Vec<Rule>,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new(name: impl Into<Name>) -> KnowledgeBase {
        KnowledgeBase {
            name: name.into(),
            rules: Vec::new(),
        }
    }

    /// The knowledge base's name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: Rule) -> KnowledgeBase {
        self.rules.push(rule);
        self
    }

    /// Adds several parsed rules (builder style).
    ///
    /// # Panics
    ///
    /// Panics if any rule text fails to parse — intended for rule sets
    /// written as string literals in agent definitions.
    pub fn with_rules(mut self, rules: &[&str]) -> KnowledgeBase {
        for text in rules {
            let rule = Rule::parse(text).unwrap_or_else(|e| panic!("invalid rule '{text}': {e}"));
            self.rules.push(rule);
        }
        self
    }

    /// Adds a rule in place.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// The rules, in declaration order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Composes two knowledge bases (Section 4.2.2): the concatenation of
    /// their rules under this base's name.
    pub fn compose(mut self, other: &KnowledgeBase) -> KnowledgeBase {
        self.rules.extend(other.rules.iter().cloned());
        self
    }

    /// True if no rules are present.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_rule() {
        let r = Rule::parse("a => b").unwrap();
        assert_eq!(r.antecedents.len(), 1);
        assert_eq!(r.consequents.len(), 1);
        assert!(r.antecedents[0].positive);
    }

    #[test]
    fn parse_negation_and_conjunction() {
        let r = Rule::parse("p(X) and not q(X) => r(X) and not s(X)").unwrap();
        assert!(r.antecedents[0].positive);
        assert!(!r.antecedents[1].positive);
        assert!(r.consequents[0].positive);
        assert!(!r.consequents[1].positive);
    }

    #[test]
    fn parse_fact_rule() {
        let r = Rule::parse("=> ready").unwrap();
        assert!(r.antecedents.is_empty());
        assert_eq!(r.consequents[0].atom, Atom::prop("ready"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Rule::parse("a =>").is_err());
        assert!(Rule::parse("a b => c").is_err());
        assert!(Rule::parse("").is_err());
        assert!(Rule::parse("a => b extra").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "a => b",
            "p(X) and not q(X) => r(X)",
            "offered(C, R) and gte(R, 10) => ok(C)",
        ] {
            let r = Rule::parse(text).unwrap();
            assert_eq!(Rule::parse(&r.to_string()).unwrap(), r);
        }
    }

    #[test]
    fn unbound_head_variables_detected() {
        let r = Rule::parse("p(X) => q(X, Y)").unwrap();
        assert_eq!(r.unbound_head_variables(), vec![Name::from("Y")]);
        let ok = Rule::parse("p(X) and r(Y) => q(X, Y)").unwrap();
        assert!(ok.unbound_head_variables().is_empty());
        // Negative antecedents do not bind.
        let neg = Rule::parse("not p(X) => q(X)").unwrap();
        assert_eq!(neg.unbound_head_variables(), vec![Name::from("X")]);
    }

    #[test]
    #[should_panic(expected = "at least one consequent")]
    fn empty_head_panics() {
        let _ = Rule::new(vec![], vec![]);
    }

    #[test]
    fn kb_composition() {
        let a = KnowledgeBase::new("a").with_rules(&["x => y"]);
        let b = KnowledgeBase::new("b").with_rules(&["y => z"]);
        let c = a.compose(&b);
        assert_eq!(c.rules().len(), 2);
        assert_eq!(c.name().as_str(), "a");
    }

    #[test]
    #[should_panic(expected = "invalid rule")]
    fn with_rules_panics_on_bad_text() {
        let _ = KnowledgeBase::new("bad").with_rules(&["=>"]);
    }

    #[test]
    fn literal_display() {
        let lit = Literal::neg(Atom::prop("busy"));
        assert_eq!(lit.to_string(), "not busy");
    }
}
