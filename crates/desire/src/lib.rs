//! A Rust re-implementation of the run-time semantics of **DESIRE**
//! (framework for DEsign and Specification of Interacting REasoning
//! components), the compositional multi-agent development method used by
//! Brazier et al. to build the load-balancing prototype (Section 4 of the
//! paper).
//!
//! DESIRE designs consist of three kinds of knowledge, all modelled here:
//!
//! * **Process composition** ([`component`], [`link`], [`task_control`]):
//!   components at different abstraction levels, either *primitive*
//!   (reasoning on a knowledge base, or a calculation) or *composed* of
//!   sub-components; information links exchange facts between component
//!   interfaces under task control.
//! * **Knowledge composition** ([`info`], [`term`], [`kb`]): order-sorted
//!   information types (ontologies) and knowledge bases of rules, composed
//!   from smaller ones.
//! * **The relation between the two** ([`engine`], [`system`]): which
//!   knowledge is used by which process; a forward-chaining three-valued
//!   inference engine executes primitive reasoning components and the
//!   [`system::System`] kernel drives whole composed systems to quiescence.
//!
//! Execution produces a [`trace::Trace`] against which temporal properties
//! can be checked ([`verify`]) — the compositional-verification story of
//! the companion ICMAS'98 paper. [`render`] prints component hierarchies
//! as trees, reproducing Figures 2–5 of the paper.
//!
//! # Example
//!
//! ```
//! use desire::prelude::*;
//!
//! // A primitive reasoning component: "if overuse is high, negotiate".
//! let kb = KnowledgeBase::new("decide")
//!     .with_rule(Rule::parse("high_overuse => start_negotiation").unwrap());
//! let mut component = Component::primitive("evaluate_prediction", kb);
//! component.input_mut().assert(Atom::prop("high_overuse"), TruthValue::True);
//! let mut system = System::new(component);
//! system.run().unwrap();
//! assert_eq!(
//!     system.root().output().truth(&Atom::prop("start_negotiation")),
//!     TruthValue::True
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent_model;
pub mod checker;
pub mod component;
pub mod engine;
pub mod ident;
pub mod info;
pub mod kb;
pub mod link;
pub mod render;
pub mod system;
pub mod task_control;
pub mod term;
pub mod trace;
pub mod verify;

/// The most frequently used items of the framework.
pub mod prelude {
    pub use crate::agent_model::{GenericAgentBuilder, GenericTask};
    pub use crate::checker::{check_design, DesignIssue, Severity};
    pub use crate::component::{Component, Interface, InterfaceKind};
    pub use crate::engine::{Engine, FactBase, TruthValue};
    pub use crate::ident::Name;
    pub use crate::info::InfoType;
    pub use crate::kb::{KnowledgeBase, Literal, Rule};
    pub use crate::link::{Endpoint, InfoLink};
    pub use crate::render::render_tree;
    pub use crate::system::System;
    pub use crate::task_control::TaskControl;
    pub use crate::term::{Atom, Term};
    pub use crate::trace::{Trace, TraceEvent};
    pub use crate::verify::{Property, Verdict};
}
