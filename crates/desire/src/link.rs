//! Information links: the static view of process composition.
//!
//! "This composition of processes is described by a specification of the
//! possibilities for information exchange between processes" (Section
//! 4.1.2). A link copies facts from a source interface to a destination
//! interface, optionally renaming predicates (the "mediating" role links
//! play between a parent's vocabulary and a child's).

use crate::engine::FactBase;
use crate::ident::Name;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One end of an information link, relative to the composed component the
/// link lives in.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The composed component's own input interface.
    ParentInput,
    /// The composed component's own output interface.
    ParentOutput,
    /// A child's input interface.
    ChildInput(Name),
    /// A child's output interface.
    ChildOutput(Name),
}

impl Endpoint {
    /// The child name this endpoint refers to, if any.
    pub fn child(&self) -> Option<&Name> {
        match self {
            Endpoint::ChildInput(n) | Endpoint::ChildOutput(n) => Some(n),
            _ => None,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::ParentInput => write!(f, "parent.input"),
            Endpoint::ParentOutput => write!(f, "parent.output"),
            Endpoint::ChildInput(n) => write!(f, "{n}.input"),
            Endpoint::ChildOutput(n) => write!(f, "{n}.output"),
        }
    }
}

/// A predicate rename applied while facts cross a link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomMapping {
    /// Predicate name on the source interface.
    pub from: Name,
    /// Predicate name asserted on the destination interface.
    pub to: Name,
}

/// An information link between two interfaces of a composition.
///
/// With no mappings the link is an *identity link*: every fact is
/// transferred unchanged. With mappings, only facts whose predicate
/// appears in a mapping are transferred, renamed accordingly.
///
/// # Example
///
/// ```
/// use desire::link::{Endpoint, InfoLink};
///
/// let link = InfoLink::new(
///     "announce_to_customer",
///     Endpoint::ChildOutput("utility_agent".into()),
///     Endpoint::ChildInput("customer_agent".into()),
/// )
/// .with_mapping("announced_reward", "offered_reward");
/// assert_eq!(link.name().as_str(), "announce_to_customer");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfoLink {
    name: Name,
    from: Endpoint,
    to: Endpoint,
    mappings: Vec<AtomMapping>,
}

impl InfoLink {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics on self-loops (same endpoint on both sides) and on the
    /// directions DESIRE forbids: into a parent *input* or out of a parent
    /// *output* (those interfaces face the outside world).
    pub fn new(name: impl Into<Name>, from: Endpoint, to: Endpoint) -> InfoLink {
        let name = name.into();
        assert!(from != to, "link '{name}' connects an interface to itself");
        assert!(
            to != Endpoint::ParentInput,
            "link '{name}' may not write to the parent's input interface"
        );
        assert!(
            from != Endpoint::ParentOutput,
            "link '{name}' may not read from the parent's output interface"
        );
        InfoLink {
            name,
            from,
            to,
            mappings: Vec::new(),
        }
    }

    /// An identity link transferring all facts unchanged.
    pub fn identity(name: impl Into<Name>, from: Endpoint, to: Endpoint) -> InfoLink {
        InfoLink::new(name, from, to)
    }

    /// Adds a predicate mapping (builder style). Once any mapping is
    /// present, only mapped predicates are transferred.
    pub fn with_mapping(mut self, from: impl Into<Name>, to: impl Into<Name>) -> InfoLink {
        self.mappings.push(AtomMapping {
            from: from.into(),
            to: to.into(),
        });
        self
    }

    /// The link's name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Source endpoint.
    pub fn from(&self) -> &Endpoint {
        &self.from
    }

    /// Destination endpoint.
    pub fn to(&self) -> &Endpoint {
        &self.to
    }

    /// The predicate mappings (empty for identity links).
    pub fn mappings(&self) -> &[AtomMapping] {
        &self.mappings
    }

    /// Child names referenced by either endpoint.
    pub fn referenced_children(&self) -> impl Iterator<Item = &Name> {
        self.from.child().into_iter().chain(self.to.child())
    }

    /// Transfers facts from `source` into `destination`, returning how
    /// many facts changed the destination (new or updated values).
    pub fn transfer(&self, source: &FactBase, destination: &mut FactBase) -> usize {
        let mut changed = 0;
        if self.mappings.is_empty() {
            for (atom, value) in source.iter() {
                if destination.truth(atom) != value {
                    destination.assert(atom.clone(), value);
                    changed += 1;
                }
            }
        } else {
            for mapping in &self.mappings {
                for (atom, value) in source.with_predicate(&mapping.from) {
                    let renamed = atom.renamed(mapping.to.clone());
                    if destination.truth(&renamed) != value {
                        destination.assert(renamed, value);
                        changed += 1;
                    }
                }
            }
        }
        changed
    }
}

impl fmt::Display for InfoLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} → {}", self.name, self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TruthValue;
    use crate::term::Atom;

    fn facts(items: &[(&str, TruthValue)]) -> FactBase {
        items
            .iter()
            .map(|(t, v)| (Atom::parse(t).unwrap(), *v))
            .collect()
    }

    #[test]
    fn identity_link_transfers_everything() {
        let src = facts(&[("a", TruthValue::True), ("b(1)", TruthValue::False)]);
        let mut dst = FactBase::new();
        let link = InfoLink::identity(
            "l",
            Endpoint::ChildOutput("x".into()),
            Endpoint::ChildInput("y".into()),
        );
        let n = link.transfer(&src, &mut dst);
        assert_eq!(n, 2);
        assert_eq!(dst.truth(&Atom::prop("a")), TruthValue::True);
        assert_eq!(dst.truth(&Atom::parse("b(1)").unwrap()), TruthValue::False);
    }

    #[test]
    fn mapped_link_renames_and_filters() {
        let src = facts(&[
            ("announced(17)", TruthValue::True),
            ("noise", TruthValue::True),
        ]);
        let mut dst = FactBase::new();
        let link = InfoLink::new(
            "l",
            Endpoint::ChildOutput("ua".into()),
            Endpoint::ChildInput("ca".into()),
        )
        .with_mapping("announced", "offered");
        let n = link.transfer(&src, &mut dst);
        assert_eq!(n, 1);
        assert!(dst.holds(&Atom::parse("offered(17)").unwrap()));
        assert_eq!(dst.truth(&Atom::prop("noise")), TruthValue::Unknown);
    }

    #[test]
    fn transfer_is_idempotent() {
        let src = facts(&[("a", TruthValue::True)]);
        let mut dst = FactBase::new();
        let link = InfoLink::identity("l", Endpoint::ParentInput, Endpoint::ChildInput("y".into()));
        assert_eq!(link.transfer(&src, &mut dst), 1);
        assert_eq!(link.transfer(&src, &mut dst), 0, "no change on re-transfer");
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_loop_panics() {
        let _ = InfoLink::new("l", Endpoint::ParentInput, Endpoint::ParentInput);
    }

    #[test]
    #[should_panic(expected = "parent's input")]
    fn writing_parent_input_panics() {
        let _ = InfoLink::new(
            "l",
            Endpoint::ChildOutput("x".into()),
            Endpoint::ParentInput,
        );
    }

    #[test]
    #[should_panic(expected = "parent's output")]
    fn reading_parent_output_panics() {
        let _ = InfoLink::new(
            "l",
            Endpoint::ParentOutput,
            Endpoint::ChildInput("x".into()),
        );
    }

    #[test]
    fn endpoint_accessors() {
        let e = Endpoint::ChildInput("ca".into());
        assert_eq!(e.child().unwrap().as_str(), "ca");
        assert!(Endpoint::ParentInput.child().is_none());
        assert_eq!(e.to_string(), "ca.input");
    }

    #[test]
    fn display_link() {
        let link = InfoLink::identity(
            "flow",
            Endpoint::ParentInput,
            Endpoint::ChildInput("a".into()),
        );
        assert_eq!(link.to_string(), "flow: parent.input → a.input");
    }

    #[test]
    fn referenced_children() {
        let link = InfoLink::new(
            "l",
            Endpoint::ChildOutput("a".into()),
            Endpoint::ChildInput("b".into()),
        );
        let kids: Vec<_> = link.referenced_children().map(|n| n.as_str()).collect();
        assert_eq!(kids, vec!["a", "b"]);
    }
}
