//! Textual rendering of component hierarchies.
//!
//! Replaces DESIRE's graphical design tools: [`render_tree`] prints the
//! process-abstraction trees of Figures 2–5 of the paper.

use crate::component::{Body, Component};

/// Renders the component hierarchy as an indented tree.
///
/// # Example
///
/// ```
/// use desire::prelude::*;
///
/// let leaf = Component::primitive("evaluate", KnowledgeBase::new("k"));
/// let root = Component::composed("own_process_control", vec![leaf], vec![], TaskControl::new());
/// let tree = render_tree(&root);
/// assert!(tree.contains("own_process_control"));
/// assert!(tree.contains("evaluate"));
/// ```
pub fn render_tree(component: &Component) -> String {
    let mut out = String::new();
    render_into(component, "", true, true, &mut out);
    out
}

fn kind_label(component: &Component) -> &'static str {
    match component.body() {
        Body::Reasoning(_) => "[kb]",
        Body::Calculation(_) => "[calc]",
        Body::Composed(_) => "",
    }
}

fn render_into(
    component: &Component,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    out: &mut String,
) {
    if is_root {
        out.push_str(format!("{} {}\n", component.name(), kind_label(component)).trim_end());
        out.push('\n');
    } else {
        let connector = if is_last { "└── " } else { "├── " };
        let line = format!(
            "{prefix}{connector}{} {}",
            component.name(),
            kind_label(component)
        );
        out.push_str(line.trim_end());
        out.push('\n');
    }
    let children = component.children();
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let child_prefix = if is_root {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "    " } else { "│   " })
        };
        render_into(child, &child_prefix, last, false, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KnowledgeBase;
    use crate::task_control::TaskControl;

    fn leaf(name: &str) -> Component {
        Component::primitive(name, KnowledgeBase::new(name))
    }

    #[test]
    fn renders_figure_2_shape() {
        // Figure 2: own process control of the UA.
        let determine = Component::composed(
            "determine_general_negotiation_strategy",
            vec![
                leaf("determine_announcement_method"),
                leaf("determine_bid_acceptance_strategy"),
            ],
            vec![],
            TaskControl::new(),
        );
        let opc = Component::composed(
            "own_process_control",
            vec![determine, leaf("evaluate_negotiation_process")],
            vec![],
            TaskControl::new(),
        );
        let tree = render_tree(&opc);
        assert!(tree.contains("own_process_control"));
        assert!(tree.contains("├── determine_general_negotiation_strategy"));
        assert!(tree.contains("│   ├── determine_announcement_method"));
        assert!(tree.contains("│   └── determine_bid_acceptance_strategy"));
        assert!(tree.contains("└── evaluate_negotiation_process"));
    }

    #[test]
    fn primitive_kinds_are_annotated() {
        let tree = render_tree(&Component::composed(
            "parent",
            vec![leaf("reasoner")],
            vec![],
            TaskControl::new(),
        ));
        assert!(tree.contains("reasoner [kb]"));
    }

    #[test]
    fn single_primitive_renders() {
        let tree = render_tree(&leaf("alone"));
        assert!(tree.starts_with("alone"));
    }
}
