//! The execution kernel: drives composed components to quiescence.
//!
//! This is the Rust equivalent of DESIRE's "implementation generator"
//! output: given a fully specified design (components + links + task
//! control), the kernel executes it. One *macro-round* of a composed
//! component fires all links, activates the scheduled children, and fires
//! all links again; rounds repeat until no interface changes.

use crate::component::{Body, Component, Interface};
use crate::engine::{Engine, EngineError, FactBase};
use crate::ident::{ComponentPath, Name};
use crate::link::{Endpoint, InfoLink};
use crate::trace::{Trace, TraceEvent};
use std::fmt;

/// Error from running a system.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// A reasoning component failed.
    Engine {
        /// Path of the failing component.
        path: ComponentPath,
        /// The underlying engine error.
        source: EngineError,
    },
    /// A composed component did not reach quiescence within its
    /// task-control round limit.
    NonQuiescent {
        /// Path of the component.
        path: ComponentPath,
        /// The round limit that was exhausted.
        rounds: usize,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Engine { path, source } => {
                write!(f, "engine error in {path}: {source}")
            }
            SystemError::NonQuiescent { path, rounds } => {
                write!(
                    f,
                    "component {path} still active after {rounds} macro-rounds"
                )
            }
        }
    }
}

impl std::error::Error for SystemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SystemError::Engine { source, .. } => Some(source),
            SystemError::NonQuiescent { .. } => None,
        }
    }
}

/// Activates `component` at `path`, recording into `trace`. Returns the
/// number of facts that newly appeared on interfaces of the component
/// (and, recursively, its children).
///
/// # Errors
///
/// Returns [`SystemError`] on engine failures or non-quiescence.
pub(crate) fn activate_at(
    component: &mut Component,
    engine: &Engine,
    trace: &mut Trace,
    path: &ComponentPath,
) -> Result<usize, SystemError> {
    // Split borrows: we need the body and both interfaces independently.
    let name = component.name().clone();
    let child_path = path.child(name);
    match component_parts(component) {
        Parts::Reasoning { kb, input, output } => {
            let mut working = output.facts().clone();
            working.absorb(input.facts());
            let before = working.clone();
            let kb = kb.clone();
            engine
                .infer(&kb, &mut working)
                .map_err(|source| SystemError::Engine {
                    path: child_path.clone(),
                    source,
                })?;
            let mut derived = 0;
            for (atom, value) in working.iter() {
                if before.truth(atom) != value {
                    trace.push(TraceEvent::FactDerived {
                        path: child_path.clone(),
                        atom: atom.clone(),
                        value,
                    });
                    derived += 1;
                }
            }
            *output.facts_mut() = working;
            trace.push(TraceEvent::Activated {
                path: child_path,
                derived,
            });
            Ok(derived)
        }
        Parts::Calculation {
            calc,
            input,
            output,
        } => {
            let results = calc.compute(input.facts());
            let mut derived = 0;
            for (atom, value) in results {
                if output.facts().truth(&atom) != value {
                    trace.push(TraceEvent::FactDerived {
                        path: child_path.clone(),
                        atom: atom.clone(),
                        value,
                    });
                    output.facts_mut().assert(atom, value);
                    derived += 1;
                }
            }
            trace.push(TraceEvent::Activated {
                path: child_path,
                derived,
            });
            Ok(derived)
        }
        Parts::Composed {
            composition,
            input,
            output,
        } => {
            let max_rounds = composition.task_control.max_rounds();
            let declared: Vec<Name> = composition
                .children
                .iter()
                .map(|c| c.name().clone())
                .collect();
            let schedule: Vec<Name> = composition
                .task_control
                .schedule(&declared)
                .into_iter()
                .cloned()
                .collect();
            let mut total_changed = 0;
            let mut quiescent = false;
            for _round in 0..max_rounds {
                let mut changed = 0;
                changed += fire_links(
                    &composition.links,
                    &mut composition.children,
                    input,
                    output,
                    trace,
                    &child_path,
                );
                for child_name in &schedule {
                    if let Some(condition) = composition.task_control.condition_for(child_name) {
                        if !input.holds(condition) {
                            continue;
                        }
                    }
                    let child = composition
                        .children
                        .iter_mut()
                        .find(|c| c.name() == child_name)
                        .expect("scheduled child exists");
                    changed += activate_at(child, engine, trace, &child_path)?;
                }
                changed += fire_links(
                    &composition.links,
                    &mut composition.children,
                    input,
                    output,
                    trace,
                    &child_path,
                );
                total_changed += changed;
                if changed == 0 {
                    quiescent = true;
                    break;
                }
            }
            if !quiescent {
                return Err(SystemError::NonQuiescent {
                    path: child_path,
                    rounds: max_rounds,
                });
            }
            trace.push(TraceEvent::Activated {
                path: child_path,
                derived: total_changed,
            });
            Ok(total_changed)
        }
    }
}

/// Borrow-splitting view of a component.
enum Parts<'a> {
    Reasoning {
        kb: &'a crate::kb::KnowledgeBase,
        input: &'a Interface,
        output: &'a mut Interface,
    },
    Calculation {
        calc: &'a mut dyn crate::component::Calculation,
        input: &'a Interface,
        output: &'a mut Interface,
    },
    Composed {
        composition: &'a mut crate::component::Composition,
        input: &'a mut Interface,
        output: &'a mut Interface,
    },
}

fn component_parts(component: &mut Component) -> Parts<'_> {
    // Component exposes only interface accessors publicly; the kernel
    // needs simultaneous borrows, provided by this crate-private splitter.
    let (input, output, body) = component.split_fields();
    match body {
        Body::Reasoning(kb) => Parts::Reasoning { kb, input, output },
        Body::Calculation(calc) => Parts::Calculation {
            calc: calc.as_mut(),
            input,
            output,
        },
        Body::Composed(composition) => Parts::Composed {
            composition,
            input,
            output,
        },
    }
}

fn fire_links(
    links: &[InfoLink],
    children: &mut [Component],
    parent_input: &mut Interface,
    parent_output: &mut Interface,
    trace: &mut Trace,
    path: &ComponentPath,
) -> usize {
    let mut total = 0;
    for link in links {
        // Snapshot the source fact base (cheap: BTreeMap clone), then
        // write into the destination — avoids aliasing borrows.
        let source: FactBase = match link.from() {
            Endpoint::ParentInput => parent_input.facts().clone(),
            Endpoint::ParentOutput => unreachable!("forbidden by InfoLink::new"),
            Endpoint::ChildInput(n) => match find_child(children, n) {
                Some(c) => c.input().facts().clone(),
                None => continue,
            },
            Endpoint::ChildOutput(n) => match find_child(children, n) {
                Some(c) => c.output().facts().clone(),
                None => continue,
            },
        };
        let destination: &mut FactBase = match link.to() {
            Endpoint::ParentInput => unreachable!("forbidden by InfoLink::new"),
            Endpoint::ParentOutput => parent_output.facts_mut(),
            Endpoint::ChildInput(n) => match find_child_mut(children, n) {
                Some(c) => c.input_mut().facts_mut(),
                None => continue,
            },
            Endpoint::ChildOutput(n) => match find_child_mut(children, n) {
                Some(c) => c.output_mut().facts_mut(),
                None => continue,
            },
        };
        let transferred = link.transfer(&source, destination);
        if transferred > 0 {
            trace.push(TraceEvent::LinkFired {
                path: path.clone(),
                link: link.name().clone(),
                transferred,
            });
            total += transferred;
        }
    }
    total
}

fn find_child<'a>(children: &'a [Component], name: &Name) -> Option<&'a Component> {
    children.iter().find(|c| c.name() == name)
}

fn find_child_mut<'a>(children: &'a mut [Component], name: &Name) -> Option<&'a mut Component> {
    children.iter_mut().find(|c| c.name() == name)
}

/// A complete runnable DESIRE system: a root component plus an engine and
/// a trace.
///
/// # Example
///
/// ```
/// use desire::prelude::*;
///
/// let kb = KnowledgeBase::new("k")
///     .with_rule(Rule::parse("ping => pong").unwrap());
/// let mut root = Component::primitive("echo", kb);
/// root.input_mut().assert(Atom::prop("ping"), TruthValue::True);
/// let mut system = System::new(root);
/// system.run().unwrap();
/// assert!(system.root().output().holds(&Atom::prop("pong")));
/// ```
#[derive(Debug)]
pub struct System {
    root: Component,
    engine: Engine,
    trace: Trace,
}

impl System {
    /// Creates a system with the default engine.
    pub fn new(root: Component) -> System {
        System {
            root,
            engine: Engine::new(),
            trace: Trace::new(),
        }
    }

    /// Creates a system with a custom engine.
    pub fn with_engine(root: Component, engine: Engine) -> System {
        System {
            root,
            engine,
            trace: Trace::new(),
        }
    }

    /// The root component.
    pub fn root(&self) -> &Component {
        &self.root
    }

    /// Mutable root component (e.g. to feed input facts between runs).
    pub fn root_mut(&mut self) -> &mut Component {
        &mut self.root
    }

    /// The accumulated execution trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Clears the execution trace.
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Runs the root component to quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] on engine failure or non-quiescence.
    pub fn run(&mut self) -> Result<usize, SystemError> {
        activate_at(
            &mut self.root,
            &self.engine,
            &mut self.trace,
            &ComponentPath::root(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TruthValue;
    use crate::kb::KnowledgeBase;
    use crate::task_control::TaskControl;
    use crate::term::Atom;

    fn reasoning(name: &str, rules: &[&str]) -> Component {
        Component::primitive(name, KnowledgeBase::new(name).with_rules(rules))
    }

    #[test]
    fn pipeline_of_two_children() {
        // parent.input --> a.input; a.output --> b.input; b.output --> parent.output
        let a = reasoning("a", &["x => y"]);
        let b = reasoning("b", &["y => z"]);
        let links = vec![
            InfoLink::identity(
                "in_a",
                Endpoint::ParentInput,
                Endpoint::ChildInput("a".into()),
            ),
            InfoLink::identity(
                "a_b",
                Endpoint::ChildOutput("a".into()),
                Endpoint::ChildInput("b".into()),
            ),
            InfoLink::identity(
                "b_out",
                Endpoint::ChildOutput("b".into()),
                Endpoint::ParentOutput,
            ),
        ];
        let root = Component::composed("pipe", vec![a, b], links, TaskControl::new());
        let mut system = System::new(root);
        system
            .root_mut()
            .input_mut()
            .assert(Atom::prop("x"), TruthValue::True);
        system.run().unwrap();
        assert!(system.root().output().holds(&Atom::prop("z")));
    }

    #[test]
    fn mapped_links_translate_vocabulary() {
        let speaker = reasoning("speaker", &["greet => said(hello)"]);
        let listener = reasoning("listener", &["heard(hello) => reply(hi)"]);
        let links = vec![
            InfoLink::identity(
                "in",
                Endpoint::ParentInput,
                Endpoint::ChildInput("speaker".into()),
            ),
            InfoLink::new(
                "voice",
                Endpoint::ChildOutput("speaker".into()),
                Endpoint::ChildInput("listener".into()),
            )
            .with_mapping("said", "heard"),
            InfoLink::identity(
                "out",
                Endpoint::ChildOutput("listener".into()),
                Endpoint::ParentOutput,
            ),
        ];
        let root = Component::composed("conv", vec![speaker, listener], links, TaskControl::new());
        let mut system = System::new(root);
        system
            .root_mut()
            .input_mut()
            .assert(Atom::prop("greet"), TruthValue::True);
        system.run().unwrap();
        assert!(system
            .root()
            .output()
            .holds(&Atom::parse("reply(hi)").unwrap()));
    }

    #[test]
    fn conditions_gate_children() {
        let worker = reasoning("worker", &["go => done"]);
        let links = vec![
            InfoLink::identity(
                "in",
                Endpoint::ParentInput,
                Endpoint::ChildInput("worker".into()),
            ),
            InfoLink::identity(
                "out",
                Endpoint::ChildOutput("worker".into()),
                Endpoint::ParentOutput,
            ),
        ];
        let tc = TaskControl::new().with_condition("worker", Atom::prop("enabled"));
        let root = Component::composed("sys", vec![worker], links, tc);
        let mut system = System::new(root);
        system
            .root_mut()
            .input_mut()
            .assert(Atom::prop("go"), TruthValue::True);
        system.run().unwrap();
        // Gate closed: worker never ran.
        assert_eq!(
            system.root().output().truth(&Atom::prop("done")),
            TruthValue::Unknown
        );

        // Open the gate and re-run.
        system
            .root_mut()
            .input_mut()
            .assert(Atom::prop("enabled"), TruthValue::True);
        system.run().unwrap();
        assert!(system.root().output().holds(&Atom::prop("done")));
    }

    #[test]
    fn nested_composition() {
        let inner_child = reasoning("leaf", &["a => b"]);
        let inner = Component::composed(
            "inner",
            vec![inner_child],
            vec![
                InfoLink::identity(
                    "in",
                    Endpoint::ParentInput,
                    Endpoint::ChildInput("leaf".into()),
                ),
                InfoLink::identity(
                    "out",
                    Endpoint::ChildOutput("leaf".into()),
                    Endpoint::ParentOutput,
                ),
            ],
            TaskControl::new(),
        );
        let outer = Component::composed(
            "outer",
            vec![inner],
            vec![
                InfoLink::identity(
                    "in",
                    Endpoint::ParentInput,
                    Endpoint::ChildInput("inner".into()),
                ),
                InfoLink::identity(
                    "out",
                    Endpoint::ChildOutput("inner".into()),
                    Endpoint::ParentOutput,
                ),
            ],
            TaskControl::new(),
        );
        let mut system = System::new(outer);
        system
            .root_mut()
            .input_mut()
            .assert(Atom::prop("a"), TruthValue::True);
        system.run().unwrap();
        assert!(system.root().output().holds(&Atom::prop("b")));
    }

    #[test]
    fn trace_records_activations_and_links() {
        let a = reasoning("a", &["x => y"]);
        let links = vec![
            InfoLink::identity(
                "in",
                Endpoint::ParentInput,
                Endpoint::ChildInput("a".into()),
            ),
            InfoLink::identity(
                "out",
                Endpoint::ChildOutput("a".into()),
                Endpoint::ParentOutput,
            ),
        ];
        let root = Component::composed("sys", vec![a], links, TaskControl::new());
        let mut system = System::new(root);
        system
            .root_mut()
            .input_mut()
            .assert(Atom::prop("x"), TruthValue::True);
        system.run().unwrap();
        let trace = system.trace();
        assert!(trace.activation_count(&"a".into()) >= 1);
        assert!(trace.first_derivation(&Atom::prop("y")).is_some());
    }

    #[test]
    fn rerun_is_quiescent() {
        let a = reasoning("a", &["x => y"]);
        let links = vec![InfoLink::identity(
            "in",
            Endpoint::ParentInput,
            Endpoint::ChildInput("a".into()),
        )];
        let root = Component::composed("sys", vec![a], links, TaskControl::new());
        let mut system = System::new(root);
        system
            .root_mut()
            .input_mut()
            .assert(Atom::prop("x"), TruthValue::True);
        let first = system.run().unwrap();
        let second = system.run().unwrap();
        assert!(first > 0);
        assert_eq!(second, 0);
    }

    #[test]
    fn engine_error_carries_path() {
        let bad = reasoning("bad", &["a => q(X)"]);
        let links = vec![InfoLink::identity(
            "in",
            Endpoint::ParentInput,
            Endpoint::ChildInput("bad".into()),
        )];
        let root = Component::composed("sys", vec![bad], links, TaskControl::new());
        let mut system = System::new(root);
        system
            .root_mut()
            .input_mut()
            .assert(Atom::prop("a"), TruthValue::True);
        let err = system.run().unwrap_err();
        match err {
            SystemError::Engine { path, .. } => {
                assert!(path.to_string().contains("bad"));
            }
            other => panic!("expected engine error, got {other}"),
        }
    }
}
