//! Task-control knowledge: the dynamic view of process composition.
//!
//! "...and a specification of task control knowledge used to control
//! processes and information exchange (dynamic view on the composition)"
//! (Section 4.1.2). Task control decides which children are activated, in
//! what order, and under which conditions, each macro-round of a composed
//! component's execution.

use crate::ident::Name;
use crate::term::Atom;
use serde::{Deserialize, Serialize};

/// Condition gating a child's activation: the atom must have the given
/// truth on the *parent's input* interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationCondition {
    /// The gated child.
    pub child: Name,
    /// The atom inspected on the parent input interface.
    pub condition: Atom,
}

/// Task-control knowledge of one composed component.
///
/// The kernel executes macro-rounds: links fire, then each activated
/// child runs, then links fire again; rounds repeat until the composition
/// is quiescent (no interface changed) or `max_rounds` is hit.
///
/// # Example
///
/// ```
/// use desire::task_control::TaskControl;
///
/// let tc = TaskControl::new()
///     .with_order(["predict", "evaluate", "announce"])
///     .with_max_rounds(10);
/// assert_eq!(tc.max_rounds(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskControl {
    /// Explicit activation order; children not listed run afterwards in
    /// declaration order. `None` means plain declaration order.
    order: Option<Vec<Name>>,
    /// Conditions gating individual children.
    conditions: Vec<ActivationCondition>,
    /// Maximum macro-rounds before the kernel reports non-quiescence.
    max_rounds: usize,
}

impl TaskControl {
    /// Default task control: declaration order, no conditions, 100 rounds.
    pub fn new() -> TaskControl {
        TaskControl {
            order: None,
            conditions: Vec::new(),
            max_rounds: 100,
        }
    }

    /// Sets an explicit child activation order.
    pub fn with_order<I, S>(mut self, order: I) -> TaskControl
    where
        I: IntoIterator<Item = S>,
        S: Into<Name>,
    {
        self.order = Some(order.into_iter().map(Into::into).collect());
        self
    }

    /// Gates `child` on `condition` holding (true) on the parent input.
    pub fn with_condition(mut self, child: impl Into<Name>, condition: Atom) -> TaskControl {
        self.conditions.push(ActivationCondition {
            child: child.into(),
            condition,
        });
        self
    }

    /// Sets the macro-round limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> TaskControl {
        assert!(max_rounds > 0, "round limit must be positive");
        self.max_rounds = max_rounds;
        self
    }

    /// The macro-round limit.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// The explicit order, if set.
    pub fn order(&self) -> Option<&[Name]> {
        self.order.as_deref()
    }

    /// Condition on `child`, if any.
    pub fn condition_for(&self, child: &Name) -> Option<&Atom> {
        self.conditions
            .iter()
            .find(|c| &c.child == child)
            .map(|c| &c.condition)
    }

    /// Computes the activation sequence over the given declared children:
    /// explicitly ordered ones first (in order), then the rest in
    /// declaration order. Unknown names in the order are ignored.
    pub fn schedule<'a>(&self, declared: &'a [Name]) -> Vec<&'a Name> {
        match &self.order {
            None => declared.iter().collect(),
            Some(order) => {
                let mut out: Vec<&Name> = Vec::with_capacity(declared.len());
                for name in order {
                    if let Some(n) = declared.iter().find(|d| *d == name) {
                        if !out.contains(&n) {
                            out.push(n);
                        }
                    }
                }
                for n in declared {
                    if !out.contains(&n) {
                        out.push(n);
                    }
                }
                out
            }
        }
    }
}

impl Default for TaskControl {
    fn default() -> Self {
        TaskControl::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(items: &[&str]) -> Vec<Name> {
        items.iter().map(|s| Name::from(*s)).collect()
    }

    #[test]
    fn default_schedule_is_declaration_order() {
        let declared = names(&["a", "b", "c"]);
        let tc = TaskControl::new();
        let sched: Vec<&str> = tc.schedule(&declared).iter().map(|n| n.as_str()).collect();
        assert_eq!(sched, vec!["a", "b", "c"]);
    }

    #[test]
    fn explicit_order_respected_with_stragglers() {
        let declared = names(&["a", "b", "c"]);
        let tc = TaskControl::new().with_order(["c", "a"]);
        let sched: Vec<&str> = tc.schedule(&declared).iter().map(|n| n.as_str()).collect();
        assert_eq!(sched, vec!["c", "a", "b"]);
    }

    #[test]
    fn unknown_names_in_order_ignored() {
        let declared = names(&["a"]);
        let tc = TaskControl::new().with_order(["ghost", "a"]);
        let sched: Vec<&str> = tc.schedule(&declared).iter().map(|n| n.as_str()).collect();
        assert_eq!(sched, vec!["a"]);
    }

    #[test]
    fn duplicate_order_entries_deduplicated() {
        let declared = names(&["a", "b"]);
        let tc = TaskControl::new().with_order(["b", "b", "a"]);
        let sched: Vec<&str> = tc.schedule(&declared).iter().map(|n| n.as_str()).collect();
        assert_eq!(sched, vec!["b", "a"]);
    }

    #[test]
    fn conditions_lookup() {
        let tc = TaskControl::new().with_condition("announce", Atom::prop("peak_expected"));
        assert_eq!(
            tc.condition_for(&"announce".into()),
            Some(&Atom::prop("peak_expected"))
        );
        assert!(tc.condition_for(&"other".into()).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rounds_panics() {
        let _ = TaskControl::new().with_max_rounds(0);
    }
}
